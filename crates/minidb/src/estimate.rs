//! Cardinality, size and time estimation.
//!
//! COBRA's cost model (§VI) needs, per query `Q`:
//! * `N_Q` — estimated result cardinality,
//! * `S_row(Q)` — result row size in bytes,
//! * `C^F_Q` / `C^L_Q` — server time to first/last result row,
//! * predicate truth probabilities (for the `cond` region cost).
//!
//! The paper "consulted the database query optimizer to get an estimate of
//! query execution times, based on past executions"; this estimator plays
//! that role using table statistics and the same work model as the
//! executor.

use crate::catalog::{Database, Table};
use crate::error::DbResult;
use crate::exec::DEFAULT_SERVER_ROW_NS;
use crate::expr::{BinOp, ColRef, ScalarExpr};
use crate::feedback::FeedbackStore;
use crate::fingerprint::PlanFingerprint;
use crate::func::FuncRegistry;
use crate::plan::LogicalPlan;
use crate::schema::Schema;
use crate::value::Value;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// The estimate for one query plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Estimate {
    /// Estimated result cardinality (`N_Q`).
    pub rows: f64,
    /// Declared bytes per result row (`S_row`).
    pub row_bytes: f64,
    /// Estimated row-touches before the first output row.
    pub startup_work: f64,
    /// Estimated total row-touches.
    pub total_work: f64,
}

impl Estimate {
    /// Estimated server time to the first result row, ns (`C^F_Q`).
    pub fn first_row_ns(&self, row_ns: f64) -> f64 {
        self.startup_work * row_ns
    }

    /// Estimated server time to the last result row, ns (`C^L_Q`).
    pub fn last_row_ns(&self, row_ns: f64) -> f64 {
        self.total_work * row_ns
    }

    /// Estimated payload bytes (`N_Q * S_row`).
    pub fn payload_bytes(&self) -> f64 {
        self.rows * self.row_bytes
    }
}

/// A shared, stamped cache of whole-plan [`Estimate`]s, keyed by
/// `(plan fingerprint, row_ns bits)` and valid for exactly one
/// [`CacheStamp`].
///
/// Estimates depend only on the plan's structure (parameter *names* are
/// part of it; bound values are not consulted) plus the database's
/// statistics, the estimation mode, any runtime feedback, and the per-row
/// server cost — so a fingerprint plus the `row_ns` bit pattern is a
/// complete key. Validity is a **stamp**: [`Database::instance_id`]
/// (every `Database` value, clones included, has its own),
/// [`Database::stats_epoch`], the [`FeedbackStore::generation`] of the
/// estimator's feedback store (new observations invalidate), and the
/// estimation-mode bits — so a cache accidentally shared across different
/// databases or differently-configured estimators flushes instead of
/// serving the other configuration's numbers. Failed estimations are
/// cached verbatim (the same `DbError` every time).
///
/// Thread-safe (`RwLock` + atomics): one cache instance can serve every
/// worker of a batch optimization.
#[derive(Debug, Default)]
pub struct EstimateCache {
    inner: RwLock<CacheInner>,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// A cache validity stamp: database identity and epoch, feedback-store
/// generation, and estimation-mode bits. The [`Default`] stamp matches no
/// real database (instance ids start at 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct CacheStamp {
    /// [`Database::instance_id`] of the database estimated against.
    pub instance_id: u64,
    /// [`Database::stats_epoch`] at estimation time.
    pub stats_epoch: u64,
    /// [`FeedbackStore::generation`] of the estimator's feedback store
    /// (0 when estimating without feedback).
    pub feedback_generation: u64,
    /// Estimation-mode bits (bit 0: histograms enabled).
    pub mode: u8,
}

impl CacheStamp {
    /// The stamp for estimating against `db` with the default mode
    /// (histograms on, no feedback).
    pub fn for_db(db: &Database) -> CacheStamp {
        CacheStamp {
            instance_id: db.instance_id(),
            stats_epoch: db.stats_epoch(),
            feedback_generation: 0,
            mode: 1,
        }
    }
}

/// Prints as `db<instance>@e<epoch>/f<feedback gen>/m<mode>` — with a
/// [`PlanFingerprint`] this names one cache-validity coordinate, the key
/// server logs use to show which tenant/epoch a cached plan belongs to.
impl std::fmt::Display for CacheStamp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "db{}@e{}/f{}/m{}",
            self.instance_id, self.stats_epoch, self.feedback_generation, self.mode
        )
    }
}

#[derive(Debug, Default)]
struct CacheInner {
    entries: HashMap<(PlanFingerprint, u64), DbResult<Estimate>>,
    /// The stamp the entries are valid for.
    valid: CacheStamp,
}

impl EstimateCache {
    /// An empty cache.
    pub fn new() -> EstimateCache {
        EstimateCache::default()
    }

    /// The default-mode validity stamp for `db` (see
    /// [`CacheStamp::for_db`]); estimators with feedback or a non-default
    /// mode derive their own stamp.
    pub fn stamp(db: &Database) -> CacheStamp {
        CacheStamp::for_db(db)
    }

    /// Estimates served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Estimates computed by an estimator (and inserted).
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cached entries currently held.
    pub fn len(&self) -> usize {
        self.inner.read().unwrap().entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up a cached estimate, flushing the contents when they were
    /// computed under a different stamp (another database instance or an
    /// older stats epoch). Counts a hit when found.
    pub fn lookup(
        &self,
        stamp: CacheStamp,
        key: (PlanFingerprint, u64),
    ) -> Option<DbResult<Estimate>> {
        {
            let inner = self.inner.read().unwrap();
            if inner.valid == stamp {
                let hit = inner.entries.get(&key).cloned();
                if hit.is_some() {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                }
                return hit;
            }
        }
        let mut inner = self.inner.write().unwrap();
        // Re-check under the write lock: another thread may have flushed.
        if inner.valid != stamp {
            inner.entries.clear();
            inner.valid = stamp;
        }
        None
    }

    /// Insert a computed estimate for `stamp` (counts a miss; dropped
    /// when the stamp moved while computing).
    pub fn insert(
        &self,
        stamp: CacheStamp,
        key: (PlanFingerprint, u64),
        value: DbResult<Estimate>,
    ) {
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.write().unwrap();
        if inner.valid == stamp {
            inner.entries.insert(key, value);
        }
    }
}

/// Estimates plans against a database's statistics — and, when a
/// [`FeedbackStore`] is attached, against observed runtime cardinalities,
/// which take precedence over histogram guesses.
pub struct Estimator<'a> {
    db: &'a Database,
    funcs: &'a FuncRegistry,
    row_ns: f64,
    cache: Option<&'a EstimateCache>,
    /// Runtime observations; whole-plan estimates prefer these.
    feedback: Option<&'a FeedbackStore>,
    /// When false, fall back to the pre-histogram uniform model (fixed
    /// 1/3 range selectivity, raw 1/NDV equality) — the ablation baseline.
    use_histograms: bool,
    /// Counter bumped each time an observation replaces a model guess
    /// (lets a cost model account feedback use per search).
    override_counter: Option<&'a AtomicU64>,
}

/// Selectivity assumed for range predicates (`<`, `>`, …).
const RANGE_SELECTIVITY: f64 = 1.0 / 3.0;
/// Selectivity assumed when nothing is known.
const DEFAULT_SELECTIVITY: f64 = 0.5;

impl<'a> Estimator<'a> {
    /// New estimator with the default server per-row cost.
    pub fn new(db: &'a Database, funcs: &'a FuncRegistry) -> Estimator<'a> {
        Estimator {
            db,
            funcs,
            row_ns: DEFAULT_SERVER_ROW_NS,
            cache: None,
            feedback: None,
            use_histograms: true,
            override_counter: None,
        }
    }

    /// Override the per-row server cost (must match the executor's to make
    /// estimates comparable with simulated measurements).
    pub fn with_row_ns(mut self, row_ns: f64) -> Estimator<'a> {
        self.row_ns = row_ns;
        self
    }

    /// Serve [`Estimator::estimate_fp`] through `cache` (whole-plan
    /// results only; the recursive per-node work is uncached).
    pub fn with_cache(mut self, cache: &'a EstimateCache) -> Estimator<'a> {
        self.cache = Some(cache);
        self
    }

    /// Prefer observed runtime cardinalities from `feedback` over model
    /// guesses for whole-plan estimates ([`Estimator::estimate_fp`] and
    /// friends; the recursive per-node model is unchanged).
    pub fn with_feedback(mut self, feedback: &'a FeedbackStore) -> Estimator<'a> {
        self.feedback = Some(feedback);
        self
    }

    /// Enable or disable histogram/statistics-interpolated selectivities
    /// (default on). Off reproduces the uniform-NDV baseline estimator —
    /// kept for ablation and fidelity comparison.
    pub fn with_histograms(mut self, on: bool) -> Estimator<'a> {
        self.use_histograms = on;
        self
    }

    /// Count feedback overrides into `counter` (one increment per
    /// computed estimate that used an observation).
    pub fn with_override_counter(mut self, counter: &'a AtomicU64) -> Estimator<'a> {
        self.override_counter = Some(counter);
        self
    }

    /// The per-row server cost used for time estimates.
    pub fn row_ns(&self) -> f64 {
        self.row_ns
    }

    /// The cache-validity stamp for this estimator's configuration.
    fn stamp(&self) -> CacheStamp {
        CacheStamp {
            instance_id: self.db.instance_id(),
            stats_epoch: self.db.stats_epoch(),
            feedback_generation: self.feedback.map(|f| f.generation()).unwrap_or(0),
            mode: self.use_histograms as u8,
        }
    }

    /// [`Estimator::estimate`] with a precomputed fingerprint for `plan`,
    /// consulting the cache configured via [`Estimator::with_cache`].
    /// Cached and uncached paths return bit-identical estimates *and*
    /// identical errors (failures are cached verbatim).
    pub fn estimate_fp(&self, plan: &LogicalPlan, fp: PlanFingerprint) -> DbResult<Estimate> {
        self.estimate_fp_stats(plan, fp).0
    }

    /// [`Estimator::estimate_fp`] also reporting whether the result came
    /// from the cache — the hook cost models use for their own per-search
    /// hit/miss accounting.
    pub fn estimate_fp_stats(
        &self,
        plan: &LogicalPlan,
        fp: PlanFingerprint,
    ) -> (DbResult<Estimate>, bool) {
        let Some(cache) = self.cache else {
            return (self.estimate_observed(plan, fp), false);
        };
        let stamp = self.stamp();
        let key = (fp, self.row_ns.to_bits());
        if let Some(cached) = cache.lookup(stamp, key) {
            return (cached, true);
        }
        let computed = self.estimate_observed(plan, fp);
        cache.insert(stamp, key, computed.clone());
        (computed, false)
    }

    /// [`Estimator::estimate`], with observed runtime cardinality and
    /// work substituted for the model's guess when the feedback store has
    /// seen this plan execute (row size stays declared-schema-exact).
    ///
    /// Observations are consulted in two tiers, both restricted to
    /// evidence about the *current* table contents
    /// ([`Database::plan_data_stamp`]): an exact-shape match overrides
    /// cardinality and the work profile; failing that, an observation of
    /// a sibling shape of the same query (same
    /// [`crate::feedback::semantic_key`] — e.g. the predicate pushed to
    /// the other side of a join) overrides the output cardinality only,
    /// since work is shape-specific.
    fn estimate_observed(&self, plan: &LogicalPlan, fp: PlanFingerprint) -> DbResult<Estimate> {
        let mut e = self.estimate(plan)?;
        if let Some(fb) = self.feedback {
            let data_stamp = self.db.plan_data_stamp(plan);
            if let Some(obs) = fb.observed_fresh(fp, data_stamp) {
                e.rows = obs.rows;
                e.startup_work = obs.startup_work;
                e.total_work = obs.total_work;
            } else if let Some(obs) =
                fb.observed_semantic(crate::feedback::semantic_key(plan), data_stamp)
            {
                e.rows = obs.rows;
            } else {
                return Ok(e);
            }
            fb.note_served();
            if let Some(ctr) = self.override_counter {
                ctr.fetch_add(1, Ordering::Relaxed);
            }
        }
        Ok(e)
    }

    /// Estimate cardinality, row size and work for `plan`.
    pub fn estimate(&self, plan: &LogicalPlan) -> DbResult<Estimate> {
        match plan {
            LogicalPlan::Scan { table, .. } => {
                let t = self.db.table(table)?;
                let rows = t.stats().row_count.max(t.row_count() as u64) as f64;
                Ok(Estimate {
                    rows,
                    row_bytes: t.schema().row_bytes() as f64,
                    startup_work: 0.0,
                    total_work: rows,
                })
            }
            LogicalPlan::Select { input, pred } => {
                let child = self.estimate(input)?;
                let schema = input.output_schema(self.db, self.funcs)?;
                let sel = self.selectivity(&schema, pred);
                let rows = child.rows * sel;
                // Index fast path mirrors the executor: equality on an
                // indexed column of a base scan touches only matches.
                let indexed = self.indexed_eq_lookup(input, pred, &schema);
                let (startup, total) = if indexed {
                    (0.0, rows + 1.0)
                } else {
                    (child.startup_work, child.total_work + child.rows)
                };
                Ok(Estimate {
                    rows,
                    row_bytes: child.row_bytes,
                    startup_work: startup,
                    total_work: total,
                })
            }
            LogicalPlan::Project { input, .. } => {
                let child = self.estimate(input)?;
                let schema = plan.output_schema(self.db, self.funcs)?;
                Ok(Estimate {
                    rows: child.rows,
                    row_bytes: schema.row_bytes() as f64,
                    startup_work: child.startup_work,
                    total_work: child.total_work + child.rows,
                })
            }
            LogicalPlan::Join { left, right, pred } => {
                let l = self.estimate(left)?;
                let r = self.estimate(right)?;
                let l_schema = left.output_schema(self.db, self.funcs)?;
                let r_schema = right.output_schema(self.db, self.funcs)?;
                let sel = self.join_selectivity(&l_schema, &r_schema, pred);
                let rows = (l.rows * r.rows * sel).max(0.0);
                // Index-nested-loops fast path (mirrors the executor): an
                // indexed base-table side probed by a much smaller driver.
                for (outer, outer_plan, inner_plan) in [(&l, left, right), (&r, right, left)] {
                    if self.inl_eligible(outer_plan, inner_plan, pred)
                        && outer.rows * 2.0 < self.estimate(inner_plan)?.rows
                    {
                        return Ok(Estimate {
                            rows,
                            row_bytes: l.row_bytes + r.row_bytes,
                            startup_work: outer.startup_work,
                            total_work: outer.total_work + outer.rows + rows,
                        });
                    }
                }
                let build = l.rows.min(r.rows);
                let probe = l.rows.max(r.rows);
                let startup = l.startup_work + r.startup_work + build;
                let total = l.total_work + r.total_work + build + probe + rows;
                Ok(Estimate {
                    rows,
                    row_bytes: l.row_bytes + r.row_bytes,
                    startup_work: startup,
                    total_work: total,
                })
            }
            LogicalPlan::Aggregate {
                input, group_by, ..
            } => {
                let child = self.estimate(input)?;
                let schema = plan.output_schema(self.db, self.funcs)?;
                let in_schema = input.output_schema(self.db, self.funcs)?;
                let rows = if group_by.is_empty() {
                    1.0
                } else {
                    let mut groups = 1.0f64;
                    for g in group_by {
                        groups *= self.column_ndv(&in_schema, g).max(1.0);
                    }
                    groups.min(child.rows.max(1.0))
                };
                let total = child.total_work + child.rows;
                Ok(Estimate {
                    rows,
                    row_bytes: schema.row_bytes() as f64,
                    startup_work: total, // blocking
                    total_work: total,
                })
            }
            LogicalPlan::OrderBy { input, .. } => {
                let child = self.estimate(input)?;
                let n = child.rows.max(1.0);
                let sort = n * n.log2().max(1.0);
                Ok(Estimate {
                    rows: child.rows,
                    row_bytes: child.row_bytes,
                    startup_work: child.total_work + sort, // blocking
                    total_work: child.total_work + sort,
                })
            }
            LogicalPlan::Limit { input, n } => {
                let child = self.estimate(input)?;
                let rows = child.rows.min(*n as f64);
                Ok(Estimate { rows, ..child })
            }
        }
    }

    /// Probability that `pred` holds for a row of `schema` — used directly
    /// for the `p` of a `cond` region when the predicate involves query
    /// result attributes (§VI).
    pub fn selectivity(&self, schema: &Schema, pred: &ScalarExpr) -> f64 {
        match pred {
            ScalarExpr::Lit(v) => match v.as_bool() {
                Some(true) => 1.0,
                Some(false) => 0.0,
                None => DEFAULT_SELECTIVITY,
            },
            ScalarExpr::Bin(BinOp::And, l, r) => {
                self.selectivity(schema, l) * self.selectivity(schema, r)
            }
            ScalarExpr::Bin(BinOp::Or, l, r) => {
                let a = self.selectivity(schema, l);
                let b = self.selectivity(schema, r);
                (a + b - a * b).min(1.0)
            }
            ScalarExpr::Not(e) => 1.0 - self.selectivity(schema, e),
            ScalarExpr::Bin(BinOp::Eq, l, r) => {
                // col = constant/param → non-null fraction / NDV (equality
                // never matches NULLs); col = col handled by joins.
                if let Some(c) = as_column(l).or_else(|| as_column(r)) {
                    if self.use_histograms {
                        if let Some((table, i)) = self.locate_column(&c) {
                            let stats = table.stats();
                            if stats.analyzed {
                                return stats.eq_selectivity(i);
                            }
                        }
                    }
                    let ndv = self.column_ndv(schema, &c);
                    if ndv > 0.0 {
                        return 1.0 / ndv;
                    }
                }
                DEFAULT_SELECTIVITY
            }
            ScalarExpr::Bin(BinOp::Ne, _, _) => 1.0 - 0.1,
            ScalarExpr::Bin(op, l, r) if op.is_comparison() => {
                // col ⋈ literal → histogram (equi-depth, built by ANALYZE)
                // or min/max interpolation; the fixed 1/3 only survives as
                // the un-analyzed / non-literal fallback.
                if self.use_histograms {
                    if let Some(sel) = self.range_selectivity_from_stats(l, r, *op) {
                        return sel;
                    }
                }
                RANGE_SELECTIVITY
            }
            _ => DEFAULT_SELECTIVITY,
        }
    }

    /// Selectivity of `column ⋈ literal` (either orientation) from table
    /// statistics. `None` when the predicate shape or the statistics
    /// cannot answer (parameter probe, never-analyzed table, non-numeric
    /// column) — the caller falls back to the default.
    fn range_selectivity_from_stats(
        &self,
        l: &ScalarExpr,
        r: &ScalarExpr,
        op: BinOp,
    ) -> Option<f64> {
        let (col, lit, op) = match (l, r) {
            (ScalarExpr::Col(c), ScalarExpr::Lit(v)) => (c, v, op),
            (ScalarExpr::Lit(v), ScalarExpr::Col(c)) => (c, v, op.mirror()),
            _ => return None,
        };
        let (table, i) = self.locate_column(col)?;
        table.stats().range_selectivity(i, op, lit)
    }

    fn join_selectivity(&self, l_schema: &Schema, r_schema: &Schema, pred: &ScalarExpr) -> f64 {
        for c in pred.conjuncts() {
            if let ScalarExpr::Bin(BinOp::Eq, a, b) = c {
                if let (Some(ca), Some(cb)) = (as_column(a), as_column(b)) {
                    let joint = l_schema.join(r_schema);
                    let ndv_a = self.column_ndv(&joint, &ca).max(1.0);
                    let ndv_b = self.column_ndv(&joint, &cb).max(1.0);
                    let mut sel = 1.0 / ndv_a.max(ndv_b);
                    if self.use_histograms {
                        // NULL join keys never match: scale the output by
                        // both keys' non-null fractions.
                        for col in [&ca, &cb] {
                            if let Some((t, i)) = self.locate_column(col) {
                                let stats = t.stats();
                                if stats.analyzed {
                                    if let Some(cs) = stats.columns.get(i) {
                                        sel *= cs.non_null_fraction(stats.row_count);
                                    }
                                }
                            }
                        }
                    }
                    return sel;
                }
            }
        }
        if matches!(pred, ScalarExpr::Lit(Value::Bool(true))) {
            return 1.0; // cross join
        }
        DEFAULT_SELECTIVITY
    }

    /// The base table and column position a column reference resolves to
    /// (column names are unique per table in our workloads).
    fn locate_column(&self, col: &ColRef) -> Option<(&Table, usize)> {
        for table in self.db.tables() {
            for (i, c) in table.schema().columns().iter().enumerate() {
                if c.name == col.name {
                    return Some((table, i));
                }
            }
        }
        None
    }

    /// NDV of a referenced column, traced back to its base table.
    fn column_ndv(&self, _schema: &Schema, col: &ColRef) -> f64 {
        self.locate_column(col)
            .map(|(t, i)| t.stats().ndv(i) as f64)
            .unwrap_or(0.0)
    }

    /// True when `inner_plan` is a bare indexed scan joinable from
    /// `outer_plan` through an indexed equality column (the executor's INL
    /// join precondition, minus the size heuristic).
    fn inl_eligible(
        &self,
        outer_plan: &LogicalPlan,
        inner_plan: &LogicalPlan,
        pred: &ScalarExpr,
    ) -> bool {
        let LogicalPlan::Scan { table, alias } = inner_plan else {
            return false;
        };
        let Ok(t) = self.db.table(table) else {
            return false;
        };
        let inner_schema = t.schema().with_qualifier(alias.as_deref().unwrap_or(table));
        let Ok(outer_schema) = outer_plan.output_schema(self.db, self.funcs) else {
            return false;
        };
        for c in pred.conjuncts() {
            let ScalarExpr::Bin(BinOp::Eq, a, b) = c else {
                continue;
            };
            let (ScalarExpr::Col(ca), ScalarExpr::Col(cb)) = (&**a, &**b) else {
                continue;
            };
            for (x, y) in [(ca, cb), (cb, ca)] {
                if outer_schema.resolve(&x.to_ref_string()).is_ok() {
                    if let Ok(i) = inner_schema.resolve(&y.to_ref_string()) {
                        if t.has_index(i) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }

    /// Mirrors the executor's index fast-path detection.
    fn indexed_eq_lookup(&self, input: &LogicalPlan, pred: &ScalarExpr, schema: &Schema) -> bool {
        let LogicalPlan::Scan { table, .. } = input else {
            return false;
        };
        let Ok(t) = self.db.table(table) else {
            return false;
        };
        for c in pred.conjuncts() {
            if let ScalarExpr::Bin(BinOp::Eq, l, r) = c {
                let col = match (&**l, &**r) {
                    (ScalarExpr::Col(col), o) if !o.references_columns() => Some(col),
                    (o, ScalarExpr::Col(col)) if !o.references_columns() => Some(col),
                    _ => None,
                };
                if let Some(col) = col {
                    if let Ok(i) = schema.resolve(&col.to_ref_string()) {
                        if t.has_index(i) {
                            return true;
                        }
                    }
                }
            }
        }
        false
    }
}

fn as_column(e: &ScalarExpr) -> Option<ColRef> {
    match e {
        ScalarExpr::Col(c) => Some(c.clone()),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, DataType};
    use crate::sql::parse;
    use crate::value::Value;

    fn test_db() -> Database {
        let mut db = Database::new();
        let orders = Schema::new(vec![
            Column::new("o_id", DataType::Int),
            Column::new("o_customer_sk", DataType::Int),
            Column::with_width("o_status", DataType::Str, 10),
        ]);
        let t = db.create_table("orders", orders).unwrap();
        t.set_primary_key("o_id").unwrap();
        for i in 0..1000i64 {
            t.insert(vec![
                Value::Int(i),
                Value::Int(i % 100),
                Value::str(if i % 5 == 0 { "open" } else { "done" }),
            ])
            .unwrap();
        }
        let customer = Schema::new(vec![
            Column::new("c_customer_sk", DataType::Int),
            Column::new("c_birth_year", DataType::Int),
        ]);
        let t = db.create_table("customer", customer).unwrap();
        t.set_primary_key("c_customer_sk").unwrap();
        for i in 0..100i64 {
            t.insert(vec![Value::Int(i), Value::Int(1950 + (i % 40))])
                .unwrap();
        }
        db.analyze_all();
        db
    }

    fn estimate(db: &Database, sql: &str) -> Estimate {
        let funcs = FuncRegistry::with_builtins();
        let plan = parse(sql).unwrap();
        Estimator::new(db, &funcs).estimate(&plan).unwrap()
    }

    #[test]
    fn scan_estimate_matches_row_count() {
        let db = test_db();
        let e = estimate(&db, "select * from orders");
        assert_eq!(e.rows, 1000.0);
        assert_eq!(e.row_bytes, 8.0 + 8.0 + 10.0);
    }

    #[test]
    fn eq_selectivity_uses_ndv() {
        let db = test_db();
        let e = estimate(&db, "select * from orders where o_customer_sk = 7");
        assert!(
            (e.rows - 10.0).abs() < 1e-9,
            "1000/100 = 10, got {}",
            e.rows
        );
    }

    #[test]
    fn param_predicates_estimate_like_constants() {
        let db = test_db();
        let e = estimate(&db, "select * from customer where c_customer_sk = :k");
        assert!((e.rows - 1.0).abs() < 1e-9);
        // Indexed: nearly free.
        assert!(e.total_work < 5.0);
    }

    #[test]
    fn join_estimate_uses_fk_ndv() {
        let db = test_db();
        let e = estimate(
            &db,
            "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk",
        );
        assert!((e.rows - 1000.0).abs() < 1.0, "got {}", e.rows);
        assert_eq!(e.row_bytes, 26.0 + 16.0);
    }

    #[test]
    fn aggregate_estimate_counts_groups() {
        let db = test_db();
        let e = estimate(
            &db,
            "select o_status, count(*) from orders group by o_status",
        );
        assert!((e.rows - 2.0).abs() < 1e-9);
        assert_eq!(e.startup_work, e.total_work, "aggregation blocks");
        let scalar = estimate(&db, "select count(*) from orders");
        assert_eq!(scalar.rows, 1.0);
    }

    #[test]
    fn order_by_is_blocking() {
        let db = test_db();
        let e = estimate(&db, "select * from orders order by o_id");
        assert_eq!(e.startup_work, e.total_work);
        assert!(e.total_work > 1000.0);
    }

    #[test]
    fn limit_caps_rows() {
        let db = test_db();
        let e = estimate(&db, "select * from orders limit 5");
        assert_eq!(e.rows, 5.0);
    }

    #[test]
    fn range_predicates_interpolate_from_histograms() {
        let db = test_db();
        // o_id is uniform on 0..1000: `> 10` keeps ~99 %, `> 990` ~1 %.
        let wide = estimate(&db, "select * from orders where o_id > 10");
        assert!((wide.rows - 989.0).abs() < 25.0, "got {}", wide.rows);
        // Regression: the pre-histogram estimator returned a hardcoded
        // 1/3 (≈ 333 rows) regardless of where the predicate cut.
        let narrow = estimate(&db, "select * from orders where o_id > 990");
        assert!(narrow.rows < 30.0, "~1 % of the range, got {}", narrow.rows);
        // Literal-on-the-left flips the comparison.
        let flipped = estimate(&db, "select * from orders where 990 < o_id");
        assert!((flipped.rows - narrow.rows).abs() < 1e-9);
    }

    #[test]
    fn range_fallbacks_keep_one_third() {
        let db = test_db();
        let funcs = FuncRegistry::with_builtins();
        // A parameter probe is unknown at estimation time → fallback.
        let e = estimate(&db, "select * from orders where o_id > :k");
        assert!((e.rows - 1000.0 / 3.0).abs() < 1.0);
        // The legacy uniform baseline ignores histograms entirely.
        let plan = parse("select * from orders where o_id > 990").unwrap();
        let legacy = Estimator::new(&db, &funcs)
            .with_histograms(false)
            .estimate(&plan)
            .unwrap();
        assert!((legacy.rows - 1000.0 / 3.0).abs() < 1.0);
    }

    #[test]
    fn analyzed_empty_table_estimates_zero_rows() {
        // Regression: equality on an analyzed-empty table estimated 10 %.
        let mut db = Database::new();
        db.create_table(
            "empty",
            Schema::new(vec![Column::new("e_id", DataType::Int)]),
        )
        .unwrap();
        db.analyze_all();
        let e = estimate(&db, "select * from empty where e_id = 7");
        assert_eq!(e.rows, 0.0);
        let funcs = FuncRegistry::with_builtins();
        let est = Estimator::new(&db, &funcs);
        let schema = LogicalPlan::scan("empty")
            .output_schema(&db, &funcs)
            .unwrap();
        let plan = parse("select * from empty where e_id = 7").unwrap();
        let LogicalPlan::Select { pred, .. } = plan else {
            panic!()
        };
        assert_eq!(est.selectivity(&schema, &pred), 0.0);
    }

    #[test]
    fn eq_selectivity_scales_by_non_null_fraction() {
        // Regression: NULLs never satisfy equality, but the estimator
        // used raw 1/NDV.
        let mut db = Database::new();
        let t = db
            .create_table(
                "sparse",
                Schema::new(vec![
                    Column::new("s_id", DataType::Int),
                    Column::new("s_val", DataType::Int),
                ]),
            )
            .unwrap();
        for i in 0..100i64 {
            let v = if i % 2 == 0 {
                Value::Null
            } else {
                Value::Int(i % 5)
            };
            t.insert(vec![Value::Int(i), v]).unwrap();
        }
        db.analyze_all();
        // 50 non-null rows over 5 distinct values → 10 rows per value.
        let e = estimate(&db, "select * from sparse where s_val = 1");
        assert!((e.rows - 10.0).abs() < 1e-6, "got {}", e.rows);
        // The null-blind model would have said 100/5 = 20.
    }

    #[test]
    fn feedback_overrides_model_guesses() {
        let db = test_db();
        let funcs = FuncRegistry::with_builtins();
        let plan = parse("select * from orders where o_customer_sk = :k").unwrap();
        let fp = PlanFingerprint::of(&plan);
        let fb = crate::feedback::FeedbackStore::new();
        let base = Estimator::new(&db, &funcs).estimate(&plan).unwrap();
        assert!((base.rows - 10.0).abs() < 1e-9, "model guess: 1000/100");

        // Reality disagrees (a hot key): the observation wins.
        fb.record(
            &plan,
            600,
            &crate::exec::ExecWork {
                startup_rows: 0,
                total_rows: 1000,
            },
        );
        let fed = Estimator::new(&db, &funcs)
            .with_feedback(&fb)
            .estimate_fp(&plan, fp)
            .unwrap();
        assert_eq!(fed.rows, 600.0);
        assert_eq!(fed.total_work, 1000.0);
        assert_eq!(fed.row_bytes, base.row_bytes, "row size stays declared");
        assert_eq!(fb.served(), 1);

        // Cached estimates refresh when new observations arrive: the
        // feedback generation is part of the validity stamp.
        let cache = EstimateCache::new();
        let c1 = Estimator::new(&db, &funcs)
            .with_feedback(&fb)
            .with_cache(&cache)
            .estimate_fp(&plan, fp)
            .unwrap();
        assert_eq!(c1.rows, 600.0);
        fb.record(&plan, 0, &crate::exec::ExecWork::default());
        let c2 = Estimator::new(&db, &funcs)
            .with_feedback(&fb)
            .with_cache(&cache)
            .estimate_fp(&plan, fp)
            .unwrap();
        assert_eq!(c2.rows, 300.0, "running mean over two runs");
        assert_eq!(cache.misses(), 2, "generation bump flushed the cache");
    }

    #[test]
    fn read_only_table_mut_borrow_retains_cached_estimates() {
        // Regression: `Database::table_mut` bumped the stats epoch on
        // every borrow, so even read-only borrows evicted the entire
        // estimate cache.
        let mut db = test_db();
        let funcs = FuncRegistry::with_builtins();
        let cache = EstimateCache::new();
        let plan = parse("select * from orders where o_customer_sk = 7").unwrap();
        let fp = PlanFingerprint::of(&plan);
        for _ in 0..2 {
            Estimator::new(&db, &funcs)
                .with_cache(&cache)
                .estimate_fp(&plan, fp)
                .unwrap();
        }
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        let _ = db.table_mut("orders").unwrap().row_count();
        Estimator::new(&db, &funcs)
            .with_cache(&cache)
            .estimate_fp(&plan, fp)
            .unwrap();
        assert_eq!(
            (cache.hits(), cache.misses()),
            (2, 1),
            "hit counters keep climbing across read-only borrows"
        );
    }

    #[test]
    fn and_or_not_combinators() {
        let db = test_db();
        let funcs = FuncRegistry::with_builtins();
        let est = Estimator::new(&db, &funcs);
        let schema = LogicalPlan::scan("orders")
            .output_schema(&db, &funcs)
            .unwrap();
        let p_eq = parse("select * from orders where o_customer_sk = 1").unwrap();
        let LogicalPlan::Select { pred, .. } = p_eq else {
            panic!()
        };
        let p = est.selectivity(&schema, &pred);
        assert!((p - 0.01).abs() < 1e-9);
        let not_p = est.selectivity(&schema, &ScalarExpr::Not(Box::new(pred)));
        assert!((not_p - 0.99).abs() < 1e-9);
    }

    #[test]
    fn estimated_rows_track_actual_within_factor_two() {
        let db = test_db();
        let funcs = FuncRegistry::with_builtins();
        for sql in [
            "select * from orders where o_customer_sk = 42",
            "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk",
            "select o_status, count(*) from orders group by o_status",
        ] {
            let plan = parse(sql).unwrap();
            let est = Estimator::new(&db, &funcs).estimate(&plan).unwrap();
            let act = crate::exec::Executor::new(&db, &funcs)
                .execute(&plan, &std::collections::HashMap::new())
                .unwrap();
            let actual = act.row_count() as f64;
            assert!(
                est.rows <= actual * 2.0 + 1.0 && est.rows >= actual / 2.0 - 1.0,
                "{sql}: est {} vs actual {actual}",
                est.rows
            );
        }
    }

    #[test]
    fn cached_estimates_are_bit_identical_and_epoch_validated() {
        let mut db = test_db();
        let funcs = FuncRegistry::with_builtins();
        let cache = EstimateCache::new();
        let plan = parse("select * from orders where o_customer_sk = 7").unwrap();
        let fp = PlanFingerprint::of(&plan);

        let plain = Estimator::new(&db, &funcs).estimate(&plan).unwrap();
        let first = Estimator::new(&db, &funcs)
            .with_cache(&cache)
            .estimate_fp(&plan, fp)
            .unwrap();
        let second = Estimator::new(&db, &funcs)
            .with_cache(&cache)
            .estimate_fp(&plan, fp)
            .unwrap();
        assert_eq!(plain, first);
        assert_eq!(first, second);
        assert_eq!(cache.misses(), 1, "one compute");
        assert_eq!(cache.hits(), 1, "one cache hit");

        // Mutating the database advances the stats epoch → flush.
        db.table_mut("orders")
            .unwrap()
            .insert(vec![Value::Int(10_000), Value::Int(1), Value::str("open")])
            .unwrap();
        db.analyze_all();
        let third = Estimator::new(&db, &funcs)
            .with_cache(&cache)
            .estimate_fp(&plan, fp)
            .unwrap();
        assert_eq!(cache.misses(), 2, "stale entry recomputed");
        assert!(third.rows > second.rows - 1e-9, "new stats observed");

        // Different row_ns must not collide.
        let slow = Estimator::new(&db, &funcs)
            .with_cache(&cache)
            .with_row_ns(999.0)
            .estimate_fp(&plan, fp)
            .unwrap();
        assert_eq!(cache.misses(), 3);
        assert_eq!(slow.rows, third.rows);
    }

    #[test]
    fn cache_remembers_failures() {
        let db = test_db();
        let funcs = FuncRegistry::with_builtins();
        let cache = EstimateCache::new();
        let plan = LogicalPlan::scan("no_such_table");
        let fp = PlanFingerprint::of(&plan);
        for _ in 0..2 {
            assert!(Estimator::new(&db, &funcs)
                .with_cache(&cache)
                .estimate_fp(&plan, fp)
                .is_err());
        }
        assert_eq!(cache.misses(), 1, "failure cached");
        assert_eq!(cache.hits(), 1);
    }

    #[test]
    fn time_estimates_scale_with_row_cost() {
        let db = test_db();
        let funcs = FuncRegistry::with_builtins();
        let plan = parse("select * from orders").unwrap();
        let e = Estimator::new(&db, &funcs)
            .with_row_ns(100.0)
            .estimate(&plan)
            .unwrap();
        assert_eq!(e.last_row_ns(100.0), 1000.0 * 100.0);
        assert_eq!(e.first_row_ns(100.0), 0.0);
    }
}
