//! Vectorized execution over columnar storage — the default data plane.
//!
//! Operators pass `Chunk`s around: `Arc`-shared [`ColumnVec`]s plus a
//! *selection vector* of surviving row ids. Scans are zero-copy (they
//! clone the table's column `Arc`s, never the data), filters evaluate
//! predicates column-wise in batches of [`BATCH_SIZE`] ids through typed
//! kernels, joins hash on column keys, and rows are materialized only at
//! the result boundary.
//!
//! **Exact-equivalence contract.** This engine must be bit-identical to
//! the row engine in `exec.rs`: same output rows in the same order, same
//! [`ExecWork`] counters, and an error whenever the row engine errors.
//! Three properties make that hold:
//!
//! 1. Typed kernels replicate [`apply_bin_op`]/[`Value::sql_cmp`] exactly
//!    (integer compares stay integral, floats use total order, Int
//!    arithmetic wraps, `/0 → NULL`); every combination without a kernel
//!    falls back to a per-row `apply_bin_op` loop.
//! 2. The row engine never short-circuits `AND`/`OR` *inside* a predicate
//!    tree (both sides always evaluate) and evaluates nothing on empty
//!    input — so whole-tree vectorized evaluation with an empty-batch
//!    early-out errors in exactly the same situations. Conjunct *lists*
//!    (index-path residuals, join residuals), which the row engine does
//!    short-circuit per row, are applied progressively: each conjunct
//!    narrows the selection before the next evaluates.
//! 3. Order-sensitive accumulations (AVG's float sum, group first-seen
//!    order, stable sorts) run in selection order, matching row order.

use crate::column::{ColumnTable, ColumnVec, NullMask};
use crate::error::{DbError, DbResult};
use crate::exec::{AggState, ExecWork, Executor};
use crate::expr::{apply_bin_op, BinOp, ColRef, ScalarExpr};
use crate::func::FuncRegistry;
use crate::plan::{AggItem, LogicalPlan, SortDir};
use crate::schema::Schema;
use crate::value::{Row, Value};
use std::collections::HashMap;
use std::sync::Arc;

/// Rows processed per filter batch: large enough to amortize dispatch,
/// small enough that batch temporaries stay cache-resident.
pub const BATCH_SIZE: usize = 1024;

/// A batch-of-columns intermediate result: `cols` hold `len` base rows,
/// `sel` (when present) lists the surviving row ids in output order.
struct Chunk {
    schema: Schema,
    cols: Vec<Arc<ColumnVec>>,
    /// Base row count of `cols`.
    len: usize,
    /// Selection vector into `0..len`; `None` means all rows survive.
    sel: Option<Vec<u32>>,
}

impl Chunk {
    fn n_rows(&self) -> usize {
        match &self.sel {
            Some(s) => s.len(),
            None => self.len,
        }
    }

    /// The selection as explicit ids (identity when dense).
    fn ids(&self) -> Vec<u32> {
        match &self.sel {
            Some(s) => s.clone(),
            None => (0..self.len as u32).collect(),
        }
    }

    /// Build a dense chunk from materialized rows (aggregate outputs).
    fn from_rows(schema: Schema, rows: &[Row]) -> Chunk {
        let ct = ColumnTable::from_rows(&schema, rows);
        Chunk {
            schema,
            cols: ct.cols,
            len: ct.len,
            sel: None,
        }
    }

    /// Late materialization: clone the selected rows out, in order.
    fn materialize(&self) -> Vec<Row> {
        let mut out = Vec::with_capacity(self.n_rows());
        match &self.sel {
            Some(s) => {
                for &i in s {
                    out.push(self.cols.iter().map(|c| c.get(i as usize)).collect());
                }
            }
            None => {
                for i in 0..self.len {
                    out.push(self.cols.iter().map(|c| c.get(i)).collect());
                }
            }
        }
        out
    }
}

/// Entry point: run `plan` vectorized, materializing rows only here.
pub(crate) fn run(
    exec: &Executor<'_>,
    plan: &LogicalPlan,
    params: &HashMap<String, Value>,
) -> DbResult<(Schema, Vec<Row>, ExecWork)> {
    let (chunk, work) = run_plan(exec, plan, params)?;
    let rows = chunk.materialize();
    Ok((chunk.schema, rows, work))
}

fn run_plan(
    exec: &Executor<'_>,
    plan: &LogicalPlan,
    params: &HashMap<String, Value>,
) -> DbResult<(Chunk, ExecWork)> {
    match plan {
        LogicalPlan::Scan { table, alias } => {
            let t = exec.db.table(table)?;
            let q = alias.clone().unwrap_or_else(|| table.clone());
            let schema = t.schema().with_qualifier(&q);
            let ct = t.columnar();
            let work = ExecWork {
                startup_rows: 0,
                total_rows: ct.len as u64,
            };
            Ok((
                Chunk {
                    schema,
                    cols: ct.cols.clone(),
                    len: ct.len,
                    sel: None,
                },
                work,
            ))
        }
        LogicalPlan::Select { input, pred } => run_select(exec, input, pred, params),
        LogicalPlan::Project { input, items } => {
            let (chunk, mut work) = run_plan(exec, input, params)?;
            let out_schema = plan.output_schema(exec.db, exec.funcs)?;
            let ids = chunk.ids();
            let n = ids.len();
            let mut cols = Vec::with_capacity(items.len());
            for (expr, _) in items {
                let v = eval_vec(expr, &chunk.schema, &chunk.cols, &ids, params, exec.funcs)?;
                cols.push(Arc::new(vcol_to_column(v, n)));
            }
            work.total_rows += n as u64;
            Ok((
                Chunk {
                    schema: out_schema,
                    cols,
                    len: n,
                    sel: None,
                },
                work,
            ))
        }
        LogicalPlan::Join { left, right, pred } => run_join(exec, left, right, pred, params),
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => run_aggregate(exec, plan, input, group_by, aggs, params),
        LogicalPlan::OrderBy { input, keys } => {
            let (mut chunk, mut work) = run_plan(exec, input, params)?;
            let mut key_idx = Vec::with_capacity(keys.len());
            for (c, dir) in keys {
                key_idx.push((chunk.schema.resolve(&c.to_ref_string())?, *dir));
            }
            let mut ids = chunk.ids();
            // Stable index sort with the row engine's comparator
            // (`Value::cmp` per key column) — identical permutation.
            ids.sort_by(|&a, &b| {
                for &(i, dir) in &key_idx {
                    let ord = cmp_rows(&chunk.cols[i], a as usize, b as usize);
                    let ord = match dir {
                        SortDir::Asc => ord,
                        SortDir::Desc => ord.reverse(),
                    };
                    if ord != std::cmp::Ordering::Equal {
                        return ord;
                    }
                }
                std::cmp::Ordering::Equal
            });
            let n = ids.len() as u64;
            let sort_work = n * (64 - n.max(1).leading_zeros() as u64).max(1);
            work.startup_rows = work.total_rows + sort_work;
            work.total_rows += sort_work;
            chunk.sel = Some(ids);
            Ok((chunk, work))
        }
        LogicalPlan::Limit { input, n } => {
            let (mut chunk, work) = run_plan(exec, input, params)?;
            let n = *n as usize;
            match &mut chunk.sel {
                Some(s) => s.truncate(n),
                None => {
                    if chunk.len > n {
                        chunk.sel = Some((0..n as u32).collect());
                    }
                }
            }
            Ok((chunk, work))
        }
    }
}

/// `Value::cmp` on two rows of one column without materializing values.
fn cmp_rows(col: &ColumnVec, a: usize, b: usize) -> std::cmp::Ordering {
    use std::cmp::Ordering;
    match col {
        ColumnVec::Mixed(v) => v[a].cmp(&v[b]),
        _ => match (col.is_null(a), col.is_null(b)) {
            (true, true) => Ordering::Equal,
            // NULL has the lowest type rank.
            (true, false) => Ordering::Less,
            (false, true) => Ordering::Greater,
            (false, false) => match col {
                ColumnVec::Int { data, .. } => data[a].cmp(&data[b]),
                ColumnVec::Float { data, .. } => data[a].total_cmp(&data[b]),
                ColumnVec::Str { data, .. } => data[a].cmp(&data[b]),
                ColumnVec::Bool { data, .. } => data[a].cmp(&data[b]),
                ColumnVec::Mixed(_) => unreachable!(),
            },
        },
    }
}

fn run_select(
    exec: &Executor<'_>,
    input: &LogicalPlan,
    pred: &ScalarExpr,
    params: &HashMap<String, Value>,
) -> DbResult<(Chunk, ExecWork)> {
    // Index fast path: mirror of the row engine's probe selection (first
    // eligible equality conjunct over an indexed base-table column).
    if let LogicalPlan::Scan { table, alias } = input {
        let t = exec.db.table(table)?;
        let q = alias.clone().unwrap_or_else(|| table.clone());
        let schema = t.schema().with_qualifier(&q);
        let conjuncts = pred.conjuncts();
        for (ci, c) in conjuncts.iter().enumerate() {
            if let ScalarExpr::Bin(BinOp::Eq, l, r) = c {
                let (col, key_expr) = match (&**l, &**r) {
                    (ScalarExpr::Col(col), other) if !other.references_columns() => (col, other),
                    (other, ScalarExpr::Col(col)) if !other.references_columns() => (col, other),
                    _ => continue,
                };
                let Ok(idx) = schema.resolve(&col.to_ref_string()) else {
                    continue;
                };
                if !t.has_index(idx) {
                    continue;
                }
                let key = key_expr.eval(&Schema::default(), &Vec::new(), params, exec.funcs)?;
                let positions = t.index_lookup(idx, &key).unwrap_or(&[]);
                let work = ExecWork {
                    startup_rows: 0,
                    total_rows: positions.len() as u64 + 1,
                };
                let ct = t.columnar();
                let mut chunk = Chunk {
                    schema,
                    cols: ct.cols.clone(),
                    len: ct.len,
                    sel: Some(positions.iter().map(|&p| p as u32).collect()),
                };
                // Remaining conjuncts narrow the selection in order
                // (progressive = the row engine's per-row short-circuit).
                for (i, other) in conjuncts.iter().enumerate() {
                    if i == ci {
                        continue;
                    }
                    filter_chunk(&mut chunk, other, params, exec.funcs)?;
                }
                return Ok((chunk, work));
            }
        }
    }
    // Generic filter: whole predicate tree, batched over the selection.
    let (mut chunk, mut work) = run_plan(exec, input, params)?;
    let n = chunk.n_rows() as u64;
    filter_chunk(&mut chunk, pred, params, exec.funcs)?;
    work.total_rows += n;
    Ok((chunk, work))
}

/// Narrow `chunk`'s selection to rows where `pred` is true, evaluating
/// column-wise in [`BATCH_SIZE`] batches.
fn filter_chunk(
    chunk: &mut Chunk,
    pred: &ScalarExpr,
    params: &HashMap<String, Value>,
    funcs: &FuncRegistry,
) -> DbResult<()> {
    let ids = chunk.ids();
    let mut keep: Vec<u32> = Vec::new();
    for batch in ids.chunks(BATCH_SIZE) {
        let v = eval_vec(pred, &chunk.schema, &chunk.cols, batch, params, funcs)?;
        append_truthy(&v, batch, &mut keep);
    }
    chunk.sel = Some(keep);
    Ok(())
}

/// Append the ids (from `batch`) whose predicate value is `TRUE`.
fn append_truthy(v: &VCol, batch: &[u32], keep: &mut Vec<u32>) {
    match v {
        VCol::Bool(data, nulls) => {
            for (k, &id) in batch.iter().enumerate() {
                if data[k] && !nulls.as_ref().is_some_and(|n| n[k]) {
                    keep.push(id);
                }
            }
        }
        VCol::Const(Value::Bool(true)) => keep.extend_from_slice(batch),
        VCol::Const(_) => {}
        VCol::Vals(vals) => {
            for (k, &id) in batch.iter().enumerate() {
                if vals[k].as_bool() == Some(true) {
                    keep.push(id);
                }
            }
        }
        // Non-boolean typed results are never TRUE.
        VCol::Int(..) | VCol::Float(..) | VCol::Str(..) => {}
    }
}

fn run_join(
    exec: &Executor<'_>,
    left: &LogicalPlan,
    right: &LogicalPlan,
    pred: &ScalarExpr,
    params: &HashMap<String, Value>,
) -> DbResult<(Chunk, ExecWork)> {
    if let Some(result) = try_inl_join(exec, left, right, pred, params)? {
        return Ok(result);
    }
    let (l_chunk, l_work) = run_plan(exec, left, params)?;
    let (r_chunk, r_work) = run_plan(exec, right, params)?;
    let out_schema = l_chunk.schema.join(&r_chunk.schema);
    let mut work = ExecWork::default();
    work.add(l_work);
    work.add(r_work);

    // Equi-conjunct detection, identical to the row engine (first match
    // in conjunct order, either orientation).
    let conjuncts = pred.conjuncts();
    let mut equi: Option<(usize, usize)> = None;
    for c in &conjuncts {
        if let ScalarExpr::Bin(BinOp::Eq, a, b) = c {
            if let (ScalarExpr::Col(ca), ScalarExpr::Col(cb)) = (&**a, &**b) {
                let ra = ca.to_ref_string();
                let rb = cb.to_ref_string();
                if let (Ok(i), Ok(j)) = (l_chunk.schema.resolve(&ra), r_chunk.schema.resolve(&rb)) {
                    equi = Some((i, j));
                    break;
                }
                if let (Ok(i), Ok(j)) = (l_chunk.schema.resolve(&rb), r_chunk.schema.resolve(&ra)) {
                    equi = Some((i, j));
                    break;
                }
            }
        }
    }

    if let Some((li, ri)) = equi {
        // Hash join; build on the smaller side, probe-major output.
        let build_left = l_chunk.n_rows() <= r_chunk.n_rows();
        let (build, probe, b_key, p_key) = if build_left {
            (&l_chunk, &r_chunk, li, ri)
        } else {
            (&r_chunk, &l_chunk, ri, li)
        };
        let b_ids = build.ids();
        let p_ids = probe.ids();
        work.startup_rows = work.total_rows + b_ids.len() as u64;
        work.total_rows += b_ids.len() as u64 + p_ids.len() as u64;
        let (cand_b, cand_p) = hash_candidates(build, b_key, &b_ids, probe, p_key, &p_ids);
        let (cand_l, cand_r) = if build_left {
            (&cand_b, &cand_p)
        } else {
            (&cand_p, &cand_b)
        };
        let mut chunk = gather_join(&out_schema, &l_chunk, cand_l, &r_chunk, cand_r);
        // Residual check = all conjuncts, progressively (short-circuit).
        for c in &conjuncts {
            filter_chunk(&mut chunk, c, params, exec.funcs)?;
        }
        // The row engine charges one row-touch per row *passing* the
        // residual.
        work.total_rows += chunk.n_rows() as u64;
        Ok((chunk, work))
    } else {
        // Nested-loop join: generate l-major candidate pairs in batches,
        // evaluate the full predicate per batch.
        let l_ids = l_chunk.ids();
        let r_ids = r_chunk.ids();
        work.startup_rows = work.total_rows;
        work.total_rows += (l_ids.len() as u64).saturating_mul(r_ids.len() as u64);
        let mut keep_l: Vec<u32> = Vec::new();
        let mut keep_r: Vec<u32> = Vec::new();
        let mut batch_l: Vec<u32> = Vec::with_capacity(BATCH_SIZE);
        let mut batch_r: Vec<u32> = Vec::with_capacity(BATCH_SIZE);
        let flush = |batch_l: &mut Vec<u32>,
                     batch_r: &mut Vec<u32>,
                     keep_l: &mut Vec<u32>,
                     keep_r: &mut Vec<u32>|
         -> DbResult<()> {
            if batch_l.is_empty() {
                return Ok(());
            }
            let mini = gather_join(&out_schema, &l_chunk, batch_l, &r_chunk, batch_r);
            let ids = mini.ids();
            let v = eval_vec(pred, &mini.schema, &mini.cols, &ids, params, exec.funcs)?;
            let mut local: Vec<u32> = Vec::new();
            append_truthy(&v, &ids, &mut local);
            for &k in &local {
                keep_l.push(batch_l[k as usize]);
                keep_r.push(batch_r[k as usize]);
            }
            batch_l.clear();
            batch_r.clear();
            Ok(())
        };
        for &li in &l_ids {
            for &ri_id in &r_ids {
                batch_l.push(li);
                batch_r.push(ri_id);
                if batch_l.len() == BATCH_SIZE {
                    flush(&mut batch_l, &mut batch_r, &mut keep_l, &mut keep_r)?;
                }
            }
        }
        flush(&mut batch_l, &mut batch_r, &mut keep_l, &mut keep_r)?;
        let chunk = gather_join(&out_schema, &l_chunk, &keep_l, &r_chunk, &keep_r);
        Ok((chunk, work))
    }
}

/// Build the candidate pair lists of a hash join: probe-major order,
/// matches in build-insertion order — exactly the row engine's output
/// order. Returns base ids per side.
fn hash_candidates(
    build: &Chunk,
    b_key: usize,
    b_ids: &[u32],
    probe: &Chunk,
    p_key: usize,
    p_ids: &[u32],
) -> (Vec<u32>, Vec<u32>) {
    let mut cand_b: Vec<u32> = Vec::new();
    let mut cand_p: Vec<u32> = Vec::new();
    // Typed fast path: both keys are null-free Int columns, hash raw i64.
    // (With possible NULL keys the generic path keeps the row engine's
    // NULL==NULL candidate pairs, which its residual then discards.)
    if let (
        ColumnVec::Int {
            data: bd,
            nulls: None,
        },
        ColumnVec::Int {
            data: pd,
            nulls: None,
        },
    ) = (&*build.cols[b_key], &*probe.cols[p_key])
    {
        let mut table: HashMap<i64, Vec<u32>> = HashMap::with_capacity(b_ids.len());
        for &bi in b_ids {
            table.entry(bd[bi as usize]).or_default().push(bi);
        }
        for &pi in p_ids {
            if let Some(matches) = table.get(&pd[pi as usize]) {
                for &bi in matches {
                    cand_b.push(bi);
                    cand_p.push(pi);
                }
            }
        }
        return (cand_b, cand_p);
    }
    // Generic path: hash full `Value`s (NULL keys included, as in the row
    // engine's `HashMap<&Value, _>` build).
    let b_col = &build.cols[b_key];
    let p_col = &probe.cols[p_key];
    let mut table: HashMap<Value, Vec<u32>> = HashMap::with_capacity(b_ids.len());
    for &bi in b_ids {
        table.entry(b_col.get(bi as usize)).or_default().push(bi);
    }
    for &pi in p_ids {
        if let Some(matches) = table.get(&p_col.get(pi as usize)) {
            for &bi in matches {
                cand_b.push(bi);
                cand_p.push(pi);
            }
        }
    }
    (cand_b, cand_p)
}

/// Gather left and right candidate rows into one dense joined chunk.
fn gather_join(
    out_schema: &Schema,
    l_chunk: &Chunk,
    l_ids: &[u32],
    r_chunk: &Chunk,
    r_ids: &[u32],
) -> Chunk {
    let mut cols = Vec::with_capacity(l_chunk.cols.len() + r_chunk.cols.len());
    for c in &l_chunk.cols {
        cols.push(Arc::new(c.gather(l_ids)));
    }
    for c in &r_chunk.cols {
        cols.push(Arc::new(c.gather(r_ids)));
    }
    Chunk {
        schema: out_schema.clone(),
        cols,
        len: l_ids.len(),
        sel: None,
    }
}

/// Index-nested-loops join, mirroring the row engine's decision order:
/// inner side must be a bare scan with an index on the *last* eligible
/// equi conjunct; the outer side runs first (errors propagate even if the
/// size heuristic then rejects), and candidates charge one row-touch per
/// outer row plus one per index hit before residual checks.
fn try_inl_join(
    exec: &Executor<'_>,
    left: &LogicalPlan,
    right: &LogicalPlan,
    pred: &ScalarExpr,
    params: &HashMap<String, Value>,
) -> DbResult<Option<(Chunk, ExecWork)>> {
    for (outer_plan, inner_plan, inner_is_right) in [(left, right, true), (right, left, false)] {
        let LogicalPlan::Scan { table, alias } = inner_plan else {
            continue;
        };
        let t = exec.db.table(table)?;
        let inner_schema = t.schema().with_qualifier(alias.as_deref().unwrap_or(table));
        let outer_schema = outer_plan.output_schema(exec.db, exec.funcs)?;
        let conjuncts = pred.conjuncts();
        let mut probe: Option<(usize, usize)> = None;
        for c in &conjuncts {
            let ScalarExpr::Bin(BinOp::Eq, a, b) = c else {
                continue;
            };
            let (ScalarExpr::Col(ca), ScalarExpr::Col(cb)) = (&**a, &**b) else {
                continue;
            };
            for (x, y) in [(ca, cb), (cb, ca)] {
                if let (Ok(o), Ok(i)) = (
                    outer_schema.resolve(&x.to_ref_string()),
                    inner_schema.resolve(&y.to_ref_string()),
                ) {
                    if t.has_index(i) {
                        probe = Some((o, i));
                    }
                }
            }
        }
        let Some((o_col, i_col)) = probe else {
            continue;
        };

        let (o_chunk, o_work) = run_plan(exec, outer_plan, params)?;
        if o_chunk.n_rows() * 2 >= t.row_count() {
            continue; // hash join is the better plan; fall through
        }

        let out_schema = if inner_is_right {
            o_chunk.schema.join(&inner_schema)
        } else {
            inner_schema.join(&o_chunk.schema)
        };
        let mut work = o_work;
        let o_ids = o_chunk.ids();
        let i_ct = t.columnar();
        let mut cand_o: Vec<u32> = Vec::new();
        let mut cand_i: Vec<u32> = Vec::new();
        let o_key_col = &o_chunk.cols[o_col];
        for &oid in &o_ids {
            work.total_rows += 1;
            let key = o_key_col.get(oid as usize);
            let hits = t.index_lookup(i_col, &key).unwrap_or(&[]);
            for &pos in hits {
                work.total_rows += 1;
                cand_o.push(oid);
                cand_i.push(pos as u32);
            }
        }
        let mut cols = Vec::with_capacity(o_chunk.cols.len() + i_ct.cols.len());
        if inner_is_right {
            for c in &o_chunk.cols {
                cols.push(Arc::new(c.gather(&cand_o)));
            }
            for c in &i_ct.cols {
                cols.push(Arc::new(c.gather(&cand_i)));
            }
        } else {
            for c in &i_ct.cols {
                cols.push(Arc::new(c.gather(&cand_i)));
            }
            for c in &o_chunk.cols {
                cols.push(Arc::new(c.gather(&cand_o)));
            }
        }
        let mut chunk = Chunk {
            schema: out_schema,
            cols,
            len: cand_o.len(),
            sel: None,
        };
        // All conjuncts, in order, progressively (per-hit short-circuit).
        for c in &conjuncts {
            filter_chunk(&mut chunk, c, params, exec.funcs)?;
        }
        return Ok(Some((chunk, work)));
    }
    Ok(None)
}

fn run_aggregate(
    exec: &Executor<'_>,
    plan: &LogicalPlan,
    input: &LogicalPlan,
    group_by: &[ColRef],
    aggs: &[AggItem],
    params: &HashMap<String, Value>,
) -> DbResult<(Chunk, ExecWork)> {
    let (chunk, mut work) = run_plan(exec, input, params)?;
    let out_schema = plan.output_schema(exec.db, exec.funcs)?;
    let mut group_idx = Vec::with_capacity(group_by.len());
    for g in group_by {
        group_idx.push(chunk.schema.resolve(&g.to_ref_string())?);
    }
    let ids = chunk.ids();
    let n = ids.len();

    // Assign a group id to every row, preserving first-seen order.
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut gid_of_row: Vec<u32> = Vec::with_capacity(n);
    if group_idx.len() == 1 {
        if let ColumnVec::Int { data, nulls } = &*chunk.cols[group_idx[0]] {
            // Typed path: single Int key, hash raw i64 (NULL keys group
            // together, as `Value::Null == Value::Null` does).
            let mut seen: HashMap<Option<i64>, u32> = HashMap::new();
            for &id in &ids {
                let i = id as usize;
                let key = if nulls.as_ref().is_some_and(|m| m.is_null(i)) {
                    None
                } else {
                    Some(data[i])
                };
                let next = order.len() as u32;
                let gid = *seen.entry(key).or_insert_with(|| {
                    order.push(vec![key.map_or(Value::Null, Value::Int)]);
                    next
                });
                gid_of_row.push(gid);
            }
        } else {
            assign_value_groups(&chunk, &group_idx, &ids, &mut order, &mut gid_of_row);
        }
    } else {
        assign_value_groups(&chunk, &group_idx, &ids, &mut order, &mut gid_of_row);
    }

    let mut states: Vec<Vec<AggState>> = order
        .iter()
        .map(|_| aggs.iter().map(|a| AggState::new(a.func)).collect())
        .collect();

    // Per aggregate item: evaluate the argument once over all rows, then
    // fold into states in row order (AVG's float sum is order-sensitive).
    for (ai, item) in aggs.iter().enumerate() {
        match &item.arg {
            Some(e) => {
                let v = eval_vec(e, &chunk.schema, &chunk.cols, &ids, params, exec.funcs)?;
                for (k, &gid) in gid_of_row.iter().enumerate() {
                    let val = v.value_at(k);
                    states[gid as usize][ai].update(Some(&val));
                }
            }
            None => {
                for &gid in &gid_of_row {
                    states[gid as usize][ai].update(None);
                }
            }
        }
    }

    // Scalar aggregate over empty input still emits one row.
    if group_by.is_empty() && order.is_empty() {
        order.push(Vec::new());
        states.push(aggs.iter().map(|a| AggState::new(a.func)).collect());
    }

    let mut out = Vec::with_capacity(order.len());
    for (key, group_states) in order.into_iter().zip(states) {
        let mut row = key;
        for s in group_states {
            row.push(s.finish());
        }
        out.push(row);
    }
    work.total_rows += n as u64;
    work.startup_rows = work.total_rows;
    Ok((Chunk::from_rows(out_schema, &out), work))
}

/// Group assignment over full `Value` keys (multi-column or non-Int).
fn assign_value_groups(
    chunk: &Chunk,
    group_idx: &[usize],
    ids: &[u32],
    order: &mut Vec<Vec<Value>>,
    gid_of_row: &mut Vec<u32>,
) {
    let mut seen: HashMap<Vec<Value>, u32> = HashMap::new();
    for &id in ids {
        let key: Vec<Value> = group_idx
            .iter()
            .map(|&c| chunk.cols[c].get(id as usize))
            .collect();
        let next = order.len() as u32;
        let gid = match seen.get(&key) {
            Some(&g) => g,
            None => {
                order.push(key.clone());
                seen.insert(key, next);
                next
            }
        };
        gid_of_row.push(gid);
    }
}

// ---------------------------------------------------------------------------
// Vectorized expression evaluation
// ---------------------------------------------------------------------------

/// A vectorized expression result over one batch of rows: typed vectors
/// with optional per-row null flags, a broadcast constant, or exact
/// `Value`s as the fallback.
enum VCol {
    Int(Vec<i64>, Option<Vec<bool>>),
    Float(Vec<f64>, Option<Vec<bool>>),
    Str(Vec<String>, Option<Vec<bool>>),
    Bool(Vec<bool>, Option<Vec<bool>>),
    /// One value for every row of the batch.
    Const(Value),
    /// Exact per-row values (mixed types).
    Vals(Vec<Value>),
}

impl VCol {
    /// The value at batch position `k`.
    fn value_at(&self, k: usize) -> Value {
        fn nul(nulls: &Option<Vec<bool>>, k: usize) -> bool {
            nulls.as_ref().is_some_and(|n| n[k])
        }
        match self {
            VCol::Int(d, n) => {
                if nul(n, k) {
                    Value::Null
                } else {
                    Value::Int(d[k])
                }
            }
            VCol::Float(d, n) => {
                if nul(n, k) {
                    Value::Null
                } else {
                    Value::Float(d[k])
                }
            }
            VCol::Str(d, n) => {
                if nul(n, k) {
                    Value::Null
                } else {
                    Value::Str(d[k].clone())
                }
            }
            VCol::Bool(d, n) => {
                if nul(n, k) {
                    Value::Null
                } else {
                    Value::Bool(d[k])
                }
            }
            VCol::Const(v) => v.clone(),
            VCol::Vals(v) => v[k].clone(),
        }
    }

    /// Materialize the batch as owned values.
    fn to_vals(&self, n: usize) -> Vec<Value> {
        match self {
            VCol::Const(v) => vec![v.clone(); n],
            VCol::Vals(v) => v.clone(),
            _ => (0..n).map(|k| self.value_at(k)).collect(),
        }
    }
}

/// Convert a batch result into storable column form.
fn vcol_to_column(v: VCol, n: usize) -> ColumnVec {
    fn mask(nulls: Option<Vec<bool>>, n: usize) -> Option<NullMask> {
        let nulls = nulls?;
        if !nulls.iter().any(|&b| b) {
            return None;
        }
        let mut m = NullMask::new(n);
        for (i, &b) in nulls.iter().enumerate() {
            if b {
                m.set_null(i);
            }
        }
        Some(m)
    }
    match v {
        VCol::Int(data, nulls) => ColumnVec::Int {
            nulls: mask(nulls, n),
            data,
        },
        VCol::Float(data, nulls) => ColumnVec::Float {
            nulls: mask(nulls, n),
            data,
        },
        VCol::Str(data, nulls) => ColumnVec::Str {
            nulls: mask(nulls, n),
            data,
        },
        VCol::Bool(data, nulls) => ColumnVec::Bool {
            nulls: mask(nulls, n),
            data,
        },
        VCol::Vals(vals) => ColumnVec::from_values(vals),
        VCol::Const(val) => match val {
            Value::Int(x) => ColumnVec::Int {
                data: vec![x; n],
                nulls: None,
            },
            Value::Float(x) => ColumnVec::Float {
                data: vec![x; n],
                nulls: None,
            },
            Value::Str(s) => ColumnVec::Str {
                data: vec![s; n],
                nulls: None,
            },
            Value::Bool(b) => ColumnVec::Bool {
                data: vec![b; n],
                nulls: None,
            },
            Value::Null => ColumnVec::from_values(vec![Value::Null; n]),
        },
    }
}

/// Evaluate `expr` over the rows listed in `ids` (base ids into `cols`).
///
/// Empty batches return immediately without resolving anything — the row
/// engine evaluates nothing over zero rows, so neither may we.
fn eval_vec(
    expr: &ScalarExpr,
    schema: &Schema,
    cols: &[Arc<ColumnVec>],
    ids: &[u32],
    params: &HashMap<String, Value>,
    funcs: &FuncRegistry,
) -> DbResult<VCol> {
    let n = ids.len();
    if n == 0 {
        return Ok(VCol::Vals(Vec::new()));
    }
    match expr {
        ScalarExpr::Lit(v) => Ok(VCol::Const(v.clone())),
        ScalarExpr::Param(name) => params
            .get(name)
            .cloned()
            .map(VCol::Const)
            .ok_or_else(|| DbError::UnboundParam(name.clone())),
        ScalarExpr::Col(c) => {
            let i = schema.resolve(&c.to_ref_string())?;
            Ok(gather_vcol(&cols[i], ids))
        }
        ScalarExpr::Bin(op, l, r) => {
            let lv = eval_vec(l, schema, cols, ids, params, funcs)?;
            let rv = eval_vec(r, schema, cols, ids, params, funcs)?;
            combine(*op, lv, rv, n)
        }
        ScalarExpr::Not(e) => {
            let v = eval_vec(e, schema, cols, ids, params, funcs)?;
            match v {
                VCol::Bool(mut data, nulls) => {
                    for b in &mut data {
                        *b = !*b;
                    }
                    Ok(VCol::Bool(data, nulls))
                }
                VCol::Const(Value::Bool(b)) => Ok(VCol::Const(Value::Bool(!b))),
                VCol::Const(Value::Null) => Ok(VCol::Const(Value::Null)),
                VCol::Const(other) => Err(DbError::Type(format!("NOT applied to {other}"))),
                other => {
                    // Per-row semantics: NULL stays NULL, non-boolean
                    // errors at the first non-null row.
                    let vals = other.to_vals(n);
                    let mut out = Vec::with_capacity(n);
                    for v in vals {
                        match v {
                            Value::Bool(b) => out.push(Value::Bool(!b)),
                            Value::Null => out.push(Value::Null),
                            v => return Err(DbError::Type(format!("NOT applied to {v}"))),
                        }
                    }
                    Ok(VCol::Vals(out))
                }
            }
        }
        ScalarExpr::Func(name, args) => {
            let mut arg_cols = Vec::with_capacity(args.len());
            for a in args {
                arg_cols.push(eval_vec(a, schema, cols, ids, params, funcs)?);
            }
            let mut out = Vec::with_capacity(n);
            let mut call_args = vec![Value::Null; args.len()];
            for k in 0..n {
                for (s, c) in call_args.iter_mut().zip(&arg_cols) {
                    *s = c.value_at(k);
                }
                out.push(funcs.call(name, &call_args)?);
            }
            Ok(VCol::Vals(out))
        }
    }
}

/// Gather a storage column into a batch result (typed, nulls as flags).
fn gather_vcol(col: &ColumnVec, ids: &[u32]) -> VCol {
    fn flags(col: &ColumnVec, ids: &[u32]) -> Option<Vec<bool>> {
        if col.null_count() == 0 {
            return None;
        }
        Some(ids.iter().map(|&i| col.is_null(i as usize)).collect())
    }
    match col {
        ColumnVec::Int { data, .. } => VCol::Int(
            ids.iter().map(|&i| data[i as usize]).collect(),
            flags(col, ids),
        ),
        ColumnVec::Float { data, .. } => VCol::Float(
            ids.iter().map(|&i| data[i as usize]).collect(),
            flags(col, ids),
        ),
        ColumnVec::Str { data, .. } => VCol::Str(
            ids.iter().map(|&i| data[i as usize].clone()).collect(),
            flags(col, ids),
        ),
        ColumnVec::Bool { data, .. } => VCol::Bool(
            ids.iter().map(|&i| data[i as usize]).collect(),
            flags(col, ids),
        ),
        ColumnVec::Mixed(vals) => {
            VCol::Vals(ids.iter().map(|&i| vals[i as usize].clone()).collect())
        }
    }
}

// --- typed kernel plumbing --------------------------------------------------

/// One side of a binary kernel: a slice with null flags, or a broadcast
/// scalar (possibly NULL).
#[derive(Clone, Copy)]
enum Side<'v, T: Copy> {
    Slice(&'v [T], Option<&'v [bool]>),
    Const(T),
    ConstNull,
}

impl<'v, T: Copy + Default> Side<'v, T> {
    #[inline]
    fn val(&self, k: usize) -> T {
        match self {
            Side::Slice(d, _) => d[k],
            Side::Const(v) => *v,
            Side::ConstNull => T::default(),
        }
    }

    #[inline]
    fn is_null(&self, k: usize) -> bool {
        match self {
            Side::Slice(_, nulls) => nulls.is_some_and(|n| n[k]),
            Side::Const(_) => false,
            Side::ConstNull => true,
        }
    }
}

fn int_side<'v>(v: &'v VCol) -> Option<Side<'v, i64>> {
    match v {
        VCol::Int(d, n) => Some(Side::Slice(d, n.as_deref())),
        VCol::Const(Value::Int(x)) => Some(Side::Const(*x)),
        VCol::Const(Value::Null) => Some(Side::ConstNull),
        _ => None,
    }
}

/// A float-kernel side: accepts Float *and* Int sources (numeric
/// cross-type compares and arithmetic go through `f64`, as in
/// `sql_cmp`/`apply_bin_op`).
fn float_side<'v>(v: &'v VCol, tmp: &'v mut Vec<f64>) -> Option<Side<'v, f64>> {
    match v {
        VCol::Float(d, n) => Some(Side::Slice(d, n.as_deref())),
        VCol::Int(d, n) => {
            *tmp = d.iter().map(|&x| x as f64).collect();
            Some(Side::Slice(tmp, n.as_deref()))
        }
        VCol::Const(Value::Float(x)) => Some(Side::Const(*x)),
        VCol::Const(Value::Int(x)) => Some(Side::Const(*x as f64)),
        VCol::Const(Value::Null) => Some(Side::ConstNull),
        _ => None,
    }
}

fn bool_side<'v>(v: &'v VCol) -> Option<Side<'v, bool>> {
    match v {
        VCol::Bool(d, n) => Some(Side::Slice(d, n.as_deref())),
        VCol::Const(Value::Bool(b)) => Some(Side::Const(*b)),
        VCol::Const(Value::Null) => Some(Side::ConstNull),
        _ => None,
    }
}

/// Is this a Str batch (typed or constant)? Returns accessor data.
enum StrSide<'v> {
    Slice(&'v [String], Option<&'v [bool]>),
    Const(&'v str),
    ConstNull,
}

impl<'v> StrSide<'v> {
    #[inline]
    fn val(&self, k: usize) -> &str {
        match self {
            StrSide::Slice(d, _) => &d[k],
            StrSide::Const(s) => s,
            StrSide::ConstNull => "",
        }
    }

    #[inline]
    fn is_null(&self, k: usize) -> bool {
        match self {
            StrSide::Slice(_, nulls) => nulls.is_some_and(|n| n[k]),
            StrSide::Const(_) => false,
            StrSide::ConstNull => true,
        }
    }
}

fn str_side<'v>(v: &'v VCol) -> Option<StrSide<'v>> {
    match v {
        VCol::Str(d, n) => Some(StrSide::Slice(d, n.as_deref())),
        VCol::Const(Value::Str(s)) => Some(StrSide::Const(s)),
        VCol::Const(Value::Null) => Some(StrSide::ConstNull),
        _ => None,
    }
}

#[inline]
fn cmp_holds(op: BinOp, ord: std::cmp::Ordering) -> bool {
    use std::cmp::Ordering::*;
    match op {
        BinOp::Eq => ord == Equal,
        BinOp::Ne => ord != Equal,
        BinOp::Lt => ord == Less,
        BinOp::Le => ord != Greater,
        BinOp::Gt => ord == Greater,
        BinOp::Ge => ord != Less,
        _ => unreachable!("comparison operator"),
    }
}

/// Combine two batch results under `op` with exact `apply_bin_op`
/// semantics. Typed kernels cover the hot combinations; everything else
/// falls back to a per-row `apply_bin_op` loop (bit-identical by
/// construction, first error in row order).
fn combine(op: BinOp, l: VCol, r: VCol, n: usize) -> DbResult<VCol> {
    use BinOp::*;
    match op {
        Eq | Ne | Lt | Le | Gt | Ge => {
            // Int × Int stays integral (i64 beyond 2^53 must not round).
            if let (Some(a), Some(b)) = (int_side(&l), int_side(&r)) {
                let mut data = Vec::with_capacity(n);
                let mut nulls: Option<Vec<bool>> = None;
                for k in 0..n {
                    if a.is_null(k) || b.is_null(k) {
                        nulls.get_or_insert_with(|| vec![false; n])[k] = true;
                        data.push(false);
                    } else {
                        data.push(cmp_holds(op, a.val(k).cmp(&b.val(k))));
                    }
                }
                return Ok(VCol::Bool(data, nulls));
            }
            // Numeric (mixed Int/Float) via total_cmp on f64.
            let numeric = matches!(l, VCol::Float(..) | VCol::Const(Value::Float(_)))
                || matches!(r, VCol::Float(..) | VCol::Const(Value::Float(_)));
            if numeric {
                let (mut ta, mut tb) = (Vec::new(), Vec::new());
                let a = float_side(&l, &mut ta);
                let b = float_side(&r, &mut tb);
                if let (Some(a), Some(b)) = (a, b) {
                    let mut data = Vec::with_capacity(n);
                    let mut nulls: Option<Vec<bool>> = None;
                    for k in 0..n {
                        if a.is_null(k) || b.is_null(k) {
                            nulls.get_or_insert_with(|| vec![false; n])[k] = true;
                            data.push(false);
                        } else {
                            data.push(cmp_holds(op, a.val(k).total_cmp(&b.val(k))));
                        }
                    }
                    return Ok(VCol::Bool(data, nulls));
                }
            }
            if let (Some(a), Some(b)) = (str_side(&l), str_side(&r)) {
                let mut data = Vec::with_capacity(n);
                let mut nulls: Option<Vec<bool>> = None;
                for k in 0..n {
                    if a.is_null(k) || b.is_null(k) {
                        nulls.get_or_insert_with(|| vec![false; n])[k] = true;
                        data.push(false);
                    } else {
                        data.push(cmp_holds(op, a.val(k).cmp(b.val(k))));
                    }
                }
                return Ok(VCol::Bool(data, nulls));
            }
            combine_generic(op, &l, &r, n)
        }
        Add | Sub | Mul | Div => {
            // Int × Int: wrapping arithmetic, division by zero → NULL.
            if let (Some(a), Some(b)) = (int_side(&l), int_side(&r)) {
                let mut data = Vec::with_capacity(n);
                let mut nulls: Option<Vec<bool>> = None;
                for k in 0..n {
                    if a.is_null(k) || b.is_null(k) {
                        nulls.get_or_insert_with(|| vec![false; n])[k] = true;
                        data.push(0);
                        continue;
                    }
                    let (x, y) = (a.val(k), b.val(k));
                    let v = match op {
                        Add => x.wrapping_add(y),
                        Sub => x.wrapping_sub(y),
                        Mul => x.wrapping_mul(y),
                        Div => {
                            if y == 0 {
                                nulls.get_or_insert_with(|| vec![false; n])[k] = true;
                                data.push(0);
                                continue;
                            }
                            x.wrapping_div(y)
                        }
                        _ => unreachable!(),
                    };
                    data.push(v);
                }
                return Ok(VCol::Int(data, nulls));
            }
            // Numeric mixed → Float.
            let numeric = matches!(l, VCol::Float(..) | VCol::Const(Value::Float(_)))
                || matches!(r, VCol::Float(..) | VCol::Const(Value::Float(_)));
            if numeric {
                let (mut ta, mut tb) = (Vec::new(), Vec::new());
                let a = float_side(&l, &mut ta);
                let b = float_side(&r, &mut tb);
                if let (Some(a), Some(b)) = (a, b) {
                    let mut data = Vec::with_capacity(n);
                    let mut nulls: Option<Vec<bool>> = None;
                    for k in 0..n {
                        if a.is_null(k) || b.is_null(k) {
                            nulls.get_or_insert_with(|| vec![false; n])[k] = true;
                            data.push(0.0);
                            continue;
                        }
                        let (x, y) = (a.val(k), b.val(k));
                        data.push(match op {
                            Add => x + y,
                            Sub => x - y,
                            Mul => x * y,
                            Div => x / y,
                            _ => unreachable!(),
                        });
                    }
                    return Ok(VCol::Float(data, nulls));
                }
            }
            // Str + Str concatenates; every other combination (including
            // mismatched types, which must *error* row-wise) → generic.
            if op == Add {
                if let (Some(a), Some(b)) = (str_side(&l), str_side(&r)) {
                    let mut data = Vec::with_capacity(n);
                    let mut nulls: Option<Vec<bool>> = None;
                    for k in 0..n {
                        if a.is_null(k) || b.is_null(k) {
                            nulls.get_or_insert_with(|| vec![false; n])[k] = true;
                            data.push(String::new());
                        } else {
                            data.push(format!("{}{}", a.val(k), b.val(k)));
                        }
                    }
                    return Ok(VCol::Str(data, nulls));
                }
            }
            combine_generic(op, &l, &r, n)
        }
        And | Or => {
            if let (Some(a), Some(b)) = (bool_side(&l), bool_side(&r)) {
                let mut data = Vec::with_capacity(n);
                let mut nulls: Option<Vec<bool>> = None;
                for k in 0..n {
                    if a.is_null(k) || b.is_null(k) {
                        nulls.get_or_insert_with(|| vec![false; n])[k] = true;
                        data.push(false);
                    } else {
                        data.push(match op {
                            And => a.val(k) && b.val(k),
                            Or => a.val(k) || b.val(k),
                            _ => unreachable!(),
                        });
                    }
                }
                return Ok(VCol::Bool(data, nulls));
            }
            combine_generic(op, &l, &r, n)
        }
    }
}

/// Exact fallback: per-row `apply_bin_op` in batch order.
fn combine_generic(op: BinOp, l: &VCol, r: &VCol, n: usize) -> DbResult<VCol> {
    let lv = l.to_vals(n);
    let rv = r.to_vals(n);
    let mut out = Vec::with_capacity(n);
    for k in 0..n {
        out.push(apply_bin_op(op, &lv[k], &rv[k])?);
    }
    Ok(VCol::Vals(out))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Database;
    use crate::exec::ExecEngine;
    use crate::schema::{Column, DataType};
    use crate::sql::parse;

    /// Run `sql` on both engines and assert bit-identical results + work.
    fn assert_engines_agree(db: &Database, sql: &str) -> crate::exec::QueryResult {
        let funcs = FuncRegistry::with_builtins();
        let plan = parse(sql).unwrap();
        let col = Executor::new(db, &funcs)
            .with_engine(ExecEngine::Columnar)
            .execute(&plan, &HashMap::new());
        let row = Executor::new(db, &funcs)
            .with_engine(ExecEngine::Row)
            .execute(&plan, &HashMap::new());
        match (col, row) {
            (Ok(c), Ok(r)) => {
                assert_eq!(c.schema, r.schema, "schema for {sql}");
                assert_eq!(c.rows, r.rows, "rows for {sql}");
                assert_eq!(c.work, r.work, "work for {sql}");
                c
            }
            (Err(ce), Err(_re)) => panic!("both engines error on {sql}: {ce}"),
            (c, r) => panic!("engines disagree on {sql}: columnar={c:?} row={r:?}"),
        }
    }

    fn test_db() -> Database {
        let mut db = Database::new();
        let orders = Schema::new(vec![
            Column::new("o_id", DataType::Int),
            Column::new("o_customer_sk", DataType::Int),
            Column::new("o_amount", DataType::Float),
            Column::with_width("o_note", DataType::Str, 8),
        ]);
        let t = db.create_table("orders", orders).unwrap();
        t.set_primary_key("o_id").unwrap();
        for i in 0..100i64 {
            t.insert(vec![
                Value::Int(i),
                if i % 7 == 0 {
                    Value::Null
                } else {
                    Value::Int(i % 10)
                },
                Value::Float((i as f64) * 1.5),
                if i % 11 == 0 {
                    Value::Null
                } else {
                    Value::str(format!("n{}", i % 4))
                },
            ])
            .unwrap();
        }
        let customer = Schema::new(vec![
            Column::new("c_customer_sk", DataType::Int),
            Column::new("c_birth_year", DataType::Int),
        ]);
        let t = db.create_table("customer", customer).unwrap();
        t.set_primary_key("c_customer_sk").unwrap();
        for i in 0..10i64 {
            t.insert(vec![Value::Int(i), Value::Int(1960 + i)]).unwrap();
        }
        db.analyze_all();
        db
    }

    #[test]
    fn engines_agree_on_scans_filters_and_limits() {
        let db = test_db();
        for sql in [
            "select * from orders",
            "select * from orders where o_amount > 100.0",
            "select * from orders where o_customer_sk = 3",
            "select * from orders where o_id = 50",
            "select * from orders where o_id = 50 and o_amount > 1.0",
            "select * from orders where o_note = 'n1'",
            "select * from orders where o_id < 3 or o_id > 96",
            "select * from orders limit 7",
            "select o_id, o_amount * 2.0 as d from orders",
        ] {
            assert_engines_agree(&db, sql);
        }
    }

    #[test]
    fn engines_agree_on_joins() {
        let db = test_db();
        for sql in [
            "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk",
            "select * from orders o join customer c on \
             o.o_customer_sk = c.c_customer_sk and o.o_id < 4",
            "select * from customer a join customer b on a.c_birth_year < b.c_birth_year",
            "select * from customer a join customer b on \
             a.c_customer_sk = b.c_customer_sk and a.c_birth_year > 1964",
        ] {
            assert_engines_agree(&db, sql);
        }
    }

    #[test]
    fn engines_agree_on_aggregates_and_sorts() {
        let db = test_db();
        for sql in [
            "select o_customer_sk, count(*) as n, sum(o_amount) as s \
             from orders group by o_customer_sk",
            "select count(o_customer_sk) as n from orders",
            "select min(o_amount) as a, max(o_amount) as b, avg(o_id) as c from orders",
            "select count(*) as n from orders where o_id = -1",
            "select o_note, count(*) as n from orders group by o_note",
            "select * from orders order by o_customer_sk desc, o_id",
            "select sum(o_id) as s from orders",
        ] {
            assert_engines_agree(&db, sql);
        }
    }

    #[test]
    fn null_join_keys_never_match_but_group_together() {
        // o_customer_sk has NULLs: join keys must drop them, GROUP BY
        // must keep them as one group — on both engines.
        let db = test_db();
        let r = assert_engines_agree(
            &db,
            "select * from orders o join customer c on o.o_customer_sk = c.c_customer_sk",
        );
        assert!(r.rows.iter().all(|row| row[1] != Value::Null));
        let g = assert_engines_agree(
            &db,
            "select o_customer_sk, count(*) as n from orders group by o_customer_sk",
        );
        assert!(g.rows.iter().any(|row| row[0] == Value::Null));
    }

    #[test]
    fn selection_vector_edge_cases() {
        let db = test_db();
        // Empty batch: filter that matches nothing, then more operators.
        assert_engines_agree(&db, "select * from orders where o_id < 0 order by o_id");
        assert_engines_agree(
            &db,
            "select o_customer_sk, count(*) as n from orders where o_id < 0 group by o_customer_sk",
        );
        // All-match filter.
        assert_engines_agree(&db, "select * from orders where o_id >= 0");
        // All-null key column.
        let mut db2 = Database::new();
        let t = db2
            .create_table("t", Schema::new(vec![Column::new("k", DataType::Int)]))
            .unwrap();
        for _ in 0..5 {
            t.insert(vec![Value::Null]).unwrap();
        }
        db2.analyze_all();
        assert_engines_agree(&db2, "select * from t a join t b on a.k = b.k");
        assert_engines_agree(&db2, "select k, count(*) as n from t group by k");
        assert_engines_agree(&db2, "select * from t where k = 1");
    }

    #[test]
    fn mixed_type_columns_fall_back_exactly() {
        let mut db = Database::new();
        let t = db
            .create_table(
                "m",
                Schema::new(vec![
                    Column::new("a", DataType::Int),
                    Column::new("b", DataType::Int),
                ]),
            )
            .unwrap();
        t.insert(vec![Value::Int(1), Value::Int(10)]).unwrap();
        t.insert(vec![Value::str("x"), Value::Int(20)]).unwrap();
        t.insert(vec![Value::Float(2.5), Value::Null]).unwrap();
        db.analyze_all();
        for sql in [
            "select * from m where a = 1",
            "select * from m where a > 0",
            "select a, b from m order by a",
            "select a, count(*) as n from m group by a",
        ] {
            assert_engines_agree(&db, sql);
        }
    }

    #[test]
    fn errors_match_the_row_engine() {
        let db = test_db();
        let funcs = FuncRegistry::with_builtins();
        // Unbound parameter errors on both engines; empty input errors on
        // neither (nothing is evaluated over zero rows).
        let plan = parse("select * from orders where o_id = :k").unwrap();
        for engine in [ExecEngine::Columnar, ExecEngine::Row] {
            let err = Executor::new(&db, &funcs)
                .with_engine(engine)
                .execute(&plan, &HashMap::new())
                .unwrap_err();
            assert!(matches!(err, DbError::UnboundParam(_)), "{engine}");
        }
        // NOT on a non-boolean errors identically.
        let plan = parse("select * from orders where not o_id").unwrap();
        for engine in [ExecEngine::Columnar, ExecEngine::Row] {
            let err = Executor::new(&db, &funcs)
                .with_engine(engine)
                .execute(&plan, &HashMap::new())
                .unwrap_err();
            assert!(matches!(err, DbError::Type(_)), "{engine}");
        }
    }

    #[test]
    fn int_compare_beyond_f64_precision_stays_integral() {
        let mut db = Database::new();
        let t = db
            .create_table("big", Schema::new(vec![Column::new("v", DataType::Int)]))
            .unwrap();
        let base = (1i64 << 53) + 1; // not representable as f64
        t.insert(vec![Value::Int(base)]).unwrap();
        t.insert(vec![Value::Int(base - 1)]).unwrap();
        db.analyze_all();
        let r = assert_engines_agree(&db, &format!("select * from big where v = {base}"));
        assert_eq!(r.row_count(), 1, "no f64 rounding in Int = Int");
    }
}
