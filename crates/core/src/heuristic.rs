//! The heuristic optimizer of earlier work (citation \[4\] in the paper): "push as
//! much computation as possible into SQL query, then prefetch the query
//! results at the earliest program point".
//!
//! Unlike COBRA it makes no cost-based decisions: for every loop it picks
//! the alternative with the most work pushed to the database, never the
//! prefetch/client-side alternatives (N1/N2). Figure 15 compares programs
//! rewritten this way against COBRA's choices.

use crate::transforms;
use fir::build::FirAlternative;
use imperative::ast::{Expr, Function, Program, Stmt, StmtKind};
use orm::MappingRegistry;

/// Rewrite the entry function with the push-to-SQL heuristic.
///
/// Inlines procedure calls when possible (the heuristic of \[4\] also works
/// interprocedurally), then rewrites every loop bottom-up using the
/// highest-scoring SQL-push alternative.
pub fn optimize_heuristic(program: &Program, mappings: &MappingRegistry) -> Function {
    let base = transforms::inline_calls(program).unwrap_or_else(|| program.entry().clone());
    let live: Vec<String> = base.params.clone();
    let body = rewrite_stmts(&base.body, &live, mappings);
    let mut f = Function::new(base.name.clone(), base.params.clone(), body);
    f.number_lines(2);
    f
}

fn rewrite_stmts(stmts: &[Stmt], live_after: &[String], mappings: &MappingRegistry) -> Vec<Stmt> {
    let mut out = Vec::with_capacity(stmts.len());
    for (i, s) in stmts.iter().enumerate() {
        // Live set after this statement.
        let mut live: Vec<String> = live_after.to_vec();
        for v in transforms::reads_of(&stmts[i + 1..]) {
            if !live.contains(&v) {
                live.push(v);
            }
        }
        match &s.kind {
            StmtKind::ForEach { var, iter, body } => {
                let prev = if i > 0 { Some(&stmts[i - 1]) } else { None };
                match best_sql_push(var, iter, body, &live, prev, mappings) {
                    Some(replacement) => out.extend(replacement),
                    None => {
                        // Not foldable as a whole: recurse into the body
                        // (pattern A: the inner loop still gets pushed).
                        out.push(Stmt::at(
                            s.line,
                            StmtKind::ForEach {
                                var: var.clone(),
                                iter: iter.clone(),
                                body: rewrite_stmts(body, &live, mappings),
                            },
                        ));
                    }
                }
            }
            StmtKind::While { cond, body } => out.push(Stmt::at(
                s.line,
                StmtKind::While {
                    cond: cond.clone(),
                    body: rewrite_stmts(body, &live, mappings),
                },
            )),
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => out.push(Stmt::at(
                s.line,
                StmtKind::If {
                    cond: cond.clone(),
                    then_branch: rewrite_stmts(then_branch, &live, mappings),
                    else_branch: rewrite_stmts(else_branch, &live, mappings),
                },
            )),
            _ => out.push(s.clone()),
        }
    }
    out
}

/// The heuristic's pick for one loop: the alternative with the most
/// computation pushed into SQL; client-side alternatives (prefetching,
/// selection pull-out) are never chosen.
fn best_sql_push(
    var: &str,
    iter: &Expr,
    body: &[Stmt],
    live_after: &[String],
    prev_sibling: Option<&Stmt>,
    mappings: &MappingRegistry,
) -> Option<Vec<Stmt>> {
    let base = fir::build::loop_to_fold(var, iter, body, mappings, Some(live_after))?;
    let alts = fir::rules::expand_alternatives(base, 64);
    let mut best: Option<(i64, &FirAlternative)> = None;
    for alt in &alts {
        let score = sql_push_score(alt, prev_sibling);
        let Some(score) = score else { continue };
        if score <= 0 {
            continue; // the original program itself: keep the loop as-is
        }
        match best {
            Some((s, _)) if s >= score => {}
            _ => best = Some((score, alt)),
        }
    }
    let (_, alt) = best?;
    fir::codegen::generate(alt)
}

/// Score an alternative by how much it pushes into SQL. `None` = invalid
/// (failed T1 gate); ≤ 0 = not a push-to-SQL rewrite.
fn sql_push_score(alt: &FirAlternative, prev_sibling: Option<&Stmt>) -> Option<i64> {
    // The heuristic never prefetches or pulls work to the client.
    if alt.rules_applied.iter().any(|r| *r == "N1" || *r == "N2") {
        return Some(-1);
    }
    if let Some(v) = &alt.requires_empty_init {
        let ok = match prev_sibling.map(|s| &s.kind) {
            Some(StmtKind::NewCollection(p)) | Some(StmtKind::NewMap(p)) => p == v,
            _ => false,
        };
        if !ok {
            return None;
        }
    }
    let folds_left = alt
        .assigns
        .iter()
        .map(|(_, id)| {
            alt.arena
                .reachable(*id)
                .iter()
                .filter(|&&n| matches!(alt.arena.node(n), fir::FirNode::Fold { .. }))
                .count()
        })
        .max()
        .unwrap_or(0);
    let joins = alt
        .rules_applied
        .iter()
        .filter(|r| r.contains("T4"))
        .count() as i64;
    let aggs = alt
        .rules_applied
        .iter()
        .filter(|r| **r == "T5" || **r == "T5-partial")
        .count() as i64;
    let pushes = alt
        .rules_applied
        .iter()
        .filter(|r| **r == "T2" || **r == "T1")
        .count() as i64;
    if joins + aggs + pushes == 0 {
        return Some(0); // the unrewritten base
    }
    // No fold left = fully translated; then prefer more rule applications.
    Some(if folds_left == 0 { 1000 } else { 100 } + 10 * joins + 5 * aggs + pushes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imperative::ast::QuerySpec;
    use imperative::pretty;
    use minidb::BinOp;
    use orm::EntityMapping;

    fn mappings() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
            "customer",
            "Customer",
            "o_customer_sk",
        ));
        r.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
        r
    }

    #[test]
    fn heuristic_turns_p0_into_p1_never_p2() {
        let p0 = Program::single(Function::new(
            "processOrders",
            vec!["result".to_string()],
            vec![
                Stmt::new(StmtKind::NewCollection("result".into())),
                Stmt::new(StmtKind::ForEach {
                    var: "o".into(),
                    iter: Expr::LoadAll("Order".into()),
                    body: vec![
                        Stmt::new(StmtKind::Let(
                            "cust".into(),
                            Expr::nav(Expr::var("o"), "customer"),
                        )),
                        Stmt::new(StmtKind::Add(
                            "result".into(),
                            Expr::Call(
                                "myFunc".into(),
                                vec![
                                    Expr::field(Expr::var("o"), "o_id"),
                                    Expr::field(Expr::var("cust"), "c_birth_year"),
                                ],
                            ),
                        )),
                    ],
                }),
            ],
        ));
        let rewritten = optimize_heuristic(&p0, &mappings());
        let text = pretty::function_to_string(&rewritten);
        assert!(text.contains("join customer"), "pushes the join: {text}");
        assert!(!text.contains("cacheByColumn"), "never prefetches: {text}");
    }

    #[test]
    fn heuristic_extracts_aggregate_even_when_degrading() {
        // Pattern B: count + collection in one loop. The heuristic adds the
        // extra aggregate query (the §V-B degradation COBRA avoids).
        let p = Program::single(Function::new(
            "f",
            vec!["all".to_string(), "cnt".to_string()],
            vec![
                Stmt::new(StmtKind::Let("cnt".into(), Expr::lit(0i64))),
                Stmt::new(StmtKind::NewCollection("all".into())),
                Stmt::new(StmtKind::ForEach {
                    var: "t".into(),
                    iter: Expr::Query(QuerySpec::sql("select * from orders")),
                    body: vec![
                        Stmt::new(StmtKind::Let(
                            "cnt".into(),
                            Expr::bin(BinOp::Add, Expr::var("cnt"), Expr::lit(1i64)),
                        )),
                        Stmt::new(StmtKind::Add("all".into(), Expr::var("t"))),
                    ],
                }),
            ],
        ));
        let rewritten = optimize_heuristic(&p, &mappings());
        let text = pretty::function_to_string(&rewritten);
        assert!(
            text.contains("executeScalar(\"select count(*) as agg_cnt from orders\")"),
            "{text}"
        );
        assert!(
            text.contains("for (t :"),
            "loop kept for the collection: {text}"
        );
    }

    #[test]
    fn heuristic_keeps_unfoldable_loops_but_rewrites_inner() {
        // Pattern A: outer loop has an update; inner filter loop becomes an
        // iterative SQL query.
        let p = Program::single(Function::new(
            "f",
            vec!["matches".to_string()],
            vec![Stmt::new(StmtKind::ForEach {
                var: "o".into(),
                iter: Expr::LoadAll("Order".into()),
                body: vec![
                    Stmt::new(StmtKind::NewCollection("matches".into())),
                    Stmt::new(StmtKind::ForEach {
                        var: "c".into(),
                        iter: Expr::LoadAll("Customer".into()),
                        body: vec![Stmt::new(StmtKind::If {
                            cond: Expr::bin(
                                BinOp::Eq,
                                Expr::field(Expr::var("c"), "c_customer_sk"),
                                Expr::field(Expr::var("o"), "o_customer_sk"),
                            ),
                            then_branch: vec![Stmt::new(StmtKind::Add(
                                "matches".into(),
                                Expr::var("c"),
                            ))],
                            else_branch: vec![],
                        })],
                    }),
                    Stmt::new(StmtKind::UpdateQuery {
                        table: "orders".into(),
                        set_col: "o_status".into(),
                        value: Expr::Len(Box::new(Expr::var("matches"))),
                        key_col: "o_id".into(),
                        key: Expr::field(Expr::var("o"), "o_id"),
                    }),
                ],
            })],
        ));
        let rewritten = optimize_heuristic(&p, &mappings());
        let text = pretty::function_to_string(&rewritten);
        assert!(
            text.contains("for (o : loadAll(Order))"),
            "outer kept: {text}"
        );
        assert!(
            text.contains("matches = executeQuery(\"select * from customer where c_customer_sk = :p0\", p0=o.o_customer_sk);"),
            "inner loop pushed to an iterative query: {text}"
        );
    }
}
