//! Program transformations beyond the F-IR loop rules:
//! statement-level prefetching (patterns E/F) and procedure inlining
//! (pattern D), plus the shared liveness/var-plan utilities.

use fir::codegen::cache_name;
use imperative::ast::{Expr, Function, Program, QuerySpec, Stmt, StmtKind};
use minidb::{BinOp, LogicalPlan, ScalarExpr};
use std::collections::{HashMap, HashSet};

/// Collect variables read anywhere in `stmts` (including nested bodies).
pub fn reads_of(stmts: &[Stmt]) -> HashSet<String> {
    let mut out = HashSet::new();
    fn walk(stmts: &[Stmt], out: &mut HashSet<String>) {
        for s in stmts {
            let mut vars = Vec::new();
            match &s.kind {
                StmtKind::Let(_, e) | StmtKind::Add(_, e) | StmtKind::Print(e) => {
                    e.free_vars(&mut vars)
                }
                StmtKind::Put(_, k, v) => {
                    k.free_vars(&mut vars);
                    v.free_vars(&mut vars);
                }
                StmtKind::Return(Some(e)) => e.free_vars(&mut vars),
                StmtKind::ForEach { iter, body, .. } => {
                    iter.free_vars(&mut vars);
                    walk(body, out);
                }
                StmtKind::While { cond, body } => {
                    cond.free_vars(&mut vars);
                    walk(body, out);
                }
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    cond.free_vars(&mut vars);
                    walk(then_branch, out);
                    walk(else_branch, out);
                }
                StmtKind::CacheByColumn { source, .. } => source.free_vars(&mut vars),
                StmtKind::UpdateQuery { value, key, .. } => {
                    value.free_vars(&mut vars);
                    key.free_vars(&mut vars);
                }
                StmtKind::LetCall(_, _, args) => {
                    for a in args {
                        a.free_vars(&mut vars);
                    }
                }
                StmtKind::TryCatch { body, handler } => {
                    walk(body, out);
                    walk(handler, out);
                }
                _ => {}
            }
            out.extend(vars);
        }
    }
    walk(stmts, &mut out);
    out
}

/// [`reads_of`] computed directly on a region tree — no intermediate
/// statement materialization (`Region::to_stmts` deep-clones every
/// nested statement, which made the per-child live-set computation of
/// DAG construction quadratic in cloned statements).
pub fn reads_of_region(region: &imperative::regions::Region) -> HashSet<String> {
    let mut out = HashSet::new();
    fn go(region: &imperative::regions::Region, out: &mut HashSet<String>) {
        use imperative::regions::RegionKind;
        match &region.kind {
            RegionKind::Block(s) => out.extend(reads_of(std::slice::from_ref(s))),
            RegionKind::Seq(children) => {
                for c in children {
                    go(c, out);
                }
            }
            RegionKind::Cond {
                cond,
                then_r,
                else_r,
            } => {
                let mut vars = Vec::new();
                cond.free_vars(&mut vars);
                out.extend(vars);
                go(then_r, out);
                go(else_r, out);
            }
            RegionKind::Loop { iter, body, .. } => {
                let mut vars = Vec::new();
                iter.free_vars(&mut vars);
                out.extend(vars);
                go(body, out);
            }
            RegionKind::WhileLoop { cond, body } => {
                let mut vars = Vec::new();
                cond.free_vars(&mut vars);
                out.extend(vars);
                go(body, out);
            }
            RegionKind::BlackBox(stmts) => out.extend(reads_of(stmts)),
            RegionKind::Empty => {}
        }
    }
    go(region, &mut out);
    out
}

/// Gather `variable → producing plan` bindings from `Let(v, query)` and
/// `Let(v, loadAll)` statements — the cost model uses them to estimate
/// trip counts of loops over collection variables.
pub fn collect_var_plans(
    stmts: &[Stmt],
    mappings: &orm::MappingRegistry,
    out: &mut HashMap<String, minidb::SharedPlan>,
) {
    for s in stmts {
        match &s.kind {
            StmtKind::Let(v, Expr::Query(spec)) => {
                out.insert(v.clone(), spec.plan.clone());
            }
            StmtKind::Let(v, Expr::LoadAll(entity)) => {
                if let Some(m) = mappings.entity(entity) {
                    out.insert(v.clone(), LogicalPlan::scan(&m.table).into());
                }
            }
            StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                collect_var_plans(body, mappings, out)
            }
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => {
                collect_var_plans(then_branch, mappings, out);
                collect_var_plans(else_branch, mappings, out);
            }
            StmtKind::TryCatch { body, handler } => {
                collect_var_plans(body, mappings, out);
                collect_var_plans(handler, mappings, out);
            }
            _ => {}
        }
    }
}

/// Tables the program writes (`update …` statements, any function, any
/// nesting). Client-side prefetch caches are built once per run, so
/// prefetching a table the program updates would serve stale rows — the
/// optimizer refuses to register such alternatives (a soundness gate the
/// differential oracle caught the absence of).
pub fn updated_tables(program: &Program) -> HashSet<String> {
    let mut out = HashSet::new();
    fn walk(stmts: &[Stmt], out: &mut HashSet<String>) {
        for s in stmts {
            if let StmtKind::UpdateQuery { table, .. } = &s.kind {
                out.insert(table.clone());
            }
            for child in s.children() {
                walk(child, out);
            }
        }
    }
    for f in &program.functions {
        walk(&f.body, &mut out);
    }
    out
}

/// Tables a statement list prefetches into client caches
/// (`Utils.cacheByColumn` over a table scan).
pub fn prefetched_tables(stmts: &[Stmt]) -> Vec<String> {
    let mut out = Vec::new();
    fn walk(stmts: &[Stmt], out: &mut Vec<String>) {
        for s in stmts {
            if let StmtKind::CacheByColumn {
                source: Expr::Query(spec),
                ..
            } = &s.kind
            {
                if let LogicalPlan::Scan { table, .. } = spec.plan.as_plan() {
                    out.push(table.clone());
                }
            }
            for child in s.children() {
                walk(child, out);
            }
        }
    }
    walk(stmts, &mut out);
    out
}

/// Statement-level prefetch alternative (patterns E/F): a point/filtered
/// query `v = executeQuery(σ_{A=key}(R))` can instead probe a client-side
/// cache of the whole relation:
///
/// ```text
/// cache_R_by_A = Utils.cacheByColumn(executeQuery("select * from R"), A)
/// v = Utils.lookupCache(cache_R_by_A, key)
/// ```
///
/// The projection (if any) is dropped — the client reads only the fields
/// it needs. Returns `None` when the statement has no such shape.
pub fn prefetch_stmt_alternative(stmt: &Stmt) -> Option<Vec<Stmt>> {
    let StmtKind::Let(v, Expr::Query(spec)) = &stmt.kind else {
        return None;
    };
    // Peel a projection; then require σ_{A = key}(Scan R).
    let mut plan = spec.plan.as_plan();
    if let LogicalPlan::Project { input, .. } = plan {
        plan = input;
    }
    let LogicalPlan::Select { input, pred } = plan else {
        return None;
    };
    let LogicalPlan::Scan { table, .. } = &**input else {
        return None;
    };
    let ScalarExpr::Bin(BinOp::Eq, l, r) = pred else {
        return None;
    };
    let (col, key) = match (&**l, &**r) {
        (ScalarExpr::Col(c), k) => (c, k),
        (k, ScalarExpr::Col(c)) => (c, k),
        _ => return None,
    };
    let key_expr = match key {
        ScalarExpr::Lit(value) => Expr::Lit(value.clone()),
        ScalarExpr::Param(p) => spec
            .binds
            .iter()
            .find(|(n, _)| n == p)
            .map(|(_, e)| e.clone())?,
        _ => return None,
    };
    let cache = cache_name(table, &col.name);
    Some(vec![
        Stmt::new(StmtKind::CacheByColumn {
            cache: cache.clone(),
            source: Expr::Query(QuerySpec::of(LogicalPlan::scan(table))),
            key_col: col.name.clone(),
        }),
        Stmt::new(StmtKind::Let(
            v.clone(),
            Expr::LookupCache(cache, Box::new(key_expr)),
        )),
    ])
}

/// Inline every `LetCall` in the entry function whose callee is a plain
/// function of the program (single trailing `return`, not recursive).
/// Returns `None` when there is nothing to inline or some call cannot be
/// inlined safely.
///
/// Inlining is the enabling transformation for pattern D ("function that
/// is called inside a loop can be rewritten using SQL"): once the callee
/// body is in the loop, the F-IR rules see the whole computation.
pub fn inline_calls(program: &Program) -> Option<Function> {
    let entry = program.entry();
    let mut counter = 0usize;
    let body = inline_in(&entry.body, program, &entry.name, &mut counter)?;
    if counter == 0 {
        return None;
    }
    let mut f = Function::new(entry.name.clone(), entry.params.clone(), body);
    f.number_lines(2);
    Some(f)
}

fn inline_in(
    stmts: &[Stmt],
    program: &Program,
    caller: &str,
    counter: &mut usize,
) -> Option<Vec<Stmt>> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        match &s.kind {
            StmtKind::LetCall(target, fname, args) => {
                if fname == caller {
                    return None; // recursion: do not inline
                }
                let callee = program.function(fname)?;
                let expanded = inline_one(callee, target, args, *counter)?;
                *counter += 1;
                // Callee bodies may call further down; expand recursively.
                let expanded = inline_in(&expanded, program, caller, counter)?;
                out.extend(expanded);
            }
            StmtKind::ForEach { var, iter, body } => {
                out.push(Stmt::at(
                    s.line,
                    StmtKind::ForEach {
                        var: var.clone(),
                        iter: iter.clone(),
                        body: inline_in(body, program, caller, counter)?,
                    },
                ));
            }
            StmtKind::While { cond, body } => {
                out.push(Stmt::at(
                    s.line,
                    StmtKind::While {
                        cond: cond.clone(),
                        body: inline_in(body, program, caller, counter)?,
                    },
                ));
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                out.push(Stmt::at(
                    s.line,
                    StmtKind::If {
                        cond: cond.clone(),
                        then_branch: inline_in(then_branch, program, caller, counter)?,
                        else_branch: inline_in(else_branch, program, caller, counter)?,
                    },
                ));
            }
            _ => out.push(s.clone()),
        }
    }
    Some(out)
}

/// Inline one call: substitute arguments for parameters, α-rename callee
/// locals, and turn the trailing `return e` into `target = e`.
fn inline_one(
    callee: &Function,
    target: &str,
    args: &[Expr],
    instance: usize,
) -> Option<Vec<Stmt>> {
    if callee.params.len() != args.len() {
        return None;
    }
    let (last, init) = callee.body.split_last()?;
    let StmtKind::Return(Some(ret)) = &last.kind else {
        return None;
    };
    // No other returns / no try-catch anywhere in the body.
    fn clean(stmts: &[Stmt]) -> bool {
        stmts.iter().all(|s| match &s.kind {
            StmtKind::Return(_) | StmtKind::TryCatch { .. } => false,
            _ => s.children().iter().all(|c| clean(c)),
        })
    }
    if !clean(init) {
        return None;
    }

    // Substitution: params → args; locals → fresh names.
    let mut subst: HashMap<String, Expr> = HashMap::new();
    for (p, a) in callee.params.iter().zip(args) {
        subst.insert(p.clone(), a.clone());
    }
    let mut locals = HashSet::new();
    collect_locals(&callee.body, &mut locals);
    for l in &locals {
        if !subst.contains_key(l) {
            subst.insert(
                l.clone(),
                Expr::var(format!("{}_{}_{}", callee.name, instance, l)),
            );
        }
    }

    let mut out = rewrite_stmts(init, &subst)?;
    out.push(Stmt::new(StmtKind::Let(
        target.to_string(),
        rewrite_expr(ret, &subst)?,
    )));
    Some(out)
}

fn collect_locals(stmts: &[Stmt], out: &mut HashSet<String>) {
    for s in stmts {
        if let Some(v) = s.updated_var() {
            out.insert(v.to_string());
        }
        if let StmtKind::ForEach { var, .. } = &s.kind {
            out.insert(var.clone());
        }
        for list in s.children() {
            collect_locals(list, out);
        }
    }
}

/// Rename/substitute variables in an expression. Substituting a variable
/// that is *assigned* requires the substitute to be a variable.
fn rewrite_expr(e: &Expr, subst: &HashMap<String, Expr>) -> Option<Expr> {
    Some(match e {
        Expr::Var(v) => match subst.get(v) {
            Some(r) => r.clone(),
            None => e.clone(),
        },
        Expr::Lit(_) | Expr::LoadAll(_) => e.clone(),
        Expr::Bin(op, l, r) => Expr::bin(*op, rewrite_expr(l, subst)?, rewrite_expr(r, subst)?),
        Expr::Not(i) => Expr::Not(Box::new(rewrite_expr(i, subst)?)),
        Expr::Field(b, f) => Expr::field(rewrite_expr(b, subst)?, f.clone()),
        Expr::Nav(b, f) => Expr::nav(rewrite_expr(b, subst)?, f.clone()),
        Expr::Call(f, args) => Expr::Call(
            f.clone(),
            args.iter()
                .map(|a| rewrite_expr(a, subst))
                .collect::<Option<Vec<_>>>()?,
        ),
        Expr::Query(spec) => Expr::Query(rewrite_spec(spec, subst)?),
        Expr::ScalarQuery(spec) => Expr::ScalarQuery(rewrite_spec(spec, subst)?),
        Expr::LookupCache(c, k) => Expr::LookupCache(c.clone(), Box::new(rewrite_expr(k, subst)?)),
        Expr::MapGet(m, k) => Expr::MapGet(
            Box::new(rewrite_expr(m, subst)?),
            Box::new(rewrite_expr(k, subst)?),
        ),
        Expr::Len(c) => Expr::Len(Box::new(rewrite_expr(c, subst)?)),
    })
}

fn rewrite_spec(spec: &QuerySpec, subst: &HashMap<String, Expr>) -> Option<QuerySpec> {
    let mut out = QuerySpec::of(spec.plan.clone());
    for (p, e) in &spec.binds {
        out = out.bind(p.clone(), rewrite_expr(e, subst)?);
    }
    Some(out)
}

/// Renamed assignment target: must map to a plain variable.
fn rewrite_target(v: &str, subst: &HashMap<String, Expr>) -> Option<String> {
    match subst.get(v) {
        None => Some(v.to_string()),
        Some(Expr::Var(new)) => Some(new.clone()),
        Some(_) => None, // assigning through a non-variable argument
    }
}

fn rewrite_stmts(stmts: &[Stmt], subst: &HashMap<String, Expr>) -> Option<Vec<Stmt>> {
    let mut out = Vec::with_capacity(stmts.len());
    for s in stmts {
        let kind = match &s.kind {
            StmtKind::Let(v, e) => {
                StmtKind::Let(rewrite_target(v, subst)?, rewrite_expr(e, subst)?)
            }
            StmtKind::NewCollection(v) => StmtKind::NewCollection(rewrite_target(v, subst)?),
            StmtKind::NewMap(v) => StmtKind::NewMap(rewrite_target(v, subst)?),
            StmtKind::Add(c, e) => {
                StmtKind::Add(rewrite_target(c, subst)?, rewrite_expr(e, subst)?)
            }
            StmtKind::Put(m, k, v) => StmtKind::Put(
                rewrite_target(m, subst)?,
                rewrite_expr(k, subst)?,
                rewrite_expr(v, subst)?,
            ),
            StmtKind::ForEach { var, iter, body } => StmtKind::ForEach {
                var: rewrite_target(var, subst)?,
                iter: rewrite_expr(iter, subst)?,
                body: rewrite_stmts(body, subst)?,
            },
            StmtKind::While { cond, body } => StmtKind::While {
                cond: rewrite_expr(cond, subst)?,
                body: rewrite_stmts(body, subst)?,
            },
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => StmtKind::If {
                cond: rewrite_expr(cond, subst)?,
                then_branch: rewrite_stmts(then_branch, subst)?,
                else_branch: rewrite_stmts(else_branch, subst)?,
            },
            StmtKind::Print(e) => StmtKind::Print(rewrite_expr(e, subst)?),
            StmtKind::Break => StmtKind::Break,
            StmtKind::CacheByColumn {
                cache,
                source,
                key_col,
            } => StmtKind::CacheByColumn {
                cache: cache.clone(),
                source: rewrite_expr(source, subst)?,
                key_col: key_col.clone(),
            },
            StmtKind::UpdateQuery {
                table,
                set_col,
                value,
                key_col,
                key,
            } => StmtKind::UpdateQuery {
                table: table.clone(),
                set_col: set_col.clone(),
                value: rewrite_expr(value, subst)?,
                key_col: key_col.clone(),
                key: rewrite_expr(key, subst)?,
            },
            StmtKind::LetCall(v, f, args) => StmtKind::LetCall(
                rewrite_target(v, subst)?,
                f.clone(),
                args.iter()
                    .map(|a| rewrite_expr(a, subst))
                    .collect::<Option<Vec<_>>>()?,
            ),
            StmtKind::Return(_) | StmtKind::TryCatch { .. } => return None,
        };
        out.push(Stmt::new(kind));
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use imperative::pretty;

    #[test]
    fn prefetch_alternative_for_point_query() {
        let stmt = Stmt::new(StmtKind::Let(
            "roles".into(),
            Expr::Query(
                QuerySpec::sql("select * from role where r_project = :p")
                    .bind("p", Expr::var("projectId")),
            ),
        ));
        let alt = prefetch_stmt_alternative(&stmt).expect("prefetchable");
        let text = pretty::stmts_to_string(&alt);
        assert!(text.contains(
            "cache_role_by_r_project = Utils.cacheByColumn(\
             executeQuery(\"select * from role\"), 'r_project');"
        ));
        assert!(text.contains("roles = Utils.lookupCache(cache_role_by_r_project, projectId);"));
    }

    #[test]
    fn prefetch_alternative_for_constant_filter_with_projection() {
        let stmt = Stmt::new(StmtKind::Let(
            "open".into(),
            Expr::Query(QuerySpec::sql(
                "select o_id from orders where o_status = 'open'",
            )),
        ));
        let alt = prefetch_stmt_alternative(&stmt).expect("prefetchable");
        let text = pretty::stmts_to_string(&alt);
        assert!(text.contains("cache_orders_by_o_status"), "{text}");
        assert!(
            text.contains("Utils.lookupCache(cache_orders_by_o_status, \"open\")"),
            "{text}"
        );
    }

    #[test]
    fn no_prefetch_for_whole_table_or_range_queries() {
        let whole = Stmt::new(StmtKind::Let(
            "all".into(),
            Expr::Query(QuerySpec::sql("select * from orders")),
        ));
        assert!(prefetch_stmt_alternative(&whole).is_none());
        let range = Stmt::new(StmtKind::Let(
            "big".into(),
            Expr::Query(QuerySpec::sql("select * from orders where o_id > 5")),
        ));
        assert!(prefetch_stmt_alternative(&range).is_none());
    }

    #[test]
    fn inline_substitutes_args_and_renames_locals() {
        let program = Program {
            functions: vec![
                Function::new(
                    "main",
                    vec![],
                    vec![Stmt::new(StmtKind::LetCall(
                        "x".into(),
                        "helper".into(),
                        vec![Expr::lit(5i64)],
                    ))],
                ),
                Function::new(
                    "helper",
                    vec!["n".to_string()],
                    vec![
                        Stmt::new(StmtKind::Let(
                            "tmp".into(),
                            Expr::bin(BinOp::Mul, Expr::var("n"), Expr::lit(2i64)),
                        )),
                        Stmt::new(StmtKind::Return(Some(Expr::var("tmp")))),
                    ],
                ),
            ],
        };
        let inlined = inline_calls(&program).expect("inlinable");
        let text = pretty::function_to_string(&inlined);
        assert!(text.contains("helper_0_tmp = 5 * 2;"), "{text}");
        assert!(text.contains("x = helper_0_tmp;"), "{text}");
        assert!(!text.contains("helper("), "{text}");
    }

    #[test]
    fn inline_inside_loop_bodies() {
        let program = Program {
            functions: vec![
                Function::new(
                    "main",
                    vec!["out".to_string()],
                    vec![Stmt::new(StmtKind::ForEach {
                        var: "o".into(),
                        iter: Expr::LoadAll("Order".into()),
                        body: vec![
                            Stmt::new(StmtKind::LetCall(
                                "v".into(),
                                "score".into(),
                                vec![Expr::field(Expr::var("o"), "o_amount")],
                            )),
                            Stmt::new(StmtKind::Add("out".into(), Expr::var("v"))),
                        ],
                    })],
                ),
                Function::new(
                    "score",
                    vec!["a".to_string()],
                    vec![Stmt::new(StmtKind::Return(Some(Expr::bin(
                        BinOp::Mul,
                        Expr::var("a"),
                        Expr::lit(3i64),
                    ))))],
                ),
            ],
        };
        let inlined = inline_calls(&program).expect("inlinable");
        let text = pretty::function_to_string(&inlined);
        assert!(text.contains("v = o.o_amount * 3;"), "{text}");
    }

    #[test]
    fn recursion_is_not_inlined() {
        let program = Program {
            functions: vec![Function::new(
                "main",
                vec![],
                vec![Stmt::new(StmtKind::LetCall(
                    "x".into(),
                    "main".into(),
                    vec![],
                ))],
            )],
        };
        assert!(inline_calls(&program).is_none());
    }

    #[test]
    fn no_calls_means_no_inline_variant() {
        let program = Program::single(Function::new(
            "main",
            vec![],
            vec![Stmt::new(StmtKind::Print(Expr::lit(1i64)))],
        ));
        assert!(inline_calls(&program).is_none());
    }

    #[test]
    fn reads_of_sees_nested_uses() {
        let stmts = vec![Stmt::new(StmtKind::ForEach {
            var: "o".into(),
            iter: Expr::var("rows"),
            body: vec![Stmt::new(StmtKind::Add("acc".into(), Expr::var("bias")))],
        })];
        let reads = reads_of(&stmts);
        assert!(reads.contains("rows"));
        assert!(reads.contains("bias"));
    }

    #[test]
    fn var_plans_collected_from_nested_scopes() {
        let mut mappings = orm::MappingRegistry::new();
        mappings.register(orm::EntityMapping::new("Order", "orders", "o_id"));
        let stmts = vec![Stmt::new(StmtKind::If {
            cond: Expr::lit(true),
            then_branch: vec![Stmt::new(StmtKind::Let(
                "rows".into(),
                Expr::Query(QuerySpec::sql("select * from orders")),
            ))],
            else_branch: vec![Stmt::new(StmtKind::Let(
                "all".into(),
                Expr::LoadAll("Order".into()),
            ))],
        })];
        let mut plans = HashMap::new();
        collect_var_plans(&stmts, &mappings, &mut plans);
        assert_eq!(plans.len(), 2);
        assert_eq!(plans["all"], LogicalPlan::scan("orders").into());
    }
}
