//! Emission of the winning plan back into an imperative function.

use crate::region_ops::{optree_to_stmts, RegionOp};
use imperative::ast::{Function, Stmt, StmtKind};
use volcano::OpTree;

/// Materialize the extracted plan as a function (lines renumbered for
/// display).
pub fn emit_function(name: &str, params: &[String], tree: &OpTree<RegionOp>) -> Function {
    let stmts = optree_to_stmts(tree);
    let mut f = Function::new(name.to_string(), params.to_vec(), stmts);
    f.number_lines(2);
    f
}

/// Heuristic feature tags describing what a rewritten program does; used
/// by experiments to report *which* alternative won (e.g. "sql-join" for
/// P1-shaped programs, "prefetch" for P2-shaped ones).
pub fn describe(f: &Function) -> Vec<&'static str> {
    let mut tags = Vec::new();
    let mut has_cache = false;
    let mut has_join = false;
    let mut has_agg = false;
    let mut has_nav = false;
    let mut has_param_query = false;
    visit(&f.body, &mut |s: &Stmt| {
        if matches!(s.kind, StmtKind::CacheByColumn { .. }) {
            has_cache = true;
        }
        for e in stmt_exprs(s) {
            expr_features(
                e,
                &mut has_join,
                &mut has_agg,
                &mut has_nav,
                &mut has_param_query,
            );
        }
    });
    if has_cache {
        tags.push("prefetch");
    }
    if has_join {
        tags.push("sql-join");
    }
    if has_agg {
        tags.push("sql-agg");
    }
    if has_nav {
        tags.push("orm-navigation");
    }
    if has_param_query {
        tags.push("iterative-query");
    }
    if tags.is_empty() {
        tags.push("plain");
    }
    tags
}

fn visit(stmts: &[Stmt], f: &mut impl FnMut(&Stmt)) {
    for s in stmts {
        f(s);
        for list in s.children() {
            visit(list, f);
        }
    }
}

fn stmt_exprs(s: &Stmt) -> Vec<&imperative::ast::Expr> {
    use imperative::ast::StmtKind::*;
    match &s.kind {
        Let(_, e) | Add(_, e) | Print(e) | Return(Some(e)) => vec![e],
        Put(_, k, v) => vec![k, v],
        ForEach { iter, .. } => vec![iter],
        While { cond, .. } | If { cond, .. } => vec![cond],
        CacheByColumn { source, .. } => vec![source],
        UpdateQuery { value, key, .. } => vec![value, key],
        LetCall(_, _, args) => args.iter().collect(),
        _ => Vec::new(),
    }
}

fn expr_features(
    e: &imperative::ast::Expr,
    has_join: &mut bool,
    has_agg: &mut bool,
    has_nav: &mut bool,
    has_param_query: &mut bool,
) {
    use imperative::ast::Expr;
    match e {
        Expr::Query(spec) | Expr::ScalarQuery(spec) => {
            spec.plan.walk(&mut |p| match p {
                minidb::LogicalPlan::Join { .. } => *has_join = true,
                minidb::LogicalPlan::Aggregate { .. } => *has_agg = true,
                _ => {}
            });
            if !spec.binds.is_empty() {
                *has_param_query = true;
            }
            for (_, b) in &spec.binds {
                expr_features(b, has_join, has_agg, has_nav, has_param_query);
            }
        }
        Expr::Nav(b, _) => {
            *has_nav = true;
            expr_features(b, has_join, has_agg, has_nav, has_param_query);
        }
        Expr::Bin(_, l, r) | Expr::MapGet(l, r) => {
            expr_features(l, has_join, has_agg, has_nav, has_param_query);
            expr_features(r, has_join, has_agg, has_nav, has_param_query);
        }
        Expr::Not(i) | Expr::Len(i) | Expr::Field(i, _) | Expr::LookupCache(_, i) => {
            expr_features(i, has_join, has_agg, has_nav, has_param_query)
        }
        Expr::Call(_, args) => {
            for a in args {
                expr_features(a, has_join, has_agg, has_nav, has_param_query);
            }
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imperative::ast::{Expr, QuerySpec};

    #[test]
    fn describe_tags_prefetch_and_join() {
        let f = Function::new(
            "p",
            vec![],
            vec![
                Stmt::new(StmtKind::CacheByColumn {
                    cache: "c".into(),
                    source: Expr::Query(QuerySpec::sql("select * from customer")),
                    key_col: "k".into(),
                }),
                Stmt::new(StmtKind::Let(
                    "j".into(),
                    Expr::Query(QuerySpec::sql(
                        "select * from orders o join customer c on o.a = c.b",
                    )),
                )),
            ],
        );
        let tags = describe(&f);
        assert!(tags.contains(&"prefetch"));
        assert!(tags.contains(&"sql-join"));
    }

    #[test]
    fn describe_tags_nav_and_iterative() {
        let f = Function::new(
            "p",
            vec![],
            vec![Stmt::new(StmtKind::ForEach {
                var: "o".into(),
                iter: Expr::LoadAll("Order".into()),
                body: vec![Stmt::new(StmtKind::Let(
                    "c".into(),
                    Expr::nav(Expr::var("o"), "customer"),
                ))],
            })],
        );
        let tags = describe(&f);
        assert!(tags.contains(&"orm-navigation"));
    }

    #[test]
    fn describe_plain_program() {
        let f = Function::new(
            "p",
            vec![],
            vec![Stmt::new(StmtKind::Print(Expr::lit(1i64)))],
        );
        assert_eq!(describe(&f), vec!["plain"]);
    }
}
