//! COBRA — cost based rewriting of database applications.
//!
//! This crate is the paper's primary contribution: it represents an
//! imperative program as an **AND-OR DAG over program regions** (the
//! *Region DAG*, §IV), populates it with alternatives produced by program
//! transformations (the F-IR rules of §V plus statement-level prefetching
//! and procedure inlining), and extracts the least-cost program under the
//! network/database-aware cost model of §VI.
//!
//! ```text
//!            program ──► region tree ──► Region DAG (volcano memo)
//!                                            │  ▲
//!                       loop→fold, T1–T5,    │  │ alternatives
//!                       N1, N2, inlining ────┘  │
//!                                               ▼
//!            cost model (C_NRT, C^F_Q, C^L_Q, N_Q, S_row, BW, AF, C_Y, C_Z)
//!                                               │
//!                                               ▼
//!                              least-cost program (emitted back as AST)
//! ```
//!
//! Entry point: [`Cobra`], constructed through [`Cobra::builder`] /
//! [`CobraBuilder`]. The typed configuration layer makes the paper's
//! three inputs explicit API objects: a [`CostCatalog`] carries the
//! tunable cost parameters (the paper provides them "as a cost catalog
//! file"; see [`CostCatalog::parse`]), a [`fir::RuleSet`] names the
//! transformation rules with per-rule toggles, and a [`SearchBudget`]
//! bounds search effort — with exhaustion surfaced on the result instead
//! of silent truncation. [`Cobra::explain`] returns a structured
//! [`OptimizationReport`] of every cost-based choice the search made.

pub mod catalog;
pub mod config;
pub mod cost;
pub mod emit;
pub mod heuristic;
pub mod optimizer;
pub mod region_ops;
pub mod report;
pub mod transforms;
pub mod validation;

pub use catalog::CostCatalog;
pub use config::{CobraBuilder, OptimizerConfig, SearchBudget, VerifyLevel};
pub use cost::RegionCostModel;
pub use optimizer::{Cobra, Optimized};
pub use region_ops::RegionOp;
pub use report::{ChoicePoint, OptimizationReport, ReportedAlternative};
pub use validation::{SelectionValidation, ValidatedCandidate, ValidationConfig, ValidationSource};

// Re-exported so configuring rules does not require a direct `fir`
// dependency.
pub use fir::{Rule, RuleAction, RuleSet};
