//! The COBRA optimizer: Region DAG construction, alternative generation,
//! least-cost extraction, program emission.

use crate::catalog::CostCatalog;
use crate::config::{CobraBuilder, OptimizerConfig, SearchBudget};
use crate::cost::RegionCostModel;
use crate::emit;
use crate::region_ops::{region_to_optree, RegionOp};
use crate::report::{region_label, ChoicePoint, OptimizationReport, ReportedAlternative};
use crate::transforms;
use fir::build::FirAlternative;
use fir::RuleSet;
use imperative::ast::{Expr, Function, Program, Stmt, StmtKind};
use imperative::regions::Region;
use minidb::{DbError, DbResult, FuncRegistry, LogicalPlan};
use netsim::NetworkProfile;
use orm::MappingRegistry;

use std::collections::HashMap;

use volcano::{CostModel, GroupId, MExprId, Memo};

/// The result of optimizing a program.
#[derive(Debug, Clone)]
pub struct Optimized {
    /// The least-cost program (entry function; helpers are unchanged).
    pub program: Function,
    /// Estimated cost of the chosen program, ns.
    pub est_cost_ns: f64,
    /// Estimated cost of the *original* program under the same model, ns.
    pub original_cost_ns: f64,
    /// Number of complete (acyclic) programs representable in the DAG.
    pub alternatives: u64,
    /// Regions with more than one alternative (cost-based choice points;
    /// counts self-referential alternatives that `alternatives` cannot).
    pub choice_points: usize,
    /// Live groups (OR nodes) in the Region DAG.
    pub groups: usize,
    /// M-exprs (AND nodes) in the Region DAG.
    pub exprs: usize,
    /// Feature tags of the chosen program (see [`emit::describe`]).
    pub tags: Vec<&'static str>,
    /// Cost estimates served from the per-search memo cache (see
    /// [`volcano::CostMemo`]); 0 when memoization is disabled.
    pub cost_cache_hits: u64,
    /// Cost estimates computed by the underlying model during the search.
    pub cost_cache_misses: u64,
    /// Plan estimates served from the fingerprint-keyed estimator cache
    /// (see [`minidb::EstimateCache`]) during this search.
    pub estimator_cache_hits: u64,
    /// Plan estimates the estimator had to compute during this search.
    pub estimator_cache_misses: u64,
    /// Estimates computed with an *observed* runtime cardinality (from
    /// the attached [`minidb::FeedbackStore`]) substituted for the
    /// model's guess; 0 when no feedback store is attached or nothing
    /// relevant has been observed yet.
    pub feedback_overrides: u64,
    /// True when a [`SearchBudget`] bound clipped the search (alternative
    /// generation, memo growth, or cost iteration) — alternatives were
    /// dropped rather than explored. Also surfaced as the
    /// `"budget-exhausted"` tag.
    pub budget_exhausted: bool,
    /// The record of runtime-validated selection (predicted vs measured
    /// ranks, promotion decision) when validation ran with more than one
    /// candidate; `None` when validation is disabled or the program had a
    /// single candidate. See [`crate::SelectionValidation`].
    pub validation: Option<crate::validation::SelectionValidation>,
    /// Diagnostics of alternatives the static rewrite verifier rejected
    /// (`VerifyLevel::Reject` only; `Panic` aborts instead and `Off`
    /// never verifies). Non-empty also surfaces as the
    /// `"verifier-rejected"` tag.
    pub verifier_rejections: Vec<String>,
}

/// The COBRA optimizer (Figure 1: program + transformations + cost model
/// → least-cost equivalent program).
///
/// Construct one with [`Cobra::builder`]; the optimizer owns a database
/// handle, ORM mappings, a function registry, and an
/// [`OptimizerConfig`] (network profile, cost catalog, [`RuleSet`],
/// [`SearchBudget`], memoization toggle).
pub struct Cobra {
    db: minidb::SharedDb,
    funcs: std::sync::Arc<FuncRegistry>,
    mappings: MappingRegistry,
    config: OptimizerConfig,
    /// Whole-plan estimate cache shared by every search (and every batch
    /// worker) this optimizer runs; epoch-validated against the database,
    /// so it survives across programs. See [`minidb::EstimateCache`].
    estimates: std::sync::Arc<minidb::EstimateCache>,
    /// Runtime cardinality observations ([`CobraBuilder::feedback`]);
    /// estimates prefer these, and [`Cobra::reoptimize_on_drift`] watches
    /// them for model drift.
    feedback: Option<std::sync::Arc<minidb::FeedbackStore>>,
}

// The optimizer pipeline is thread-safe by construction: shared state goes
// through `Arc`/`RwLock`, interior mutability through `Mutex`/atomics. The
// parallel batch driver and any embedding server rely on this contract, so
// it is enforced at compile time.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Cobra>();
    assert_send_sync::<RegionCostModel>();
    assert_send_sync::<Optimized>();
};

impl Cobra {
    /// Start a [`CobraBuilder`] over a shared database handle — the
    /// primary way to construct an optimizer.
    ///
    /// ```
    /// use cobra_core::{Cobra, CostCatalog};
    /// use netsim::NetworkProfile;
    ///
    /// let db = minidb::shared(minidb::Database::new());
    /// let cobra = Cobra::builder(db)
    ///     .network(NetworkProfile::slow_remote())
    ///     .catalog(CostCatalog::with_af(50.0))
    ///     .build();
    /// assert_eq!(cobra.network().name(), "slow-remote");
    /// ```
    pub fn builder(db: minidb::SharedDb) -> CobraBuilder {
        CobraBuilder::new(db)
    }

    /// Assemble an optimizer from its parts (what [`CobraBuilder::build`]
    /// calls).
    pub(crate) fn from_parts(
        db: minidb::SharedDb,
        funcs: std::sync::Arc<FuncRegistry>,
        mappings: MappingRegistry,
        config: OptimizerConfig,
        feedback: Option<std::sync::Arc<minidb::FeedbackStore>>,
    ) -> Cobra {
        Cobra {
            db,
            funcs,
            mappings,
            config,
            estimates: std::sync::Arc::new(minidb::EstimateCache::new()),
            feedback,
        }
    }

    /// Build a [`RegionCostModel`] wired to this optimizer's configuration
    /// and shared estimate cache.
    fn cost_model(&self) -> RegionCostModel {
        let mut model = RegionCostModel::new(
            self.db.clone(),
            self.funcs.clone(),
            self.config.network.clone(),
            self.config.catalog.clone(),
            self.mappings.clone(),
        );
        model.set_estimate_cache(self.estimates.clone());
        if !self.config.cache_estimates {
            model.disable_estimate_cache();
        }
        model.set_use_histograms(self.config.use_histograms);
        model.set_feedback(self.feedback.clone());
        model
    }

    /// Build (but do not search) the Region DAG for `program`: the memo
    /// with every registered alternative plus its root group, alongside a
    /// cost model configured like [`Cobra::optimize_program`]'s. This is
    /// the introspection hook the cost-iteration equivalence suite drives
    /// `volcano::cost_table` vs `volcano::cost_table_sweeps` through.
    pub fn region_dag(
        &self,
        program: &Program,
    ) -> DbResult<(Memo<RegionOp>, GroupId, RegionCostModel)> {
        let built = self.build_dag(program);
        Ok((built.memo, built.root, built.model))
    }

    /// The DAG-construction half of [`Cobra::run_search`].
    fn build_dag(&self, program: &Program) -> BuiltDag {
        let budget = &self.config.budget;
        let entry = program.entry();
        let mut memo: Memo<RegionOp> = Memo::new();
        let mut var_plans: HashMap<String, minidb::SharedPlan> = HashMap::new();

        // Costs of callee functions (plain, no transformation) for
        // `LetCall` statements in non-inlined variants.
        let fn_costs = self.callee_costs(program);

        // Variant 0: the original entry function.
        let live0: Vec<String> = entry.params.clone();
        let updated_tables = transforms::updated_tables(program);
        let mut builder = DagBuilder {
            memo: &mut memo,
            mappings: &self.mappings,
            var_plans: &mut var_plans,
            rules: &self.config.rules,
            budget,
            updated_tables,
            provenance: HashMap::new(),
            exhausted: false,
            verify: self.config.verify_rewrites,
            rejections: Vec::new(),
        };
        let region = Region::from_function(entry);
        let root = builder.insert_region(&region, &live0, None, None);

        // Variant 1: the inlined entry, if calls can be inlined (pattern D).
        if self.config.rules.is_enabled("inline") {
            if let Some(inlined) = transforms::inline_calls(program) {
                if builder.memo_has_room() {
                    let before: Vec<MExprId> = builder.memo.group(root).to_vec();
                    let region = Region::from_function(&inlined);
                    builder.insert_region(&region, &live0, None, Some(root));
                    for &e in builder.memo.group(root) {
                        if !before.contains(&e) {
                            builder.provenance.insert(e, vec!["inline"]);
                        }
                    }
                } else {
                    builder.exhausted = true;
                }
            }
        }
        let DagBuilder {
            provenance,
            exhausted,
            rejections,
            ..
        } = builder;
        let mut model = self.cost_model();
        model.set_var_plans(var_plans);
        model.set_fn_costs(fn_costs);
        BuiltDag {
            memo,
            root,
            provenance,
            exhausted,
            model,
            rejections,
        }
    }

    /// Create an optimizer against a database, network profile, cost
    /// catalog and ORM mapping registry.
    #[deprecated(
        since = "0.2.0",
        note = "use `Cobra::builder(db).network(..).catalog(..).mappings(..).build()`"
    )]
    pub fn new(
        db: minidb::SharedDb,
        net: NetworkProfile,
        catalog: CostCatalog,
        mappings: MappingRegistry,
    ) -> Cobra {
        Cobra::builder(db)
            .network(net)
            .catalog(catalog)
            .mappings(mappings)
            .build()
    }

    /// Use a custom function registry (needed when programs call
    /// application-specific pure functions like `myFunc`).
    #[deprecated(since = "0.2.0", note = "use `CobraBuilder::funcs`")]
    pub fn with_funcs(mut self, funcs: std::sync::Arc<FuncRegistry>) -> Cobra {
        self.funcs = funcs;
        self
    }

    /// Enable or disable per-search cost memoization (on by default).
    /// Memoized and un-memoized searches return bit-identical costs; the
    /// toggle exists for benchmarking and for tests asserting exactly that.
    #[deprecated(since = "0.2.0", note = "use `CobraBuilder::memoize_costs`")]
    pub fn with_cost_memoization(mut self, on: bool) -> Cobra {
        self.config.memoize_costs = on;
        self
    }

    /// The network profile this optimizer costs against.
    pub fn network(&self) -> &NetworkProfile {
        &self.config.network
    }

    /// The cost catalog.
    pub fn catalog(&self) -> &CostCatalog {
        &self.config.catalog
    }

    /// The transformation rules the search explores.
    pub fn rules(&self) -> &RuleSet {
        &self.config.rules
    }

    /// The search budget.
    pub fn budget(&self) -> &SearchBudget {
        &self.config.budget
    }

    /// The whole configuration.
    pub fn config(&self) -> &OptimizerConfig {
        &self.config
    }

    /// Optimize a single function (no callees).
    pub fn optimize(&self, f: &Function) -> DbResult<Optimized> {
        self.optimize_program(&Program::single(f.clone()))
    }

    /// Optimize a program's entry function: builds the Region DAG over the
    /// original (plus the inlined variant when procedure calls can be
    /// inlined and the `inline` rule is enabled), generates alternatives
    /// for every loop/statement region under the configured [`RuleSet`]
    /// and [`SearchBudget`], and extracts the least-cost program.
    pub fn optimize_program(&self, program: &Program) -> DbResult<Optimized> {
        Ok(self.run_search(program)?.summary)
    }

    /// Optimize like [`Cobra::optimize_program`], additionally reporting
    /// every choice point the cost model decided: the winning and losing
    /// alternatives per region, their estimated costs, and which rules
    /// produced them. The report pretty-prints via [`std::fmt::Display`].
    pub fn explain(&self, program: &Program) -> DbResult<OptimizationReport> {
        let mut report = self.run_search(program)?.into_report();
        report.engine = self.config.exec_engine;
        if self.feedback.is_some() {
            report.drift = Some(self.estimation_drift());
        }
        Ok(report)
    }

    /// The shared search behind [`Cobra::optimize_program`] and
    /// [`Cobra::explain`].
    fn run_search(&self, program: &Program) -> DbResult<SearchRun> {
        let entry = program.entry();
        let BuiltDag {
            memo,
            root,
            provenance,
            exhausted: mut budget_exhausted,
            model,
            rejections: verifier_rejections,
        } = self.build_dag(program);

        // Cost-based extraction.
        // Memoize estimates across the search: value iteration and
        // extraction revisit the same m-exprs many times, and the cost
        // model (estimator + network formulas) dominates search time. A
        // `CostMemo` is valid for exactly one `Memo`, so each search
        // builds its own.
        let sweeps = self.config.budget.max_search_sweeps;
        // With validation enabled, extract the k cheapest structurally
        // distinct candidates instead of just the argmin; slot 0 of
        // `top_k_plans` is bit-identical to `best_plan_from`.
        let top_k = self.config.validation.as_ref().map(|v| v.top_k.max(1));
        let (mut plans, table, cache_hits, cache_misses) = if self.config.memoize_costs {
            let memoized = volcano::CostMemo::new(&model);
            let table = volcano::cost_table(&memo, &memoized, sweeps);
            let plans: Vec<volcano::BestPlan<RegionOp>> = match top_k {
                None => volcano::best_plan_from(&memo, root, &memoized, &table)
                    .into_iter()
                    .collect(),
                Some(k) => volcano::top_k_plans(&memo, root, &memoized, &table, k),
            };
            let (h, m) = (memoized.hits(), memoized.misses());
            (plans, table, h, m)
        } else {
            let table = volcano::cost_table(&memo, &model, sweeps);
            let plans: Vec<volcano::BestPlan<RegionOp>> = match top_k {
                None => volcano::best_plan_from(&memo, root, &model, &table)
                    .into_iter()
                    .collect(),
                Some(k) => volcano::top_k_plans(&memo, root, &model, &table, k),
            };
            (plans, table, 0, 0)
        };
        if plans.is_empty() {
            return Err(DbError::Invalid("no plan for program".to_string()));
        }
        if !table.converged {
            budget_exhausted = true;
        }

        // Runtime-validated selection: micro-measure the candidates and
        // promote the measured winner (trust, but verify).
        let mut validation = None;
        let mut chosen_rank = 0usize;
        if let Some(vcfg) = &self.config.validation {
            if plans.len() > 1 {
                let ctx = crate::validation::ValidationContext {
                    db: &self.db,
                    funcs: &self.funcs,
                    mappings: &self.mappings,
                    network: &self.config.network,
                    engine: self.config.exec_engine,
                    feedback: self.feedback.as_ref(),
                };
                let outcome = crate::validation::validate_selection(
                    &ctx,
                    program,
                    &entry.name,
                    &entry.params,
                    &plans,
                    vcfg,
                );
                chosen_rank = outcome.promoted_rank.min(plans.len() - 1);
                validation = Some(outcome);
            }
        }
        let best = plans.swap_remove(chosen_rank);

        let program_out = emit::emit_function(&entry.name, &entry.params, &best.tree);
        let mut tags = emit::describe(&program_out);
        if chosen_rank > 0 {
            tags.push("validated-promotion");
        }
        if budget_exhausted {
            tags.push("budget-exhausted");
            log_budget_exhausted(&entry.name);
        }
        if !verifier_rejections.is_empty() {
            tags.push("verifier-rejected");
        }
        let original_cost_ns = self.cost_of_with(&model, entry);

        let choice_points = (0..memo.num_groups())
            .filter(|&g| memo.find(g) == g && memo.group(g).len() > 1)
            .count();
        let summary = Optimized {
            program: program_out,
            est_cost_ns: best.cost,
            original_cost_ns,
            alternatives: volcano::count_plans(&memo, root),
            choice_points,
            groups: memo.num_live_groups(),
            exprs: memo.num_exprs(),
            tags,
            cost_cache_hits: cache_hits,
            cost_cache_misses: cache_misses,
            estimator_cache_hits: model.estimate_cache_hits(),
            estimator_cache_misses: model.estimate_cache_misses(),
            feedback_overrides: model.feedback_overrides(),
            budget_exhausted,
            validation,
            verifier_rejections,
        };
        Ok(SearchRun {
            memo,
            best,
            table,
            provenance,
            model,
            summary,
        })
    }

    /// The runtime-feedback store attached at build time, if any.
    pub fn feedback_store(&self) -> Option<&std::sync::Arc<minidb::FeedbackStore>> {
        self.feedback.as_ref()
    }

    /// How far the statistics-only model has drifted from runtime
    /// observation: the worst multiplicative divergence between the
    /// model's cardinality estimate (histograms, **no** feedback) and the
    /// observed cardinality, across every plan the feedback store has
    /// seen. `1.0` means perfect agreement (or no feedback/observations);
    /// `4.0` means some plan's cardinality is off by 4× in either
    /// direction. Cardinalities below one row are clamped to one so empty
    /// results cannot produce infinite drift.
    pub fn estimation_drift(&self) -> f64 {
        let Some(fb) = &self.feedback else {
            return 1.0;
        };
        let db = self.db.read().unwrap();
        let estimator = minidb::Estimator::new(&db, &self.funcs)
            .with_row_ns(self.config.catalog.server_row_ns)
            .with_histograms(self.config.use_histograms);
        let mut worst = 1.0f64;
        for (plan, obs, stamp) in fb.snapshot_stamped() {
            // Observations of since-rewritten tables are evidence about
            // data that no longer exists — disagreeing with them is not
            // drift.
            if stamp.is_some_and(|s| s != db.plan_data_stamp(plan.as_plan())) {
                continue;
            }
            let Ok(est) = estimator.estimate(plan.as_plan()) else {
                continue;
            };
            let (a, b) = (est.rows.max(1.0), obs.rows.max(1.0));
            worst = worst.max(a / b).max(b / a);
        }
        worst
    }

    /// Re-optimize `program` if the cost model's estimates have drifted
    /// from runtime observation by at least `threshold` (a multiplicative
    /// factor; e.g. `2.0` re-optimizes once some observed cardinality is
    /// off by 2× from the model's guess — see
    /// [`Cobra::estimation_drift`]).
    ///
    /// On drift, the database's stats epoch is bumped first
    /// ([`minidb::Database::bump_stats_epoch`]), so every cached estimate
    /// — this optimizer's shared [`minidb::EstimateCache`] *and* any other
    /// cache stamped against the same database — is invalidated and the
    /// new search re-estimates everything, now preferring the observed
    /// cardinalities. Returns `Ok(None)` when estimates still agree with
    /// observation (or no feedback store is attached).
    pub fn reoptimize_on_drift(
        &self,
        program: &Program,
        threshold: f64,
    ) -> DbResult<Option<Optimized>> {
        if self.feedback.is_none() || self.estimation_drift() < threshold {
            return Ok(None);
        }
        self.db.write().unwrap().bump_stats_epoch();
        self.optimize_program(program).map(Some)
    }

    /// Optimize many programs concurrently, one optimizer search per
    /// program, sharing this optimizer's database snapshot, catalog and
    /// mappings across worker threads (`Cobra` is `Send + Sync`).
    ///
    /// Results are in input order and identical to what sequential
    /// [`Cobra::optimize_program`] calls would produce — searches share no
    /// mutable state. Worker count is the smaller of the batch size and
    /// available hardware parallelism.
    pub fn optimize_batch(&self, programs: &[Program]) -> Vec<DbResult<Optimized>> {
        // Worker count: hardware parallelism, overridable with
        // `COBRA_BATCH_WORKERS` (ops knob; also lets single-core hosts
        // exercise the threaded path).
        let workers = std::env::var("COBRA_BATCH_WORKERS")
            .ok()
            .and_then(|s| s.parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
        self.optimize_batch_with_workers(programs, workers)
    }

    /// [`Cobra::optimize_batch`] with an explicit worker-thread count
    /// (clamped to the batch size; `workers <= 1` optimizes inline with
    /// no thread overhead).
    pub fn optimize_batch_with_workers(
        &self,
        programs: &[Program],
        workers: usize,
    ) -> Vec<DbResult<Optimized>> {
        use std::sync::atomic::{AtomicUsize, Ordering};

        let workers = workers.min(programs.len());
        // One worker (singleton batch or single-core host): a thread
        // would only add spawn/teardown overhead — optimize inline.
        if workers <= 1 {
            return programs.iter().map(|p| self.optimize_program(p)).collect();
        }

        // Each slot is written exactly once, by whichever worker claimed
        // its index off the shared counter.
        let slots: Vec<std::sync::Mutex<Option<DbResult<Optimized>>>> = (0..programs.len())
            .map(|_| std::sync::Mutex::new(None))
            .collect();
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    let Some(program) = programs.get(i) else {
                        break;
                    };
                    let out = self.optimize_program(program);
                    *slots[i].lock().unwrap() = Some(out);
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .unwrap()
                    .expect("every program was optimized")
            })
            .collect()
    }

    /// Cost a function as-is (no transformations) under this optimizer's
    /// model — used for reporting and for the experiments' cost columns.
    pub fn cost_of(&self, f: &Function) -> f64 {
        let mut model = self.cost_model();
        let mut var_plans = HashMap::new();
        transforms::collect_var_plans(&f.body, &self.mappings, &mut var_plans);
        model.set_var_plans(var_plans);
        self.cost_of_with(&model, f)
    }

    fn cost_of_with(&self, model: &RegionCostModel, f: &Function) -> f64 {
        let mut memo: Memo<RegionOp> = Memo::new();
        let region = Region::from_function(f);
        let root = memo.insert_tree(&region_to_optree(&region), None);
        // Fresh per-memo cache (CostMemo keys by MExprId, which is only
        // meaningful within a single Memo); honors the memoization toggle
        // like `optimize_program` does.
        let best = if self.config.memoize_costs {
            let memoized = volcano::CostMemo::new(model);
            volcano::best_plan(&memo, root, &memoized)
        } else {
            volcano::best_plan(&memo, root, model)
        };
        best.map(|b| b.cost).unwrap_or(f64::INFINITY)
    }

    /// Plain costs of every non-entry function (callee bodies), used for
    /// `LetCall` statements.
    fn callee_costs(&self, program: &Program) -> HashMap<String, f64> {
        let mut model = self.cost_model();
        let mut var_plans = HashMap::new();
        for f in &program.functions {
            transforms::collect_var_plans(&f.body, &self.mappings, &mut var_plans);
        }
        model.set_var_plans(var_plans);
        let mut out = HashMap::new();
        for f in program.functions.iter().skip(1) {
            out.insert(f.name.clone(), self.cost_of_with(&model, f));
        }
        out
    }
}

/// Emit a budget-exhaustion notice (opt-in via `COBRA_LOG`, so library
/// users are not spammed; the flag on [`Optimized`] is the durable record).
fn log_budget_exhausted(name: &str) {
    if std::env::var_os("COBRA_LOG").is_some() {
        eprintln!(
            "cobra: search budget exhausted while optimizing `{name}`; \
             alternatives were dropped (raise SearchBudget to explore them)"
        );
    }
}

/// A constructed Region DAG, ready for cost-based extraction.
struct BuiltDag {
    memo: Memo<RegionOp>,
    root: GroupId,
    provenance: HashMap<MExprId, Vec<&'static str>>,
    exhausted: bool,
    model: RegionCostModel,
    /// Diagnostics of alternatives the static verifier dropped
    /// (`VerifyLevel::Reject`).
    rejections: Vec<String>,
}

/// Everything one search produced: the summary plus the introspection
/// state [`Cobra::explain`] turns into an [`OptimizationReport`].
struct SearchRun {
    memo: Memo<RegionOp>,
    best: volcano::BestPlan<RegionOp>,
    table: volcano::CostTable,
    provenance: HashMap<MExprId, Vec<&'static str>>,
    model: RegionCostModel,
    summary: Optimized,
}

impl SearchRun {
    fn into_report(self) -> OptimizationReport {
        let SearchRun {
            memo,
            best,
            table,
            provenance,
            model,
            summary,
        } = self;
        let chosen: HashMap<GroupId, MExprId> = best.choices.iter().copied().collect();

        let mut choice_points = Vec::new();
        for g in 0..memo.num_groups() {
            if memo.find(g) != g || memo.group(g).len() <= 1 {
                continue;
            }
            let exprs = memo.group(g).to_vec();
            // The group's first expression is the region as originally
            // inserted — its operator names the region.
            let region = region_label(&memo.expr(exprs[0]).op);
            let on_chosen_path = chosen.contains_key(&g);
            let mut alternatives: Vec<ReportedAlternative> = exprs
                .iter()
                .map(|&eid| {
                    let e = memo.expr(eid);
                    let child_costs: Vec<f64> = e
                        .children
                        .iter()
                        .map(|&c| table.group_costs[memo.find(c)])
                        .collect();
                    let cost_ns = if child_costs.iter().any(|c| !c.is_finite()) {
                        f64::INFINITY
                    } else {
                        model.cost(&memo, eid, &child_costs)
                    };
                    ReportedAlternative {
                        expr: eid,
                        label: region_label(&e.op),
                        rules: provenance
                            .get(&eid)
                            .cloned()
                            .unwrap_or_else(|| vec!["original"]),
                        cost_ns,
                        chosen: chosen.get(&g) == Some(&eid),
                    }
                })
                .collect();
            // Ascending cost; the chosen alternative leads among ties.
            alternatives.sort_by(|a, b| {
                (a.cost_ns, !a.chosen)
                    .partial_cmp(&(b.cost_ns, !b.chosen))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            choice_points.push(ChoicePoint {
                group: g,
                region,
                on_chosen_path,
                alternatives,
            });
        }
        choice_points.sort_by_key(|c| {
            (
                !c.on_chosen_path,
                std::cmp::Reverse(c.alternatives.len()),
                c.group,
            )
        });

        let mut rules_fired: Vec<&'static str> = Vec::new();
        let mut ids: Vec<MExprId> = provenance.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            for r in &provenance[&id] {
                if !rules_fired.contains(r) {
                    rules_fired.push(r);
                }
            }
        }

        OptimizationReport {
            summary,
            choice_points,
            rules_fired,
            drift: None,
            engine: minidb::ExecEngine::default(),
            batch_size: minidb::BATCH_SIZE,
        }
    }
}

/// Builds the Region DAG: inserts region trees and registers alternatives
/// from the F-IR rules (loops) and the statement-level prefetch rule,
/// consulting the configured [`RuleSet`] and [`SearchBudget`] and
/// recording which rules produced each registered alternative.
struct DagBuilder<'a> {
    memo: &'a mut Memo<RegionOp>,
    mappings: &'a MappingRegistry,
    var_plans: &'a mut HashMap<String, minidb::SharedPlan>,
    rules: &'a RuleSet,
    budget: &'a SearchBudget,
    /// Tables the program writes. Prefetch alternatives over these are
    /// unsound (build-once client caches would serve stale rows) and are
    /// never registered.
    updated_tables: std::collections::HashSet<String>,
    /// Root m-expr of each registered alternative → rules that derived it.
    provenance: HashMap<MExprId, Vec<&'static str>>,
    /// Set when any budget bound clipped alternative registration.
    exhausted: bool,
    /// Static verification of rule outputs (`crates/analysis`).
    verify: crate::config::VerifyLevel,
    /// Diagnostics of alternatives dropped under `VerifyLevel::Reject`.
    rejections: Vec<String>,
}

impl<'a> DagBuilder<'a> {
    /// Insert `region` and its generated alternatives.
    ///
    /// * `live_after` — variables live after this region,
    /// * `prev_sibling` — the statement immediately preceding this region
    ///   in the enclosing sequence (gates rule T1's empty-init condition),
    /// * `into` — when given, the region's expressions join this existing
    ///   group (used to register whole-program variants).
    fn insert_region(
        &mut self,
        region: &Region,
        live_after: &[String],
        prev_sibling: Option<&Stmt>,
        into: Option<GroupId>,
    ) -> GroupId {
        use imperative::regions::RegionKind;
        match &region.kind {
            RegionKind::Block(stmt) => {
                let g = self
                    .memo
                    .insert_expr(RegionOp::Leaf(stmt.clone()), vec![], into);
                self.register_var_plan(stmt);
                // Statement-level prefetch alternative (patterns E/F) —
                // the prefetch rule N1 applied at statement granularity.
                if self.rules.is_enabled("N1") {
                    if let Some(alt_stmts) =
                        transforms::prefetch_stmt_alternative(stmt).filter(|stmts| {
                            !transforms::prefetched_tables(stmts)
                                .iter()
                                .any(|t| self.updated_tables.contains(t))
                        })
                    {
                        if self.memo_has_room() {
                            let tree = region_to_optree(&Region::from_stmts(&alt_stmts));
                            let (_, eid) = self.memo.insert_tree_full(&tree, Some(g));
                            self.provenance.entry(eid).or_insert_with(|| vec!["N1"]);
                        } else {
                            self.exhausted = true;
                        }
                    }
                }
                g
            }
            RegionKind::Seq(children) => {
                // Per-child read sets once (sets, so suffix-unioning them
                // child-by-child matches the old concatenate-then-scan).
                let child_reads: Vec<std::collections::HashSet<String>> =
                    children.iter().map(transforms::reads_of_region).collect();
                let mut child_groups = Vec::with_capacity(children.len());
                for (i, child) in children.iter().enumerate() {
                    // Live set for child i: everything read by children
                    // after it, plus the incoming live set.
                    let mut live: Vec<String> = live_after.to_vec();
                    for later in &child_reads[i + 1..] {
                        for v in later {
                            if !live.iter().any(|l| l == v) {
                                live.push(v.clone());
                            }
                        }
                    }
                    let prev = if i > 0 {
                        last_stmt(&children[i - 1])
                    } else {
                        None
                    };
                    child_groups.push(self.insert_region(child, &live, prev.as_ref(), None));
                }
                self.memo
                    .insert_expr(RegionOp::Seq(children.len()), child_groups, into)
            }
            RegionKind::Cond {
                cond,
                then_r,
                else_r,
            } => {
                let t = self.insert_region(then_r, live_after, None, None);
                let e = self.insert_region(else_r, live_after, None, None);
                self.memo
                    .insert_expr(RegionOp::Cond { cond: cond.clone() }, vec![t, e], into)
            }
            RegionKind::Loop { var, iter, body } => {
                // Body sub-regions get their own groups (and alternatives:
                // inner loops of non-foldable outer loops — pattern A).
                let mut live: Vec<String> = live_after.to_vec();
                for v in transforms::reads_of_region(body) {
                    if !live.contains(&v) {
                        live.push(v);
                    }
                }
                let body_g = self.insert_region(body, &live, None, None);
                let g = self.memo.insert_expr(
                    RegionOp::Loop {
                        var: var.clone(),
                        iter: iter.clone(),
                    },
                    vec![body_g],
                    into,
                );
                self.loop_alternatives(var, iter, &body.to_stmts(), live_after, prev_sibling, g);
                g
            }
            RegionKind::WhileLoop { cond, body } => {
                let body_g = self.insert_region(body, live_after, None, None);
                self.memo
                    .insert_expr(RegionOp::While { cond: cond.clone() }, vec![body_g], into)
            }
            RegionKind::BlackBox(stmts) => {
                self.memo
                    .insert_expr(RegionOp::BlackBox(stmts.clone()), vec![], into)
            }
            RegionKind::Empty => self.memo.insert_expr(RegionOp::Empty, vec![], into),
        }
    }

    /// Generate and register F-IR alternatives for a loop region.
    fn loop_alternatives(
        &mut self,
        var: &str,
        iter: &Expr,
        body: &[Stmt],
        live_after: &[String],
        prev_sibling: Option<&Stmt>,
        group: GroupId,
    ) {
        let Some(base) = fir::build::loop_to_fold(var, iter, body, self.mappings, Some(live_after))
        else {
            return;
        };
        let max = self.budget.max_alternatives_per_region;
        let expansion = match self.verify {
            crate::config::VerifyLevel::Off => fir::expand_with(base, self.rules, max),
            level => {
                let rules = self.rules;
                let check = move |b: &FirAlternative, alt: &FirAlternative| {
                    let delta = rules.delta_for_applied(&alt.rules_applied);
                    match analysis::verify_rewrite(b, alt, &delta) {
                        Ok(()) => Ok(()),
                        Err(diag) if level == crate::config::VerifyLevel::Panic => {
                            panic!("verify_rewrites=Panic: statically unsound rewrite: {diag}")
                        }
                        Err(diag) => Err(diag.to_string()),
                    }
                };
                fir::expand_with_verifier(base, self.rules, max, Some(&check))
            }
        };
        if expansion.truncated {
            self.exhausted = true;
        }
        self.rejections.extend(expansion.rejected);
        for alt in expansion.alternatives {
            if !self.t1_gate_ok(&alt, prev_sibling) {
                continue;
            }
            // Prefetching a table the program updates is unsound: the
            // build-once client cache would serve pre-update rows.
            if alt
                .prefetches
                .iter()
                .any(|p| self.updated_tables.contains(&p.table))
            {
                continue;
            }
            let Some(stmts) = fir::codegen::generate(&alt) else {
                continue;
            };
            if !self.memo_has_room() {
                self.exhausted = true;
                break;
            }
            for s in &stmts {
                self.register_var_plan(s);
            }
            transforms::collect_var_plans(&stmts, self.mappings, self.var_plans);
            let tree = region_to_optree(&Region::from_stmts(&stmts));
            let (_, eid) = self.memo.insert_tree_full(&tree, Some(group));
            self.provenance
                .entry(eid)
                .or_insert_with(|| alt.rules_applied.clone());
        }
    }

    /// Whether the memo caps of the budget leave room for more
    /// alternatives.
    fn memo_has_room(&self) -> bool {
        self.budget
            .memo_has_room(self.memo.num_groups(), self.memo.num_exprs())
    }

    /// Rule T1's validity gate: `fold(insert, {}, Q) = Q` requires the
    /// accumulator to be empty at loop entry — satisfied when the previous
    /// statement in the sequence freshly created it.
    fn t1_gate_ok(&self, alt: &FirAlternative, prev_sibling: Option<&Stmt>) -> bool {
        let Some(v) = &alt.requires_empty_init else {
            return true;
        };
        match prev_sibling.map(|s| &s.kind) {
            Some(StmtKind::NewCollection(p)) | Some(StmtKind::NewMap(p)) => p == v,
            _ => false,
        }
    }

    fn register_var_plan(&mut self, stmt: &Stmt) {
        match &stmt.kind {
            StmtKind::Let(v, Expr::Query(spec)) => {
                self.var_plans.insert(v.clone(), spec.plan.clone());
            }
            StmtKind::Let(v, Expr::LoadAll(entity)) => {
                if let Some(m) = self.mappings.entity(entity) {
                    self.var_plans
                        .insert(v.clone(), LogicalPlan::scan(&m.table).into());
                }
            }
            _ => {}
        }
    }
}

/// The last statement of a region, for T1 gating. Only `NewCollection` /
/// `NewMap` heads matter to the gate, so compound trailing statements are
/// rebuilt with empty bodies instead of deep-cloning them (gate-equivalent
/// to `region.to_stmts().into_iter().last()`, without the clones).
fn last_stmt(region: &Region) -> Option<Stmt> {
    use imperative::regions::RegionKind;
    match &region.kind {
        RegionKind::Block(s) => Some(s.clone()),
        RegionKind::Seq(children) => children.iter().rev().find_map(last_stmt),
        RegionKind::Cond { cond, .. } => Some(Stmt::new(StmtKind::If {
            cond: cond.clone(),
            then_branch: Vec::new(),
            else_branch: Vec::new(),
        })),
        RegionKind::Loop { var, iter, .. } => Some(Stmt::new(StmtKind::ForEach {
            var: var.clone(),
            iter: iter.clone(),
            body: Vec::new(),
        })),
        RegionKind::WhileLoop { cond, .. } => Some(Stmt::new(StmtKind::While {
            cond: cond.clone(),
            body: Vec::new(),
        })),
        RegionKind::BlackBox(stmts) => stmts.last().cloned(),
        RegionKind::Empty => None,
    }
}
