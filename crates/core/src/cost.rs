//! The cost model of §VI.
//!
//! Costs are virtual nanoseconds. Per the paper:
//!
//! * query execution: `C_Q = C_NRT + C^F_Q + max(N_Q·S_row(Q)/BW, C^L_Q −
//!   C^F_Q)` — one round trip, server time to the first row, then result
//!   transfer overlapped with result production;
//! * prefetch: `C_prefetch(Q) = C_Q / AF_Q` (amortized over the estimated
//!   number of accesses);
//! * basic block: sum of per-statement costs (`C_Z` each, plus any data
//!   access the statement performs);
//! * `C_seq = Σ children`; `C_cond = p·C_then + (1−p)·C_else + C_pred`
//!   with `p` from database statistics when the predicate involves query
//!   attributes, 0.5 otherwise;
//! * loops: `N_Q · C_body + C_Db(Q)` when the trip count is known from the
//!   iterable's plan, a tunable default otherwise.
//!
//! Like the paper's model, this one does **not** model the ORM session
//! cache: iterative navigations are charged one lookup per iteration.
//! (The paper's Experiment 2 notes the same mismatch for P0 on fast
//! networks; COBRA never picks P0 anyway.)

use crate::catalog::CostCatalog;
use crate::region_ops::RegionOp;
use imperative::ast::{Expr, Stmt, StmtKind};
use minidb::{
    Estimate, EstimateCache, Estimator, FuncRegistry, LogicalPlan, PlanFingerprint, ScalarExpr,
    SharedPlan, Value,
};
use netsim::NetworkProfile;
use orm::MappingRegistry;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use volcano::{CostModel, GroupId, MExprId, Memo};

/// A finite stand-in for "cannot estimate": large enough to lose against
/// any real alternative without poisoning arithmetic like `f64::INFINITY`
/// would.
const UNESTIMABLE: f64 = 1e18;

/// Cost model over [`RegionOp`] AND-nodes.
pub struct RegionCostModel {
    db: minidb::SharedDb,
    funcs: std::sync::Arc<FuncRegistry>,
    net: NetworkProfile,
    catalog: CostCatalog,
    mappings: MappingRegistry,
    /// Known collection bindings: variable → producing plan (flow-
    /// insensitive; gathered from every program variant in the DAG).
    var_plans: HashMap<String, SharedPlan>,
    /// Pre-computed plain costs of callee functions (for `LetCall`).
    fn_costs: HashMap<String, f64>,
    /// Whole-plan estimate cache, keyed by plan fingerprint. Shareable
    /// across searches and batch workers (see [`EstimateCache`]); a fresh
    /// private cache is used unless [`RegionCostModel::set_estimate_cache`]
    /// installs a shared one.
    estimates: Arc<EstimateCache>,
    /// Estimates this model served from the cache / had to compute
    /// (model-local, so per-search reporting stays exact even when the
    /// cache storage is shared across concurrent searches).
    est_hits: AtomicU64,
    est_misses: AtomicU64,
    /// When false, every estimate is recomputed (see
    /// [`RegionCostModel::disable_estimate_cache`]).
    use_estimate_cache: bool,
    /// Histogram-interpolated selectivities (default on); off reproduces
    /// the uniform-NDV baseline estimator.
    use_histograms: bool,
    /// Runtime cardinality observations; the estimator prefers these
    /// over model guesses when present.
    feedback: Option<Arc<minidb::FeedbackStore>>,
    /// Estimates this model computed with an observed cardinality
    /// substituted for the model guess.
    fb_overrides: AtomicU64,
    /// Interned synthetic plans (`loadAll` scans, association lookups) so
    /// repeated costings reuse one fingerprinted allocation. Nav entries
    /// carry the association's session-cache miss rate alongside the
    /// lookup plan.
    scan_plans: std::sync::Mutex<HashMap<String, SharedPlan>>,
    nav_plans: std::sync::Mutex<HashMap<String, Option<(SharedPlan, f64)>>>,
}

impl RegionCostModel {
    /// Build a cost model.
    pub fn new(
        db: minidb::SharedDb,
        funcs: std::sync::Arc<FuncRegistry>,
        net: NetworkProfile,
        catalog: CostCatalog,
        mappings: MappingRegistry,
    ) -> RegionCostModel {
        RegionCostModel {
            db,
            funcs,
            net,
            catalog,
            mappings,
            var_plans: HashMap::new(),
            fn_costs: HashMap::new(),
            estimates: Arc::new(EstimateCache::new()),
            est_hits: AtomicU64::new(0),
            est_misses: AtomicU64::new(0),
            use_estimate_cache: true,
            use_histograms: true,
            feedback: None,
            fb_overrides: AtomicU64::new(0),
            scan_plans: std::sync::Mutex::new(HashMap::new()),
            nav_plans: std::sync::Mutex::new(HashMap::new()),
        }
    }

    /// The interned whole-table scan plan for `table`.
    fn scan_plan(&self, table: &str) -> SharedPlan {
        let mut cache = self.scan_plans.lock().unwrap();
        cache
            .entry(table.to_string())
            .or_insert_with(|| LogicalPlan::scan(table).into())
            .clone()
    }

    /// Register collection bindings (variable → producing plan).
    pub fn set_var_plans(&mut self, plans: HashMap<String, SharedPlan>) {
        self.var_plans = plans;
    }

    /// Register callee costs for `LetCall` statements.
    pub fn set_fn_costs(&mut self, costs: HashMap<String, f64>) {
        self.fn_costs = costs;
    }

    /// Serve estimates through `cache` (epoch-validated, so sharing one
    /// cache across many searches over the same database is safe and is
    /// what [`crate::Cobra`] does).
    pub fn set_estimate_cache(&mut self, cache: Arc<EstimateCache>) {
        self.estimates = cache;
    }

    /// Disable estimate caching entirely (every estimate recomputed).
    /// Exists for benchmarking and for the equivalence suite; results are
    /// bit-identical either way.
    pub fn disable_estimate_cache(&mut self) {
        self.use_estimate_cache = false;
    }

    /// Enable or disable histogram-interpolated selectivities (default
    /// on); off is the uniform-NDV baseline.
    pub fn set_use_histograms(&mut self, on: bool) {
        self.use_histograms = on;
    }

    /// Prefer observed runtime cardinalities from `feedback` over model
    /// guesses.
    pub fn set_feedback(&mut self, feedback: Option<Arc<minidb::FeedbackStore>>) {
        self.feedback = feedback;
    }

    /// Estimates this model computed with an observed runtime cardinality
    /// substituted for the model's guess.
    pub fn feedback_overrides(&self) -> u64 {
        self.fb_overrides.load(Ordering::Relaxed)
    }

    /// Estimates this model served from its estimate cache.
    pub fn estimate_cache_hits(&self) -> u64 {
        self.est_hits.load(Ordering::Relaxed)
    }

    /// Estimates this model computed (cache misses).
    pub fn estimate_cache_misses(&self) -> u64 {
        self.est_misses.load(Ordering::Relaxed)
    }

    /// The catalog in use.
    pub fn catalog(&self) -> &CostCatalog {
        &self.catalog
    }

    /// Whole-plan estimate via the fingerprint cache: cached and uncached
    /// paths are bit-identical (the cache stores the computed
    /// [`Estimate`] verbatim, failures included). The cache protocol
    /// lives in one place — [`Estimator::estimate_fp_stats`]; this layer
    /// only adds the model-local hit/miss accounting.
    fn cached_estimate(&self, plan: &LogicalPlan, fp: PlanFingerprint) -> Result<Estimate, ()> {
        let db = self.db.read().unwrap();
        let mut estimator = Estimator::new(&db, &self.funcs)
            .with_row_ns(self.catalog.server_row_ns)
            .with_histograms(self.use_histograms)
            .with_override_counter(&self.fb_overrides);
        if let Some(fb) = &self.feedback {
            estimator = estimator.with_feedback(fb);
        }
        if !self.use_estimate_cache {
            return estimator.estimate_fp_stats(plan, fp).0.map_err(|_| ());
        }
        let (result, hit) = estimator
            .with_cache(&self.estimates)
            .estimate_fp_stats(plan, fp);
        if hit {
            self.est_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.est_misses.fetch_add(1, Ordering::Relaxed);
        }
        result.map_err(|_| ())
    }

    /// `C_Q` from an [`Estimate`] (§VI's formula).
    fn query_cost_of(&self, e: &Estimate) -> f64 {
        let first = e.first_row_ns(self.catalog.server_row_ns);
        let last = e.last_row_ns(self.catalog.server_row_ns);
        let transfer = self.net.transfer_ns_f(e.payload_bytes());
        self.net.round_trip_ns() as f64 + first + transfer.max(last - first)
    }

    /// `C_Q` for one query execution (§VI).
    pub fn query_cost(&self, plan: &LogicalPlan) -> f64 {
        match self.cached_estimate(plan, PlanFingerprint::of(plan)) {
            Ok(e) => self.query_cost_of(&e),
            Err(()) => UNESTIMABLE,
        }
    }

    /// [`RegionCostModel::query_cost`] for a [`SharedPlan`] — uses the
    /// plan's precomputed fingerprint.
    pub fn query_cost_shared(&self, plan: &SharedPlan) -> f64 {
        match self.cached_estimate(plan, plan.fingerprint()) {
            Ok(e) => self.query_cost_of(&e),
            Err(()) => UNESTIMABLE,
        }
    }

    /// Estimated result cardinality of a plan.
    fn plan_rows(&self, plan: &SharedPlan) -> f64 {
        self.cached_estimate(plan, plan.fingerprint())
            .map(|e| e.rows)
            .unwrap_or(self.catalog.default_collection_iters)
    }

    /// Estimated iteration count of a loop over `iter`.
    pub fn iter_rows(&self, iter: &Expr) -> f64 {
        match iter {
            Expr::Query(spec) => self.plan_rows(&spec.plan),
            Expr::LoadAll(entity) => match self.mappings.entity(entity) {
                Some(m) => self.plan_rows(&self.scan_plan(&m.table)),
                None => self.catalog.default_collection_iters,
            },
            Expr::Var(v) => match self.var_plans.get(v) {
                Some(plan) => self.plan_rows(plan),
                None => self.catalog.default_collection_iters,
            },
            Expr::LookupCache(cache, _) => {
                // cache_<table>_by_<col>: expected rows per key = N/NDV.
                if let Some((table, col)) = parse_cache_name(cache) {
                    let db = self.db.read().unwrap();
                    if let Ok(t) = db.table(&table) {
                        if let Ok(i) = t.schema().resolve(&col) {
                            let n = t.stats().row_count.max(1) as f64;
                            let ndv = t.stats().ndv(i) as f64;
                            return (n / ndv).max(1.0);
                        }
                    }
                }
                self.catalog.default_collection_iters
            }
            _ => self.catalog.default_collection_iters,
        }
    }

    /// Cost of *fetching* the iterable (charged once per loop execution).
    fn iter_fetch_cost(&self, iter: &Expr) -> f64 {
        match iter {
            Expr::Query(spec) => self.query_cost_shared(&spec.plan),
            Expr::LoadAll(entity) => match self.mappings.entity(entity) {
                Some(m) => self.query_cost_shared(&self.scan_plan(&m.table)),
                None => UNESTIMABLE,
            },
            Expr::Var(_) => 0.0, // already materialized
            Expr::LookupCache(_, key) => self.catalog.cy_ns + self.expr_cost(key),
            _ => self.catalog.cy_ns,
        }
    }

    /// Data-access plus operator cost of evaluating an expression once.
    pub fn expr_cost(&self, e: &Expr) -> f64 {
        match e {
            Expr::Var(_) | Expr::Lit(_) => 0.0,
            Expr::Bin(_, l, r) => self.catalog.cy_ns + self.expr_cost(l) + self.expr_cost(r),
            Expr::Not(i) | Expr::Len(i) => self.catalog.cy_ns + self.expr_cost(i),
            Expr::Field(b, _) => self.catalog.cy_ns + self.expr_cost(b),
            Expr::Nav(b, field) => {
                // One point lookup per evaluation (no session-cache model).
                self.expr_cost(b) + self.nav_cost(field)
            }
            Expr::Call(_, args) => {
                self.catalog.cy_ns + args.iter().map(|a| self.expr_cost(a)).sum::<f64>()
            }
            Expr::LoadAll(entity) => match self.mappings.entity(entity) {
                Some(m) => self.query_cost_shared(&self.scan_plan(&m.table)),
                None => UNESTIMABLE,
            },
            Expr::Query(spec) | Expr::ScalarQuery(spec) => {
                self.query_cost_shared(&spec.plan)
                    + spec
                        .binds
                        .iter()
                        .map(|(_, b)| self.expr_cost(b))
                        .sum::<f64>()
            }
            Expr::LookupCache(_, key) => self.catalog.cy_ns + self.expr_cost(key),
            Expr::MapGet(m, k) => self.catalog.cy_ns + self.expr_cost(m) + self.expr_cost(k),
        }
    }

    /// Cost of one association navigation: a point query on the target,
    /// amortized by the association's expected session-cache miss rate.
    ///
    /// The ORM session caches entities by primary key, so navigating
    /// across a sweep of the source table issues at most one lookup per
    /// *distinct* foreign-key value: the statistics-driven miss rate is
    /// `NDV(fk) / row_count`. (The paper's model charges every navigation
    /// — its known P0 overestimate; the uniform-NDV baseline,
    /// `use_histograms = false`, reproduces that.) The lookup plan and
    /// miss rate are interned per association field.
    fn nav_cost(&self, field: &str) -> f64 {
        let resolved = {
            let mut cache = self.nav_plans.lock().unwrap();
            cache
                .entry(field.to_string())
                .or_insert_with(|| {
                    for mapping in self.mappings.iter() {
                        if let Some(assoc) = mapping.association(field) {
                            if let Some(target) = self.mappings.entity(&assoc.target_entity) {
                                let plan = LogicalPlan::scan(&target.table).select(ScalarExpr::eq(
                                    ScalarExpr::col(&target.id_column),
                                    ScalarExpr::param("k"),
                                ));
                                let db = self.db.read().unwrap();
                                let miss = match db.table(&mapping.table) {
                                    Ok(t) if t.stats().analyzed && t.stats().row_count > 0 => {
                                        match t.schema().resolve(&assoc.fk_column) {
                                            Ok(i) => (t.stats().ndv(i) as f64
                                                / t.stats().row_count as f64)
                                                .clamp(0.0, 1.0),
                                            Err(_) => 1.0,
                                        }
                                    }
                                    _ => 1.0,
                                };
                                return Some((plan.into(), miss));
                            }
                        }
                    }
                    None
                })
                .clone()
        };
        match resolved {
            Some((p, miss)) => {
                let lookup = self.query_cost_shared(&p);
                if self.use_histograms {
                    self.catalog.cy_ns + miss * lookup
                } else {
                    lookup
                }
            }
            None => UNESTIMABLE,
        }
    }

    /// Cost of a single simple statement (basic block).
    pub fn stmt_cost(&self, stmt: &Stmt) -> f64 {
        let cz = self.catalog.cz_ns;
        match &stmt.kind {
            StmtKind::Let(_, e)
            | StmtKind::Add(_, e)
            | StmtKind::Print(e)
            | StmtKind::Return(Some(e)) => cz + self.expr_cost(e),
            StmtKind::Put(_, k, v) => cz + self.expr_cost(k) + self.expr_cost(v),
            StmtKind::NewCollection(_)
            | StmtKind::NewMap(_)
            | StmtKind::Return(None)
            | StmtKind::Break => cz,
            StmtKind::CacheByColumn { source, .. } => {
                // C_prefetch = C_Q / AF (§VI).
                let fetch = self.expr_cost(source);
                let af = prefetched_table(source)
                    .map(|t| self.catalog.af_for(&t))
                    .unwrap_or(self.catalog.default_af.max(1.0));
                cz + fetch / af
            }
            StmtKind::UpdateQuery { value, key, .. } => {
                cz + self.net.round_trip_ns() as f64
                    + self.catalog.update_server_ns
                    + self.expr_cost(value)
                    + self.expr_cost(key)
            }
            StmtKind::LetCall(_, f, args) => {
                let callee = self.fn_costs.get(f).copied().unwrap_or(UNESTIMABLE);
                cz + callee + args.iter().map(|a| self.expr_cost(a)).sum::<f64>()
            }
            // Compound statements never appear as region leaves; black
            // boxes go through `RegionOp::BlackBox`.
            StmtKind::ForEach { .. }
            | StmtKind::While { .. }
            | StmtKind::If { .. }
            | StmtKind::TryCatch { .. } => UNESTIMABLE,
        }
    }

    /// Probability that `cond` holds, from statistics where possible.
    pub fn cond_probability(&self, cond: &Expr) -> f64 {
        match cond {
            Expr::Lit(Value::Bool(true)) => 1.0,
            Expr::Lit(Value::Bool(false)) => 0.0,
            Expr::Not(inner) => 1.0 - self.cond_probability(inner),
            Expr::Bin(op, l, r) => {
                use minidb::BinOp::*;
                match op {
                    And => self.cond_probability(l) * self.cond_probability(r),
                    Or => {
                        let a = self.cond_probability(l);
                        let b = self.cond_probability(r);
                        (a + b - a * b).min(1.0)
                    }
                    Eq => self
                        .field_column(l)
                        .or_else(|| self.field_column(r))
                        .map(|(t, i)| {
                            let db = self.db.read().unwrap();
                            db.table(&t)
                                .map(|tab| {
                                    let stats = tab.stats();
                                    if self.use_histograms && stats.analyzed {
                                        // Null-aware: equality never
                                        // matches NULLs.
                                        stats.eq_selectivity(i)
                                    } else {
                                        1.0 / stats.ndv(i) as f64
                                    }
                                })
                                .unwrap_or(self.catalog.default_cond_p)
                        })
                        .unwrap_or(self.catalog.default_cond_p),
                    Lt | Le | Gt | Ge => self.range_probability(l, r, *op).unwrap_or(1.0 / 3.0),
                    Ne => 0.9,
                    _ => self.catalog.default_cond_p,
                }
            }
            _ => self.catalog.default_cond_p,
        }
    }

    /// Probability of `row.field ⋈ literal` from the column's histogram
    /// (§VI: `p` from database statistics). `None` when the shape or the
    /// statistics cannot answer — the caller keeps the 1/3 default.
    fn range_probability(&self, l: &Expr, r: &Expr, op: minidb::BinOp) -> Option<f64> {
        if !self.use_histograms {
            return None;
        }
        let (field, lit, op) = match (l, r) {
            (f @ Expr::Field(..), Expr::Lit(v)) => (f, v, op),
            (Expr::Lit(v), f @ Expr::Field(..)) => (f, v, op.mirror()),
            _ => return None,
        };
        let (table, i) = self.field_column(field)?;
        let db = self.db.read().unwrap();
        db.table(&table).ok()?.stats().range_selectivity(i, op, lit)
    }

    /// Trip-count estimate for a `while` loop: counted loops of the form
    /// `while (k < N)` / `while (k <= N)` are assumed to start at 0 with
    /// unit steps (the common shape in the workloads); anything else uses
    /// the catalog default (§VI: "we use an approximation for the number
    /// of loop iterations, which can be tuned").
    fn while_iters(&self, cond: &Expr) -> f64 {
        if let Expr::Bin(op, l, r) = cond {
            if matches!(l.as_ref(), Expr::Var(_)) {
                if let Expr::Lit(Value::Int(n)) = r.as_ref() {
                    match op {
                        minidb::BinOp::Lt => return (*n).max(0) as f64,
                        minidb::BinOp::Le => return (*n + 1).max(0) as f64,
                        _ => {}
                    }
                }
            }
        }
        self.catalog.default_loop_iters
    }

    /// Per-iteration probability that executing `stmts` exits the
    /// enclosing loop via `break`: `1 − Π(1 − p_i)` over the top-level
    /// break sites, with conditional breaks weighted by their condition's
    /// statistics-driven probability. Nested loops swallow their own
    /// breaks and contribute nothing.
    fn stmts_break_probability(&self, stmts: &[Stmt]) -> f64 {
        let mut cont = 1.0;
        for s in stmts {
            let p = match &s.kind {
                StmtKind::Break => 1.0,
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    let pc = self.cond_probability(cond);
                    pc * self.stmts_break_probability(then_branch)
                        + (1.0 - pc) * self.stmts_break_probability(else_branch)
                }
                _ => 0.0,
            };
            cont *= 1.0 - p;
        }
        (1.0 - cont).clamp(0.0, 1.0)
    }

    /// [`RegionCostModel::stmts_break_probability`] over a body *group* of
    /// the Region DAG, read off the group's original expression (the
    /// region as written; rewritten alternatives are fold-generated and
    /// never contain breaks).
    fn body_break_probability(&self, memo: &Memo<RegionOp>, group: GroupId) -> f64 {
        let g = memo.find(group);
        let Some(&e0) = memo.group(g).first() else {
            return 0.0;
        };
        let e = memo.expr(e0);
        match &e.op {
            RegionOp::Leaf(stmt) => self.stmts_break_probability(std::slice::from_ref(stmt)),
            RegionOp::BlackBox(stmts) => self.stmts_break_probability(stmts),
            RegionOp::Seq(_) => {
                let mut cont = 1.0;
                for &c in &e.children {
                    cont *= 1.0 - self.body_break_probability(memo, c);
                }
                (1.0 - cont).clamp(0.0, 1.0)
            }
            RegionOp::Cond { cond } => {
                let p = self.cond_probability(cond);
                let t = self.body_break_probability(memo, e.children[0]);
                let el = self.body_break_probability(memo, e.children[1]);
                (p * t + (1.0 - p) * el).clamp(0.0, 1.0)
            }
            // Inner loops consume their own breaks; empty bodies have none.
            RegionOp::Loop { .. } | RegionOp::While { .. } | RegionOp::Empty => 0.0,
        }
    }

    /// Expected number of iterations a loop of nominal trip count `n`
    /// actually executes when each iteration exits with probability `p`:
    /// `(1 − (1−p)ⁿ) / p`, capped to `[1, n]` (geometric truncated at
    /// `n`). `p = 0` leaves `n` untouched.
    fn expected_iterations(n: f64, p: f64) -> f64 {
        if p <= 0.0 || n <= 1.0 {
            return n;
        }
        ((1.0 - (1.0 - p).powf(n)) / p).clamp(1.0, n)
    }

    /// If `e` reads a column of a known table (`row.field`), return it.
    fn field_column(&self, e: &Expr) -> Option<(String, usize)> {
        let Expr::Field(_, col) = e else { return None };
        let db = self.db.read().unwrap();
        for table in db.tables() {
            if let Ok(i) = table.schema().resolve(col) {
                return Some((table.name().to_string(), i));
            }
        }
        None
    }

    /// Rough cost of an unstructured fragment: every statement charged,
    /// loops at default trip counts.
    fn black_box_cost(&self, stmts: &[Stmt]) -> f64 {
        let mut total = 0.0;
        for s in stmts {
            total += match &s.kind {
                StmtKind::ForEach { iter, body, .. } => {
                    let iters = Self::expected_iterations(
                        self.iter_rows(iter),
                        self.stmts_break_probability(body),
                    );
                    self.iter_fetch_cost(iter)
                        + iters * (self.black_box_cost(body) + self.catalog.cz_ns)
                }
                StmtKind::While { body, .. } => {
                    let iters = Self::expected_iterations(
                        self.catalog.default_loop_iters,
                        self.stmts_break_probability(body),
                    );
                    iters * (self.black_box_cost(body) + self.catalog.cz_ns)
                }
                StmtKind::If {
                    then_branch,
                    else_branch,
                    cond,
                } => {
                    let p = self.cond_probability(cond);
                    p * self.black_box_cost(then_branch)
                        + (1.0 - p) * self.black_box_cost(else_branch)
                        + self.catalog.cy_ns
                }
                StmtKind::TryCatch { body, handler } => {
                    self.black_box_cost(body) + self.black_box_cost(handler)
                }
                _ => self.stmt_cost(s),
            };
        }
        total
    }
}

/// Recover `(table, column)` from a cache name minted by
/// [`fir::codegen::cache_name`].
fn parse_cache_name(cache: &str) -> Option<(String, String)> {
    let rest = cache.strip_prefix("cache_")?;
    let (table, col) = rest.split_once("_by_")?;
    Some((table.to_string(), col.to_string()))
}

/// The table a prefetch source fetches, if recognizable.
fn prefetched_table(source: &Expr) -> Option<String> {
    match source {
        Expr::Query(spec) => spec.plan.base_tables().first().map(|s| s.to_string()),
        Expr::LoadAll(_) => None, // resolved through mappings by expr_cost
        _ => None,
    }
}

impl CostModel<RegionOp> for RegionCostModel {
    fn cost(&self, memo: &Memo<RegionOp>, expr: MExprId, child_costs: &[f64]) -> f64 {
        let children_sum: f64 = child_costs.iter().sum();
        match &memo.expr(expr).op {
            RegionOp::Leaf(stmt) => self.stmt_cost(stmt),
            RegionOp::Seq(_) => children_sum,
            RegionOp::Cond { cond } => {
                let p = self.cond_probability(cond);
                let c_pred = self.catalog.cy_ns + self.expr_cost(cond);
                p * child_costs[0] + (1.0 - p) * child_costs[1] + c_pred
            }
            RegionOp::Loop { iter, .. } => {
                // Early exits shorten loops: a body that breaks with
                // per-iteration probability p runs ~geometric(p) times.
                let n = self.iter_rows(iter);
                let p = self.body_break_probability(memo, memo.expr(expr).children[0]);
                let iters = Self::expected_iterations(n, p);
                self.iter_fetch_cost(iter) + iters * (child_costs[0] + self.catalog.cz_ns)
            }
            RegionOp::While { cond } => {
                let per_iter = child_costs[0] + self.catalog.cz_ns + self.expr_cost(cond);
                let p = self.body_break_probability(memo, memo.expr(expr).children[0]);
                Self::expected_iterations(self.while_iters(cond), p) * per_iter
            }
            RegionOp::BlackBox(stmts) => self.black_box_cost(stmts),
            RegionOp::Empty => 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imperative::ast::QuerySpec;
    use minidb::{Column, DataType, Database, Schema};
    use orm::EntityMapping;

    fn fixture(net: NetworkProfile, af: f64) -> RegionCostModel {
        let mut db = Database::new();
        let orders = Schema::new(vec![
            Column::new("o_id", DataType::Int),
            Column::new("o_customer_sk", DataType::Int),
        ]);
        let t = db.create_table("orders", orders).unwrap();
        t.set_primary_key("o_id").unwrap();
        for i in 0..1000i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 100)]).unwrap();
        }
        let customer = Schema::new(vec![
            Column::new("c_customer_sk", DataType::Int),
            Column::new("c_birth_year", DataType::Int),
        ]);
        let t = db.create_table("customer", customer).unwrap();
        t.set_primary_key("c_customer_sk").unwrap();
        for i in 0..100i64 {
            t.insert(vec![Value::Int(i), Value::Int(1950 + (i % 40))])
                .unwrap();
        }
        db.analyze_all();
        let mut mappings = MappingRegistry::new();
        mappings.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
            "customer",
            "Customer",
            "o_customer_sk",
        ));
        mappings.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
        RegionCostModel::new(
            minidb::shared(db),
            std::sync::Arc::new(FuncRegistry::with_builtins()),
            net,
            CostCatalog::with_af(af),
            mappings,
        )
    }

    #[test]
    fn query_cost_includes_round_trip_and_transfer() {
        let m = fixture(NetworkProfile::slow_remote(), 1.0);
        let plan = minidb::sql::parse("select * from orders").unwrap();
        let c = m.query_cost(&plan);
        // ≥ RTT (250 ms) + transfer of 16 kB at 62.5 kB/s (≈ 0.26 s).
        assert!(c >= 250e6 + 0.2e9, "got {c}");
    }

    #[test]
    fn faster_network_means_cheaper_queries() {
        let slow = fixture(NetworkProfile::slow_remote(), 1.0);
        let fast = fixture(NetworkProfile::fast_local(), 1.0);
        let plan = minidb::sql::parse("select * from orders").unwrap();
        assert!(fast.query_cost(&plan) < slow.query_cost(&plan) / 100.0);
    }

    #[test]
    fn prefetch_amortization_divides_cost() {
        let m1 = fixture(NetworkProfile::slow_remote(), 1.0);
        let m50 = fixture(NetworkProfile::slow_remote(), 50.0);
        let stmt = Stmt::new(StmtKind::CacheByColumn {
            cache: "cache_customer_by_c_customer_sk".into(),
            source: Expr::Query(QuerySpec::sql("select * from customer")),
            key_col: "c_customer_sk".into(),
        });
        let c1 = m1.stmt_cost(&stmt);
        let c50 = m50.stmt_cost(&stmt);
        assert!(c50 < c1 / 10.0, "AF=50 amortizes: {c1} vs {c50}");
    }

    #[test]
    fn nav_cost_amortizes_session_cache_hits() {
        // 1000 orders navigate to only 100 distinct customers: the ORM
        // session cache absorbs 90 % of the lookups, so the amortized
        // per-navigation cost is ~0.1 round trips.
        let m = fixture(NetworkProfile::slow_remote(), 1.0);
        let nav = Expr::nav(Expr::var("o"), "customer");
        let c = m.expr_cost(&nav);
        assert!(c >= 24e6, "10 % of a 250 ms round trip: {c}");
        assert!(c <= 27e6, "cache hits are client-local: {c}");
        // The uniform baseline keeps the paper's every-nav-pays model.
        let mut legacy = fixture(NetworkProfile::slow_remote(), 1.0);
        legacy.set_use_histograms(false);
        let c = legacy.expr_cost(&nav);
        assert!(c >= 250e6, "point lookup pays the round trip: {c}");
        assert!(c <= 251e6, "but transfers only one row: {c}");
    }

    #[test]
    fn iter_rows_uses_estimates() {
        let m = fixture(NetworkProfile::fast_local(), 1.0);
        assert_eq!(m.iter_rows(&Expr::LoadAll("Order".into())), 1000.0);
        let q = Expr::Query(QuerySpec::sql(
            "select * from orders where o_customer_sk = 5",
        ));
        assert!((m.iter_rows(&q) - 10.0).abs() < 1.0);
        // Cache lookups estimate rows-per-key.
        let lk = Expr::LookupCache(
            "cache_orders_by_o_customer_sk".into(),
            Box::new(Expr::lit(1i64)),
        );
        assert!((m.iter_rows(&lk) - 10.0).abs() < 1.0);
        // Unknown variable → default.
        assert_eq!(m.iter_rows(&Expr::var("ghost")), 1000.0);
    }

    #[test]
    fn cond_probability_from_stats() {
        let m = fixture(NetworkProfile::fast_local(), 1.0);
        let eq = Expr::bin(
            minidb::BinOp::Eq,
            Expr::field(Expr::var("o"), "o_customer_sk"),
            Expr::lit(5i64),
        );
        assert!(
            (m.cond_probability(&eq) - 0.01).abs() < 1e-9,
            "1/NDV = 1/100"
        );
        // Range conditions read the column histogram: o_id is uniform on
        // 0..1000, so `o_id > 1` holds for ~99.8 % of rows (the pre-
        // histogram model said a flat 1/3).
        let cmp = Expr::bin(
            minidb::BinOp::Gt,
            Expr::field(Expr::var("o"), "o_id"),
            Expr::lit(1i64),
        );
        assert!(m.cond_probability(&cmp) > 0.95);
        let narrow = Expr::bin(
            minidb::BinOp::Gt,
            Expr::field(Expr::var("o"), "o_id"),
            Expr::lit(990i64),
        );
        let p = m.cond_probability(&narrow);
        assert!(p < 0.05 && p > 0.0, "top 1 % of the range: {p}");
        // Non-literal comparisons keep the tunable default.
        let unknown = Expr::bin(
            minidb::BinOp::Gt,
            Expr::field(Expr::var("o"), "o_id"),
            Expr::var("x"),
        );
        assert!((m.cond_probability(&unknown) - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(m.cond_probability(&Expr::lit(true)), 1.0);
    }

    #[test]
    fn n_plus_one_loop_costs_n_lookups() {
        // Cost of P0's loop must scale with the number of orders.
        let m = fixture(NetworkProfile::slow_remote(), 1.0);
        let mut memo: Memo<RegionOp> = Memo::new();
        let body = Stmt::new(StmtKind::Let(
            "cust".into(),
            Expr::nav(Expr::var("o"), "customer"),
        ));
        let region = imperative::regions::Region::from_stmts(&[Stmt::new(StmtKind::ForEach {
            var: "o".into(),
            iter: Expr::LoadAll("Order".into()),
            body: vec![body],
        })]);
        let root = memo.insert_tree(&crate::region_ops::region_to_optree(&region), None);
        let best = volcano::best_plan(&memo, root, &m).unwrap();
        // 1000 iterations × amortized lookup ≈ 100 distinct customers
        // × ≥250 ms round trip ≈ ≥25 s — still ruinous vs one join.
        assert!(best.cost >= 24e9, "got {}", best.cost);
    }

    #[test]
    fn unknown_function_cost_is_prohibitive_not_infinite() {
        let m = fixture(NetworkProfile::fast_local(), 1.0);
        let stmt = Stmt::new(StmtKind::LetCall("x".into(), "mystery".into(), vec![]));
        let c = m.stmt_cost(&stmt);
        assert!(c >= UNESTIMABLE && c.is_finite());
    }
}
