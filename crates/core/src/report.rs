//! Structured optimization reports: what the optimizer considered, what
//! each alternative would cost, and why the winner won.
//!
//! [`crate::Cobra::explain`] returns an [`OptimizationReport`]: the usual
//! [`Optimized`] summary plus every *choice point* of the Region DAG — a
//! region with more than one registered alternative — with the winning
//! and losing alternatives, their estimated costs, and the transformation
//! rules that produced them. The report implements [`std::fmt::Display`]
//! as a paper-style pretty-printer.

use crate::optimizer::Optimized;
use crate::region_ops::RegionOp;
use imperative::pretty;
use minidb::ExecEngine;

/// One alternative at a choice point.
#[derive(Debug, Clone)]
pub struct ReportedAlternative {
    /// The m-expr id in the Region DAG (stable across group merges).
    pub expr: usize,
    /// Compact rendering of the alternative's root region operator.
    pub label: String,
    /// The transformation rules that derived this alternative
    /// (`["original"]` for the program as written; `"toFIR"` marks the
    /// loop → fold conversion).
    pub rules: Vec<&'static str>,
    /// Estimated total cost of the alternative, ns (`f64::INFINITY` when
    /// the alternative has no finite plan, e.g. a self-referential one).
    pub cost_ns: f64,
    /// Whether least-cost extraction chose this alternative.
    pub chosen: bool,
}

/// A region with more than one registered alternative — a place where the
/// cost model actually decided something.
#[derive(Debug, Clone)]
pub struct ChoicePoint {
    /// The memo group (OR node) id.
    pub group: usize,
    /// Compact description of the region (its original operator).
    pub region: String,
    /// Whether this group lies on the chosen program's extraction path.
    pub on_chosen_path: bool,
    /// The alternatives, sorted by ascending cost (the chosen alternative
    /// first among ties).
    pub alternatives: Vec<ReportedAlternative>,
}

/// The structured result of [`crate::Cobra::explain`].
#[derive(Debug, Clone)]
pub struct OptimizationReport {
    /// The ordinary optimization summary (same fields
    /// [`crate::Cobra::optimize_program`] returns).
    pub summary: Optimized,
    /// All choice points, chosen-path groups first, larger choice points
    /// before smaller ones.
    pub choice_points: Vec<ChoicePoint>,
    /// Distinct rule names that produced at least one registered
    /// alternative, in discovery order.
    pub rules_fired: Vec<&'static str>,
    /// Estimation drift vs runtime observation at explain time (see
    /// `Cobra::estimation_drift`): the worst multiplicative divergence
    /// between model-estimated and observed cardinalities. `None` when no
    /// feedback store is attached; `Some(1.0)` means perfect agreement.
    pub drift: Option<f64>,
    /// The execution engine sessions built from this configuration run on
    /// (from `OptimizerConfig::exec_engine`).
    pub engine: ExecEngine,
    /// Filter batch width of the vectorized engine
    /// ([`minidb::BATCH_SIZE`]); reported even when `engine` is the row
    /// engine so runs are comparable across engine switches.
    pub batch_size: usize,
}

impl OptimizationReport {
    /// The most contested choice point on the chosen path (most
    /// alternatives); falls back to any choice point when extraction
    /// visited none with >1 alternative.
    pub fn top_choice_point(&self) -> Option<&ChoicePoint> {
        self.choice_points
            .iter()
            .filter(|c| c.on_chosen_path)
            .max_by_key(|c| c.alternatives.len())
            .or_else(|| self.choice_points.first())
    }

    /// Whether any [`crate::SearchBudget`] bound clipped the search.
    pub fn budget_exhausted(&self) -> bool {
        self.summary.budget_exhausted
    }
}

impl std::fmt::Display for OptimizationReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = &self.summary;
        writeln!(
            f,
            "optimization report: est {:.3}s (original {:.3}s), \
             {} alternatives, {} choice points, {} groups / {} m-exprs",
            s.est_cost_ns / 1e9,
            s.original_cost_ns / 1e9,
            s.alternatives,
            s.choice_points,
            s.groups,
            s.exprs,
        )?;
        writeln!(f, "rules fired: {}", self.rules_fired.join(", "))?;
        if !s.verifier_rejections.is_empty() {
            writeln!(
                f,
                "verifier rejected {} unsound alternative(s):",
                s.verifier_rejections.len()
            )?;
            for d in &s.verifier_rejections {
                writeln!(f, "  - {d}")?;
            }
        }
        writeln!(
            f,
            "execution: {} engine, batch size {}",
            self.engine, self.batch_size
        )?;
        let pct = |hits: u64, misses: u64| {
            let total = hits + misses;
            if total == 0 {
                0.0
            } else {
                100.0 * hits as f64 / total as f64
            }
        };
        writeln!(
            f,
            "caches: cost-memo {} hits / {} misses ({:.0}% hit), \
             estimator {} hits / {} misses ({:.0}% hit)",
            s.cost_cache_hits,
            s.cost_cache_misses,
            pct(s.cost_cache_hits, s.cost_cache_misses),
            s.estimator_cache_hits,
            s.estimator_cache_misses,
            pct(s.estimator_cache_hits, s.estimator_cache_misses),
        )?;
        if s.feedback_overrides > 0 || self.drift.is_some() {
            write!(
                f,
                "runtime feedback: {} estimate(s) used observed cardinalities",
                s.feedback_overrides
            )?;
            if let Some(d) = self.drift {
                write!(f, "; model drift ×{d:.2}")?;
            }
            writeln!(f)?;
        }
        if let Some(v) = &s.validation {
            let source = match v.source {
                crate::validation::ValidationSource::Execution => {
                    format!("measured at row scale {}", v.row_scale)
                }
                crate::validation::ValidationSource::Feedback => {
                    "fresh feedback accepted the predicted ranking".to_string()
                }
            };
            writeln!(
                f,
                "validated selection: {} candidate(s), {source}; {} (promoted rank {})",
                v.candidates.len(),
                if v.agreement {
                    "measurement agreed with prediction"
                } else {
                    "measurement DISAGREED with prediction"
                },
                v.promoted_rank,
            )?;
            for c in &v.candidates {
                let measured = match c.measured_ns {
                    Some(ns) => format!("{:.6}s measured", ns / 1e9),
                    None => "not measured".to_string(),
                };
                writeln!(
                    f,
                    "  {} predicted #{} {:.6}s — {}{}",
                    if c.predicted_rank == v.promoted_rank {
                        "->"
                    } else {
                        "  "
                    },
                    c.predicted_rank,
                    c.predicted_cost_ns / 1e9,
                    measured,
                    match c.measured_rank {
                        Some(r) => format!(" (measured #{r})"),
                        None => String::new(),
                    },
                )?;
            }
        }
        if s.budget_exhausted {
            writeln!(
                f,
                "search budget EXHAUSTED: alternatives were dropped; raise \
                 SearchBudget to explore the full space"
            )?;
        }
        for cp in &self.choice_points {
            writeln!(
                f,
                "{} choice point g{} — {}",
                if cp.on_chosen_path { "*" } else { " " },
                cp.group,
                cp.region
            )?;
            for alt in &cp.alternatives {
                let cost = if alt.cost_ns.is_finite() {
                    format!("{:>12.6}s", alt.cost_ns / 1e9)
                } else {
                    format!("{:>13}", "(no plan)")
                };
                writeln!(
                    f,
                    "  {} {}  [{}]  {}",
                    if alt.chosen { "->" } else { "  " },
                    cost,
                    alt.rules.join("+"),
                    alt.label,
                )?;
            }
        }
        Ok(())
    }
}

/// Compact one-line label for a region operator.
pub(crate) fn region_label(op: &RegionOp) -> String {
    let text = match op {
        RegionOp::Leaf(stmt) => pretty::stmts_to_string(std::slice::from_ref(stmt)),
        RegionOp::Seq(n) => format!("seq of {n} regions"),
        RegionOp::Cond { cond } => format!("if {}", pretty::expr_to_string(cond)),
        RegionOp::Loop { var, iter } => {
            format!("for ({var} : {})", pretty::expr_to_string(iter))
        }
        RegionOp::While { cond } => format!("while {}", pretty::expr_to_string(cond)),
        RegionOp::BlackBox(stmts) => format!("black box of {} statements", stmts.len()),
        RegionOp::Empty => "empty region".to_string(),
    };
    // One line, bounded width: labels decorate the report, the full
    // program is available from `summary.program`.
    let mut line = text.lines().next().unwrap_or("").trim().to_string();
    const MAX: usize = 72;
    if line.chars().count() > MAX {
        line = line.chars().take(MAX - 1).collect::<String>() + "…";
    }
    line
}
