//! The cost catalog: tunable parameters of the §VI cost model.
//!
//! The paper: "The cost metrics we used were provided to our system as a
//! cost catalog file." The same file format is supported here — one
//! `key = value` per line, `#` comments, and per-table amortization
//! factors as `af.<table> = <value>`.

use std::collections::HashMap;
use std::fmt::Write as _;

/// Cost-model parameters (Figure 12's table, plus engine knobs).
#[derive(Debug, Clone, PartialEq)]
pub struct CostCatalog {
    /// `C_Z`: cost of one imperative statement, ns (paper: 30 ns).
    pub cz_ns: f64,
    /// `C_Y`: cost of one F-IR/program operator evaluation, ns.
    pub cy_ns: f64,
    /// Server-side per-row cost (drives `C^F_Q`/`C^L_Q` estimates); must
    /// match the executor's to keep estimates comparable to measurements.
    pub server_row_ns: f64,
    /// Default probability of a conditional when statistics cannot help
    /// (paper: 0.5).
    pub default_cond_p: f64,
    /// Iteration-count guess for loops whose trip count is unknown
    /// (generic `while` loops; "can be tuned according to the application").
    pub default_loop_iters: f64,
    /// Row-count guess for collections whose source is unknown.
    pub default_collection_iters: f64,
    /// `AF_Q`: default amortization factor for prefetches.
    pub default_af: f64,
    /// Per-table amortization-factor overrides.
    pub af_overrides: HashMap<String, f64>,
    /// Cost charged for a database update statement beyond the round trip.
    pub update_server_ns: f64,
}

impl Default for CostCatalog {
    fn default() -> Self {
        CostCatalog {
            cz_ns: 30.0,
            cy_ns: 30.0,
            server_row_ns: minidb::exec::DEFAULT_SERVER_ROW_NS,
            default_cond_p: 0.5,
            default_loop_iters: 1_000.0,
            default_collection_iters: 1_000.0,
            default_af: 1.0,
            af_overrides: HashMap::new(),
            update_server_ns: 1_000.0,
        }
    }
}

impl CostCatalog {
    /// Catalog with a given default amortization factor (the experiments
    /// evaluate AF = 1, AF = 50 and AF = ∞).
    pub fn with_af(af: f64) -> CostCatalog {
        CostCatalog {
            default_af: af,
            ..CostCatalog::default()
        }
    }

    /// Amortization factor for prefetching `table`.
    pub fn af_for(&self, table: &str) -> f64 {
        self.af_overrides
            .get(table)
            .copied()
            .unwrap_or(self.default_af)
            .max(1.0)
    }

    /// Parse a cost-catalog file.
    ///
    /// ```text
    /// # COBRA cost catalog
    /// cz_ns = 30
    /// default_af = 50
    /// af.customer = 100
    /// ```
    pub fn parse(text: &str) -> Result<CostCatalog, String> {
        let mut cat = CostCatalog::default();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!("line {}: expected key = value", lineno + 1));
            };
            let key = key.trim();
            let value: f64 = value
                .trim()
                .parse()
                .map_err(|e| format!("line {}: bad number: {e}", lineno + 1))?;
            match key {
                "cz_ns" => cat.cz_ns = value,
                "cy_ns" => cat.cy_ns = value,
                "server_row_ns" => cat.server_row_ns = value,
                "default_cond_p" => cat.default_cond_p = value,
                "default_loop_iters" => cat.default_loop_iters = value,
                "default_collection_iters" => cat.default_collection_iters = value,
                "default_af" => cat.default_af = value,
                "update_server_ns" => cat.update_server_ns = value,
                _ => {
                    if let Some(table) = key.strip_prefix("af.") {
                        cat.af_overrides.insert(table.to_string(), value);
                    } else {
                        return Err(format!("line {}: unknown key {key:?}", lineno + 1));
                    }
                }
            }
        }
        Ok(cat)
    }

    /// Render as a cost-catalog file (inverse of [`CostCatalog::parse`]).
    pub fn to_file_string(&self) -> String {
        let mut s = String::from("# COBRA cost catalog\n");
        let _ = writeln!(s, "cz_ns = {}", self.cz_ns);
        let _ = writeln!(s, "cy_ns = {}", self.cy_ns);
        let _ = writeln!(s, "server_row_ns = {}", self.server_row_ns);
        let _ = writeln!(s, "default_cond_p = {}", self.default_cond_p);
        let _ = writeln!(s, "default_loop_iters = {}", self.default_loop_iters);
        let _ = writeln!(
            s,
            "default_collection_iters = {}",
            self.default_collection_iters
        );
        let _ = writeln!(s, "default_af = {}", self.default_af);
        let _ = writeln!(s, "update_server_ns = {}", self.update_server_ns);
        let mut tables: Vec<_> = self.af_overrides.iter().collect();
        tables.sort_by_key(|(t, _)| t.as_str());
        for (t, v) in tables {
            let _ = writeln!(s, "af.{t} = {v}");
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = CostCatalog::default();
        assert_eq!(c.cz_ns, 30.0, "paper profiles C_Z at 30ns");
        assert_eq!(c.default_cond_p, 0.5);
        assert_eq!(c.default_af, 1.0);
    }

    #[test]
    fn parse_round_trips() {
        let mut c = CostCatalog::with_af(50.0);
        c.af_overrides.insert("customer".into(), 100.0);
        c.cz_ns = 42.0;
        let text = c.to_file_string();
        let parsed = CostCatalog::parse(&text).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn parse_handles_comments_and_blank_lines() {
        let c = CostCatalog::parse("# header\n\ncz_ns = 10 # trailing comment\naf.orders = 7\n")
            .unwrap();
        assert_eq!(c.cz_ns, 10.0);
        assert_eq!(c.af_for("orders"), 7.0);
        assert_eq!(c.af_for("other"), 1.0);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CostCatalog::parse("nonsense").is_err());
        assert!(CostCatalog::parse("cz_ns = abc").is_err());
        assert!(CostCatalog::parse("mystery_key = 1").is_err());
    }

    #[test]
    fn af_clamps_to_at_least_one() {
        let mut c = CostCatalog::default();
        c.af_overrides.insert("t".into(), 0.2);
        assert_eq!(c.af_for("t"), 1.0);
    }
}
