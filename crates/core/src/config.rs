//! Typed optimizer configuration: [`SearchBudget`], [`OptimizerConfig`]
//! and [`CobraBuilder`].
//!
//! COBRA's contract (Figure 1) takes three inputs — a program, a set of
//! transformation rules, and a cost model — and this module makes the
//! non-program inputs first-class API objects instead of constructor
//! positions and compile-time constants:
//!
//! * [`fir::RuleSet`] — which transformations the search explores,
//! * [`SearchBudget`] — how much of the alternative space it may build,
//! * [`OptimizerConfig`] — the value-typed bundle of both plus network
//!   profile, cost catalog and memoization toggle,
//! * [`CobraBuilder`] — the one entry point wiring a database, ORM
//!   mappings and a function registry to a config, producing a
//!   [`crate::Cobra`].
//!
//! ```
//! use cobra_core::{Cobra, CostCatalog, SearchBudget};
//! use fir::RuleSet;
//! use netsim::NetworkProfile;
//!
//! let db = minidb::shared(minidb::Database::new());
//! let cobra = Cobra::builder(db)
//!     .network(NetworkProfile::slow_remote())
//!     .catalog(CostCatalog::with_af(50.0))
//!     .rules(RuleSet::standard().without("N1")) // ablate prefetching
//!     .budget(SearchBudget::default().with_max_alternatives_per_region(16))
//!     .build();
//! assert!(!cobra.rules().is_enabled("N1"));
//! ```

use crate::catalog::CostCatalog;
use crate::optimizer::Cobra;
use fir::RuleSet;
use minidb::{ExecEngine, FuncRegistry};
use netsim::NetworkProfile;
use orm::MappingRegistry;
use std::sync::Arc;

/// Bounds on the optimizer's search effort. Replaces the former
/// compile-time `MAX_LOOP_ALTERNATIVES` constant; when any bound clips the
/// search, the result reports it (`Optimized::budget_exhausted`, the
/// `"budget-exhausted"` tag) instead of truncating silently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SearchBudget {
    /// F-IR alternatives explored per loop region (closure bound of
    /// `fir::expand_with`). The historical default is 64.
    pub max_alternatives_per_region: usize,
    /// Cap on memo groups (OR nodes): alternative registration stops once
    /// the Region DAG holds this many groups. `None` = unbounded.
    pub max_memo_groups: Option<usize>,
    /// Cap on memo m-exprs (AND nodes). `None` = unbounded.
    pub max_memo_exprs: Option<usize>,
    /// Cap on cost value-iteration sweeps over the DAG (search-effort
    /// budget enforced inside `volcano`). `None` = run to the fixpoint.
    pub max_search_sweeps: Option<usize>,
}

impl Default for SearchBudget {
    fn default() -> Self {
        SearchBudget {
            max_alternatives_per_region: 64,
            max_memo_groups: None,
            max_memo_exprs: None,
            max_search_sweeps: None,
        }
    }
}

impl SearchBudget {
    /// No bounds at all (beyond memory): explore every alternative the
    /// rules can derive and iterate costs to the fixpoint.
    pub fn unbounded() -> SearchBudget {
        SearchBudget {
            max_alternatives_per_region: usize::MAX,
            max_memo_groups: None,
            max_memo_exprs: None,
            max_search_sweeps: None,
        }
    }

    /// Set the per-region alternative bound.
    pub fn with_max_alternatives_per_region(mut self, n: usize) -> SearchBudget {
        self.max_alternatives_per_region = n;
        self
    }

    /// Cap the number of memo groups (OR nodes).
    pub fn with_max_memo_groups(mut self, n: usize) -> SearchBudget {
        self.max_memo_groups = Some(n);
        self
    }

    /// Cap the number of memo m-exprs (AND nodes).
    pub fn with_max_memo_exprs(mut self, n: usize) -> SearchBudget {
        self.max_memo_exprs = Some(n);
        self
    }

    /// Cap cost value-iteration sweeps.
    pub fn with_max_search_sweeps(mut self, n: usize) -> SearchBudget {
        self.max_search_sweeps = Some(n);
        self
    }

    /// Whether the memo's current size leaves room to register more
    /// alternatives under this budget.
    pub(crate) fn memo_has_room(&self, groups: usize, exprs: usize) -> bool {
        self.max_memo_groups.is_none_or(|cap| groups < cap)
            && self.max_memo_exprs.is_none_or(|cap| exprs < cap)
    }
}

/// The value-typed optimizer configuration: everything that shapes the
/// search besides the database, mappings and function registry.
#[derive(Debug, Clone)]
pub struct OptimizerConfig {
    /// Network profile the cost model charges round trips / transfer against.
    pub network: NetworkProfile,
    /// Tunable cost-model parameters (§VI's cost catalog file).
    pub catalog: CostCatalog,
    /// The transformation rules the search explores.
    pub rules: RuleSet,
    /// Bounds on search effort.
    pub budget: SearchBudget,
    /// Per-search cost memoization (`volcano::CostMemo`); memoized and
    /// un-memoized searches return bit-identical costs.
    pub memoize_costs: bool,
    /// Fingerprint-keyed whole-plan estimate caching
    /// (`minidb::EstimateCache`), shared across every search and batch
    /// worker of one `Cobra`. Cached and uncached estimation are
    /// bit-identical; the toggle exists for benchmarking and for the
    /// equivalence suite asserting exactly that.
    pub cache_estimates: bool,
    /// Histogram/statistics-interpolated selectivity estimation (default
    /// on). Off reproduces the uniform-NDV baseline — fixed 1/3 range
    /// selectivity, null-blind 1/NDV equality — kept for ablations and
    /// for measuring how much the adaptive statistics help.
    pub use_histograms: bool,
    /// Which server-side execution engine sessions built from this
    /// configuration run plans on (columnar by default; the row engine is
    /// the bit-identical differential baseline). Surfaced in
    /// [`crate::OptimizationReport`] so experiment output names the data
    /// plane it measured.
    pub exec_engine: ExecEngine,
    /// Runtime-validated plan selection ([`crate::ValidationConfig`]):
    /// extract the top-k candidates, micro-measure them, and promote the
    /// measured winner. `None` (the default) keeps selection cost-only
    /// and bit-identical to historical output.
    pub validation: Option<crate::validation::ValidationConfig>,
    /// Static verification of every rule-produced alternative
    /// (`crates/analysis`: well-formedness, effect soundness, binding
    /// leaks). [`VerifyLevel::Off`] (the default) skips verification
    /// entirely and is bit-identical to historical output.
    pub verify_rewrites: VerifyLevel,
}

/// How the optimizer reacts to a statically unsound rewrite (see
/// `crates/analysis`): not at all, by aborting, or by dropping the
/// offending alternative.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerifyLevel {
    /// No verification (default); output bit-identical to pre-verifier
    /// releases.
    #[default]
    Off,
    /// Verify and panic on the first unsound alternative — for tests,
    /// fuzzing and debug builds, where an unsound rule is a bug to
    /// surface loudly.
    Panic,
    /// Verify, drop unsound alternatives from the search space, record
    /// their diagnostics, and tag the result `verifier-rejected` in the
    /// [`crate::OptimizationReport`] — for serving, where one bad rule
    /// must not take the process down.
    Reject,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            network: NetworkProfile::fast_local(),
            catalog: CostCatalog::default(),
            rules: RuleSet::standard(),
            budget: SearchBudget::default(),
            memoize_costs: true,
            cache_estimates: true,
            use_histograms: true,
            exec_engine: ExecEngine::default(),
            validation: None,
            verify_rewrites: VerifyLevel::Off,
        }
    }
}

/// Builder for [`Cobra`]: owns the database handle, ORM mappings,
/// function registry and an [`OptimizerConfig`].
///
/// The database is the only required input ([`Cobra::builder`] takes it),
/// so [`CobraBuilder::build`] is infallible. Defaults: empty mappings,
/// builtin functions, [`OptimizerConfig::default`].
#[derive(Clone)]
pub struct CobraBuilder {
    db: minidb::SharedDb,
    funcs: Arc<FuncRegistry>,
    mappings: MappingRegistry,
    config: OptimizerConfig,
    feedback: Option<Arc<minidb::FeedbackStore>>,
}

impl CobraBuilder {
    /// Start a builder over a shared database handle.
    pub fn new(db: minidb::SharedDb) -> CobraBuilder {
        CobraBuilder {
            db,
            funcs: Arc::new(FuncRegistry::with_builtins()),
            mappings: MappingRegistry::new(),
            config: OptimizerConfig::default(),
            feedback: None,
        }
    }

    /// Replace the database handle, keeping mappings, functions and the
    /// rest of the configuration. The handle is adopted **as is** — no
    /// re-wrapping into a fresh `Arc<RwLock<_>>` — so optimizers built
    /// from the same `SharedDb` share one database: concurrent server
    /// sessions see each other's writes and their estimate caches stamp
    /// against the same `Database::instance_id`. This is what lets one
    /// pre-configured builder serve as a template across tenants that
    /// differ only in their database.
    pub fn db(mut self, db: minidb::SharedDb) -> CobraBuilder {
        self.db = db;
        self
    }

    /// Network profile to cost against (default: fast local).
    pub fn network(mut self, network: NetworkProfile) -> CobraBuilder {
        self.config.network = network;
        self
    }

    /// Cost catalog (default: the paper's Figure 12 values).
    pub fn catalog(mut self, catalog: CostCatalog) -> CobraBuilder {
        self.config.catalog = catalog;
        self
    }

    /// ORM entity mappings (default: empty registry).
    pub fn mappings(mut self, mappings: MappingRegistry) -> CobraBuilder {
        self.mappings = mappings;
        self
    }

    /// Function registry for application-specific pure functions
    /// (default: builtins only).
    pub fn funcs(mut self, funcs: Arc<FuncRegistry>) -> CobraBuilder {
        self.funcs = funcs;
        self
    }

    /// The transformation rules to explore (default:
    /// [`RuleSet::standard`]).
    pub fn rules(mut self, rules: RuleSet) -> CobraBuilder {
        self.config.rules = rules;
        self
    }

    /// Disable one rule by name, keeping the rest of the current rule set
    /// (unknown names are ignored).
    pub fn disable_rule(mut self, name: &str) -> CobraBuilder {
        self.config.rules.disable(name);
        self
    }

    /// Enable one rule by name (unknown names are ignored).
    pub fn enable_rule(mut self, name: &str) -> CobraBuilder {
        self.config.rules.enable(name);
        self
    }

    /// Search budget (default: [`SearchBudget::default`]).
    pub fn budget(mut self, budget: SearchBudget) -> CobraBuilder {
        self.config.budget = budget;
        self
    }

    /// Enable or disable per-search cost memoization (default: on).
    pub fn memoize_costs(mut self, on: bool) -> CobraBuilder {
        self.config.memoize_costs = on;
        self
    }

    /// Enable or disable fingerprint-keyed estimate caching (default:
    /// on). Cached and uncached searches return bit-identical results.
    pub fn cache_estimates(mut self, on: bool) -> CobraBuilder {
        self.config.cache_estimates = on;
        self
    }

    /// Enable or disable histogram-interpolated selectivity estimation
    /// (default: on). Off reproduces the uniform-NDV baseline estimator.
    pub fn histograms(mut self, on: bool) -> CobraBuilder {
        self.config.use_histograms = on;
        self
    }

    /// Statically verify every rule-produced alternative (default:
    /// [`VerifyLevel::Off`]). [`VerifyLevel::Panic`] aborts on the first
    /// unsound rewrite; [`VerifyLevel::Reject`] drops it from the search
    /// space and tags the report `verifier-rejected`.
    pub fn verify_rewrites(mut self, level: VerifyLevel) -> CobraBuilder {
        self.config.verify_rewrites = level;
        self
    }

    /// Select the execution engine (default: [`ExecEngine::Columnar`]).
    /// The row engine is kept as the differential baseline; both produce
    /// bit-identical results and work accounting.
    pub fn engine(mut self, engine: ExecEngine) -> CobraBuilder {
        self.config.exec_engine = engine;
        self
    }

    /// Enable runtime-validated plan selection: extract the
    /// `ValidationConfig::top_k` cheapest structurally distinct programs,
    /// micro-measure them by timed execution on a `row_scale`-shrunk copy
    /// of the database (or accept the ranking outright when fresh
    /// feedback observations already back every candidate's queries), and
    /// emit the measured winner. Disabled by default; selection then
    /// stays cost-only and bit-identical to historical output.
    pub fn validate_selection(
        mut self,
        validation: crate::validation::ValidationConfig,
    ) -> CobraBuilder {
        self.config.validation = Some(validation);
        self
    }

    /// Attach a runtime-feedback store: the optimizer's estimator prefers
    /// cardinalities observed by execution (recorded via
    /// `RemoteDb::with_feedback` / `Executor::with_feedback`) over
    /// histogram guesses, and `Cobra::reoptimize_on_drift` re-optimizes
    /// when estimates have drifted from observation.
    pub fn feedback(mut self, feedback: Arc<minidb::FeedbackStore>) -> CobraBuilder {
        self.feedback = Some(feedback);
        self
    }

    /// Replace the whole configuration at once.
    pub fn config(mut self, config: OptimizerConfig) -> CobraBuilder {
        self.config = config;
        self
    }

    /// Build the optimizer.
    pub fn build(self) -> Cobra {
        Cobra::from_parts(
            self.db,
            self.funcs,
            self.mappings,
            self.config,
            self.feedback,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_budget_matches_legacy_constant() {
        let b = SearchBudget::default();
        assert_eq!(b.max_alternatives_per_region, 64);
        assert_eq!(b.max_memo_groups, None);
        assert_eq!(b.max_memo_exprs, None);
        assert_eq!(b.max_search_sweeps, None);
    }

    #[test]
    fn budget_setters_chain() {
        let b = SearchBudget::unbounded()
            .with_max_memo_groups(10)
            .with_max_memo_exprs(20)
            .with_max_search_sweeps(3);
        assert_eq!(b.max_alternatives_per_region, usize::MAX);
        assert!(b.memo_has_room(9, 19));
        assert!(!b.memo_has_room(10, 0));
        assert!(!b.memo_has_room(0, 20));
    }

    #[test]
    fn builder_applies_config_knobs() {
        let db = minidb::shared(minidb::Database::new());
        let cobra = Cobra::builder(db)
            .network(NetworkProfile::slow_remote())
            .catalog(CostCatalog::with_af(7.0))
            .disable_rule("T4")
            .budget(SearchBudget::default().with_max_memo_exprs(100))
            .memoize_costs(false)
            .engine(ExecEngine::Row)
            .build();
        assert_eq!(cobra.network().name(), NetworkProfile::slow_remote().name());
        assert_eq!(cobra.catalog().default_af, 7.0);
        assert!(!cobra.rules().is_enabled("T4"));
        assert!(cobra.rules().is_enabled("T2"));
        assert_eq!(cobra.budget().max_memo_exprs, Some(100));
        assert!(!cobra.config().memoize_costs);
        assert_eq!(cobra.config().exec_engine, ExecEngine::Row);
    }

    #[test]
    fn engine_defaults_to_columnar() {
        let cfg = OptimizerConfig::default();
        assert_eq!(cfg.exec_engine, ExecEngine::Columnar);
    }
}
