//! Runtime-validated plan selection: trust, but verify.
//!
//! The cost model ranks the memo's alternatives, but cost models are
//! famously weak *selectors* — a predicted ranking can invert the real
//! one. When validation is enabled
//! ([`crate::CobraBuilder::validate_selection`]), the optimizer extracts
//! the k cheapest structurally distinct programs
//! ([`volcano::top_k_plans`]) and settles the ranking empirically:
//!
//! * **Micro-execution.** Each candidate is executed on a `row_scale`-
//!   shrunk copy of the live database (FK validity preserved — see
//!   `shrunk_database`) under the optimizer's own network profile and
//!   execution engine, and its simulated elapsed time is the measurement.
//!   All candidates run on the *same* fixture, so measurements are
//!   mutually comparable (they are never compared against full-scale
//!   predicted costs, which live on a different data scale).
//! * **Feedback shortcut.** When a [`minidb::FeedbackStore`] is attached
//!   and *every* query of *every* candidate has a fresh observation
//!   (exact-shape or semantic, at the current data stamp), the predicted
//!   costs are already observation-informed — execution would add noise,
//!   not information — so the predicted ranking is accepted as measured.
//!
//! Promotion is conservative: the measured winner replaces the predicted
//! one only when the predicted winner was itself measured and the winner
//! beats it by at least `min_speedup`. Execution errors leave a candidate
//! unmeasured and unpromotable, and the predicted winner is always the
//! fallback — with validation disabled (the default) the optimizer's
//! output is bit-identical to cost-only selection.

use crate::emit;
use crate::region_ops::RegionOp;
use imperative::ast::{Expr, Function, Program, Stmt, StmtKind};
use interp::{Interp, InterpConfig};
use minidb::{feedback::semantic_key, Database, ExecEngine, FuncRegistry, PlanFingerprint, Row};
use netsim::{Clock, NetworkProfile};
use orm::{MappingRegistry, RemoteDb, Session};

use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;

/// Knobs for runtime-validated plan selection
/// ([`crate::CobraBuilder::validate_selection`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationConfig {
    /// How many of the cheapest structurally distinct candidates to
    /// extract and measure. `1` keeps extraction cost-only (validation is
    /// inert); default 3.
    pub top_k: usize,
    /// Fraction of each table's rows the micro-validation fixture keeps
    /// (floor one row per non-empty table). Default 0.05.
    pub row_scale: f64,
    /// Minimum measured speedup (predicted winner's time divided by the
    /// challenger's) required to promote a challenger. Guards against
    /// promoting on measurement jitter. Default 1.02.
    pub min_speedup: f64,
    /// Accept the predicted ranking without execution when every
    /// candidate's queries have fresh [`minidb::FeedbackStore`]
    /// observations (default true).
    pub use_feedback: bool,
}

impl Default for ValidationConfig {
    fn default() -> Self {
        ValidationConfig {
            top_k: 3,
            row_scale: 0.05,
            min_speedup: 1.02,
            use_feedback: true,
        }
    }
}

impl ValidationConfig {
    /// Set the number of candidates to extract and measure.
    pub fn with_top_k(mut self, k: usize) -> ValidationConfig {
        self.top_k = k;
        self
    }

    /// Set the micro-fixture row scale.
    pub fn with_row_scale(mut self, scale: f64) -> ValidationConfig {
        self.row_scale = scale;
        self
    }

    /// Set the promotion threshold.
    pub fn with_min_speedup(mut self, speedup: f64) -> ValidationConfig {
        self.min_speedup = speedup;
        self
    }

    /// Enable or disable the fresh-feedback shortcut.
    pub fn with_use_feedback(mut self, on: bool) -> ValidationConfig {
        self.use_feedback = on;
        self
    }
}

/// How a validated selection was decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValidationSource {
    /// Candidates were executed on the shrunk fixture.
    Execution,
    /// Every candidate's queries had fresh feedback observations; the
    /// (observation-informed) predicted ranking was accepted.
    Feedback,
}

/// One candidate's predicted and measured standing.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidatedCandidate {
    /// Rank by predicted cost (0 = the cost model's pick).
    pub predicted_rank: usize,
    /// Predicted cost, ns (full-scale model estimate).
    pub predicted_cost_ns: f64,
    /// Measured simulated time on the shrunk fixture, ns; `None` when the
    /// candidate was not executed (feedback shortcut or execution error).
    pub measured_ns: Option<f64>,
    /// Rank by measured time among measured candidates; `None` when
    /// unmeasured.
    pub measured_rank: Option<usize>,
}

/// The record of one validated selection, attached to
/// [`crate::Optimized::validation`].
#[derive(Debug, Clone, PartialEq)]
pub struct SelectionValidation {
    /// Row scale of the micro-fixture candidates ran on.
    pub row_scale: f64,
    /// How the decision was made.
    pub source: ValidationSource,
    /// Per-candidate predicted vs measured standing, in predicted order.
    pub candidates: Vec<ValidatedCandidate>,
    /// Predicted rank of the candidate that was ultimately emitted
    /// (0 = the cost model's pick was kept).
    pub promoted_rank: usize,
    /// Whether measurement agreed with prediction (the measured winner
    /// was the predicted winner; vacuously true without measurements).
    pub agreement: bool,
}

/// Everything validation needs from the optimizer (borrowed; the fields
/// mirror [`crate::Cobra`]'s).
pub(crate) struct ValidationContext<'a> {
    pub db: &'a minidb::SharedDb,
    pub funcs: &'a Arc<FuncRegistry>,
    pub mappings: &'a MappingRegistry,
    pub network: &'a NetworkProfile,
    pub engine: ExecEngine,
    pub feedback: Option<&'a Arc<minidb::FeedbackStore>>,
}

/// Validate `plans` (predicted order, cheapest first) and decide which
/// one to emit. See the module docs for the decision procedure.
pub(crate) fn validate_selection(
    ctx: &ValidationContext<'_>,
    program: &Program,
    entry_name: &str,
    entry_params: &[String],
    plans: &[volcano::BestPlan<RegionOp>],
    cfg: &ValidationConfig,
) -> SelectionValidation {
    let functions: Vec<Function> = plans
        .iter()
        .map(|p| emit::emit_function(entry_name, entry_params, &p.tree))
        .collect();

    let mut candidates: Vec<ValidatedCandidate> = plans
        .iter()
        .enumerate()
        .map(|(i, p)| ValidatedCandidate {
            predicted_rank: i,
            predicted_cost_ns: p.cost,
            measured_ns: None,
            measured_rank: None,
        })
        .collect();

    // Feedback shortcut: with fresh observations behind every candidate's
    // queries, the predicted costs already carry measured cardinalities.
    if cfg.use_feedback {
        if let Some(store) = ctx.feedback {
            let db = ctx.db.read().unwrap();
            if functions.iter().all(|f| all_queries_fresh(&db, store, f)) {
                return SelectionValidation {
                    row_scale: cfg.row_scale,
                    source: ValidationSource::Feedback,
                    candidates,
                    promoted_rank: 0,
                    agreement: true,
                };
            }
        }
    }

    // Micro-execution: one shrunk fixture, every candidate on its own
    // fresh copy (update statements must not leak between runs).
    let base = shrunk_database(&ctx.db.read().unwrap(), ctx.mappings, cfg.row_scale);
    for (i, f) in functions.iter().enumerate() {
        let run = program.with_entry(f.clone());
        candidates[i].measured_ns = measure(ctx, &base, &run);
    }

    // Measured ranks (ties broken by predicted rank — determinism).
    let mut measured: Vec<usize> = (0..candidates.len())
        .filter(|&i| candidates[i].measured_ns.is_some())
        .collect();
    measured.sort_by(|&a, &b| {
        candidates[a]
            .measured_ns
            .unwrap()
            .total_cmp(&candidates[b].measured_ns.unwrap())
            .then(a.cmp(&b))
    });
    for (rank, &i) in measured.iter().enumerate() {
        candidates[i].measured_rank = Some(rank);
    }

    let winner = measured.first().copied();
    let promoted_rank = match winner {
        // Promote a challenger only when the predicted winner was itself
        // measured and the challenger clears the speedup bar.
        Some(w) if w != 0 => match (candidates[0].measured_ns, candidates[w].measured_ns) {
            (Some(base_ns), Some(win_ns)) if base_ns / win_ns >= cfg.min_speedup => w,
            _ => 0,
        },
        _ => 0,
    };
    SelectionValidation {
        row_scale: cfg.row_scale,
        source: ValidationSource::Execution,
        agreement: winner.unwrap_or(0) == 0,
        candidates,
        promoted_rank,
    }
}

/// Execute `program` against a fresh copy of `base` and return its
/// simulated elapsed time, ns. `None` on any execution error — an
/// unmeasured candidate can never be promoted.
fn measure(ctx: &ValidationContext<'_>, base: &Database, program: &Program) -> Option<f64> {
    let shared = minidb::shared(base.clone());
    let clock = Arc::new(Clock::new());
    let remote = Arc::new(
        RemoteDb::new(shared, ctx.funcs.clone(), ctx.network.clone(), clock)
            .with_engine(ctx.engine),
    );
    let session = Session::new(remote, Arc::new(ctx.mappings.clone()));
    Interp::new(&session, program)
        .with_config(InterpConfig::default())
        .run(vec![])
        .ok()
        .map(|outcome| outcome.elapsed_ns as f64)
}

/// Whether every query `f` can issue has a fresh observation (exact shape
/// or semantic sibling) at the current data stamp. Query-free candidates
/// have nothing feedback could validate, so they report `false` and force
/// the execution path.
fn all_queries_fresh(db: &Database, store: &minidb::FeedbackStore, f: &Function) -> bool {
    let mut plans = Vec::new();
    collect_plans(&f.body, &mut plans);
    !plans.is_empty()
        && plans.iter().all(|p| {
            let stamp = db.plan_data_stamp(p);
            store
                .observed_fresh(PlanFingerprint::of(p), stamp)
                .or_else(|| store.observed_semantic(semantic_key(p), stamp))
                .is_some()
        })
}

/// Every logical plan reachable from `stmts` (queries in any expression
/// position).
fn collect_plans(stmts: &[Stmt], out: &mut Vec<minidb::LogicalPlan>) {
    fn expr(e: &Expr, out: &mut Vec<minidb::LogicalPlan>) {
        match e {
            Expr::Query(q) | Expr::ScalarQuery(q) => {
                out.push(q.plan.as_plan().clone());
                for (_, b) in &q.binds {
                    expr(b, out);
                }
            }
            Expr::Bin(_, l, r) => {
                expr(l, out);
                expr(r, out);
            }
            Expr::Not(e) | Expr::Len(e) => expr(e, out),
            Expr::Field(b, _) | Expr::Nav(b, _) => expr(b, out),
            Expr::Call(_, args) => args.iter().for_each(|a| expr(a, out)),
            Expr::LookupCache(_, k) => expr(k, out),
            Expr::MapGet(m, k) => {
                expr(m, out);
                expr(k, out);
            }
            Expr::Var(_) | Expr::Lit(_) | Expr::LoadAll(_) => {}
        }
    }
    for s in stmts {
        match &s.kind {
            StmtKind::Let(_, e) | StmtKind::Add(_, e) | StmtKind::Print(e) => expr(e, out),
            StmtKind::Put(_, k, v) => {
                expr(k, out);
                expr(v, out);
            }
            StmtKind::ForEach { iter, .. } => expr(iter, out),
            StmtKind::While { cond, .. } | StmtKind::If { cond, .. } => expr(cond, out),
            StmtKind::Return(Some(e)) => expr(e, out),
            StmtKind::CacheByColumn { source, .. } => expr(source, out),
            StmtKind::UpdateQuery { value, key, .. } => {
                expr(value, out);
                expr(key, out);
            }
            StmtKind::LetCall(_, _, args) => args.iter().for_each(|a| expr(a, out)),
            StmtKind::Return(None)
            | StmtKind::NewCollection(_)
            | StmtKind::NewMap(_)
            | StmtKind::Break
            | StmtKind::TryCatch { .. } => {}
        }
        for list in s.children() {
            collect_plans(list, out);
        }
    }
}

/// A `row_scale`-shrunk copy of `src` that preserves referential
/// integrity: each table keeps a prefix of its rows (floor one row per
/// non-empty table), and any foreign-key value whose referenced parent
/// row was dropped is deterministically remapped onto a *surviving*
/// parent key (FK relationships come from the ORM `MappingRegistry`).
/// Primary keys and secondary indexes are recreated and statistics are
/// re-analyzed, so the shrunk database plans and executes like a real,
/// smaller instance of the original.
pub(crate) fn shrunk_database(
    src: &Database,
    mappings: &MappingRegistry,
    row_scale: f64,
) -> Database {
    let scale = if row_scale.is_finite() && row_scale > 0.0 {
        row_scale.min(1.0)
    } else {
        1.0
    };
    // Phase 1: per-table prefix.
    let mut kept: BTreeMap<String, Vec<Row>> = BTreeMap::new();
    for t in src.tables() {
        let n = t.row_count();
        let keep = (((n as f64) * scale).ceil() as usize).clamp(usize::from(n > 0), n);
        kept.insert(t.name().to_string(), t.rows()[..keep].to_vec());
    }
    // Phase 2: remap FK values onto surviving parent keys. Runs after
    // every prefix is fixed, so parent/child declaration order is
    // irrelevant.
    for m in mappings.iter() {
        for assoc in &m.associations {
            let Some(target) = mappings.entity(&assoc.target_entity) else {
                continue;
            };
            let (Ok(child), Ok(parent)) = (src.table(&m.table), src.table(&target.table)) else {
                continue;
            };
            let Ok(fk_pos) = child.schema().resolve(&assoc.fk_column) else {
                continue;
            };
            let Some(pk_pos) = parent.primary_key() else {
                continue;
            };
            let surviving: Vec<i64> = kept
                .get(&target.table)
                .map(|rows| rows.iter().filter_map(|r| r[pk_pos].as_i64()).collect())
                .unwrap_or_default();
            if surviving.is_empty() {
                continue;
            }
            let present: HashSet<i64> = surviving.iter().copied().collect();
            if let Some(rows) = kept.get_mut(&m.table) {
                for row in rows {
                    if let Some(v) = row[fk_pos].as_i64() {
                        if !present.contains(&v) {
                            let idx = (v.unsigned_abs() as usize) % surviving.len();
                            row[fk_pos] = minidb::Value::Int(surviving[idx]);
                        }
                    }
                }
            }
        }
    }
    // Phase 3: rebuild the catalog — schema, primary keys and secondary
    // indexes as in the source — and refresh statistics.
    let mut out = Database::new();
    for t in src.tables() {
        let table = out
            .create_table(t.name(), t.schema().clone())
            .expect("source table names are unique");
        if let Some(pk) = t.primary_key() {
            let name = t.schema().column(pk).name.clone();
            table.set_primary_key(&name).expect("pk column exists");
        }
        for col in 0..t.schema().len() {
            if t.has_index(col) && t.primary_key() != Some(col) {
                let name = t.schema().column(col).name.clone();
                table.create_index(&name).expect("indexed column exists");
            }
        }
        table
            .insert_many(kept.remove(t.name()).unwrap_or_default())
            .expect("kept rows match the schema");
    }
    out.analyze_all();
    out
}
