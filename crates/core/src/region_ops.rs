//! Region operators: the AND-node vocabulary of the Region DAG (§IV-B).
//!
//! OR nodes (volcano groups) represent "all alternative ways to perform
//! the computation in a region"; AND nodes are these operators combining
//! sub-regions, mirroring Figure 6: `seq`, `cond`, `loop`, plus leaf basic
//! blocks and black boxes for unstructured fragments.

use imperative::ast::{Expr, Stmt, StmtKind};
use imperative::regions::{Region, RegionKind};
use volcano::OpTree;

/// One region operator.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RegionOp {
    /// Sequential composition of `n` sub-regions.
    Seq(usize),
    /// Conditional: children are `[then, else]`.
    Cond { cond: Expr },
    /// Cursor loop: the single child is the body region.
    Loop { var: String, iter: Expr },
    /// While loop: the single child is the body region.
    While { cond: Expr },
    /// A basic block — one simple statement (footnote 4 of the paper).
    Leaf(Stmt),
    /// An unstructured fragment kept verbatim (§IV-B).
    BlackBox(Vec<Stmt>),
    /// The empty region.
    Empty,
}

/// Convert a region tree into an operator tree insertable into the memo.
pub fn region_to_optree(region: &Region) -> OpTree<RegionOp> {
    match &region.kind {
        RegionKind::Block(stmt) => OpTree::leaf(RegionOp::Leaf(stmt.clone())),
        RegionKind::Seq(children) => OpTree::node(
            RegionOp::Seq(children.len()),
            children.iter().map(region_to_optree).collect(),
        ),
        RegionKind::Cond {
            cond,
            then_r,
            else_r,
        } => OpTree::node(
            RegionOp::Cond { cond: cond.clone() },
            vec![region_to_optree(then_r), region_to_optree(else_r)],
        ),
        RegionKind::Loop { var, iter, body } => OpTree::node(
            RegionOp::Loop {
                var: var.clone(),
                iter: iter.clone(),
            },
            vec![region_to_optree(body)],
        ),
        RegionKind::WhileLoop { cond, body } => OpTree::node(
            RegionOp::While { cond: cond.clone() },
            vec![region_to_optree(body)],
        ),
        RegionKind::BlackBox(stmts) => OpTree::leaf(RegionOp::BlackBox(stmts.clone())),
        RegionKind::Empty => OpTree::leaf(RegionOp::Empty),
    }
}

/// Reconstruct statements from an extracted operator tree (all children
/// are inline trees after plan extraction).
pub fn optree_to_stmts(tree: &OpTree<RegionOp>) -> Vec<Stmt> {
    fn child_stmts(tree: &OpTree<RegionOp>, i: usize) -> Vec<Stmt> {
        match &tree.children[i] {
            volcano::Child::Tree(t) => optree_to_stmts(t),
            volcano::Child::Group(g) => {
                unreachable!("extracted plans have no group references (g{g})")
            }
        }
    }
    match &tree.op {
        RegionOp::Leaf(stmt) => vec![stmt.clone()],
        RegionOp::Seq(n) => (0..*n).flat_map(|i| child_stmts(tree, i)).collect(),
        RegionOp::Cond { cond } => vec![Stmt::new(StmtKind::If {
            cond: cond.clone(),
            then_branch: child_stmts(tree, 0),
            else_branch: child_stmts(tree, 1),
        })],
        RegionOp::Loop { var, iter } => vec![Stmt::new(StmtKind::ForEach {
            var: var.clone(),
            iter: iter.clone(),
            body: child_stmts(tree, 0),
        })],
        RegionOp::While { cond } => vec![Stmt::new(StmtKind::While {
            cond: cond.clone(),
            body: child_stmts(tree, 0),
        })],
        RegionOp::BlackBox(stmts) => stmts.clone(),
        RegionOp::Empty => Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imperative::regions::Region;

    fn p0_like() -> Vec<Stmt> {
        vec![
            Stmt::new(StmtKind::NewCollection("result".into())),
            Stmt::new(StmtKind::ForEach {
                var: "o".into(),
                iter: Expr::LoadAll("Order".into()),
                body: vec![
                    Stmt::new(StmtKind::Let(
                        "cust".into(),
                        Expr::nav(Expr::var("o"), "customer"),
                    )),
                    Stmt::new(StmtKind::Add("result".into(), Expr::var("cust"))),
                ],
            }),
        ]
    }

    #[test]
    fn region_round_trips_through_optree() {
        let stmts = p0_like();
        let region = Region::from_stmts(&stmts);
        let tree = region_to_optree(&region);
        let back = optree_to_stmts(&tree);
        assert_eq!(back, stmts);
    }

    #[test]
    fn conditional_and_while_round_trip() {
        let stmts = vec![Stmt::new(StmtKind::If {
            cond: Expr::lit(true),
            then_branch: vec![Stmt::new(StmtKind::While {
                cond: Expr::lit(false),
                body: vec![Stmt::new(StmtKind::Break)],
            })],
            else_branch: vec![],
        })];
        let region = Region::from_stmts(&stmts);
        let back = optree_to_stmts(&region_to_optree(&region));
        assert_eq!(back, stmts);
    }

    #[test]
    fn black_box_round_trips_verbatim() {
        let stmts = vec![Stmt::new(StmtKind::TryCatch {
            body: vec![Stmt::new(StmtKind::Print(Expr::lit(1i64)))],
            handler: vec![Stmt::new(StmtKind::Print(Expr::lit(2i64)))],
        })];
        let region = Region::from_stmts(&stmts);
        let tree = region_to_optree(&region);
        assert!(matches!(tree.op, RegionOp::BlackBox(_)));
        assert_eq!(optree_to_stmts(&tree), stmts);
    }

    #[test]
    fn memo_shares_identical_leaves_across_alternatives() {
        // Figure 6c: P0.B2 is represented once although three programs use
        // it.
        let mut memo: volcano::Memo<RegionOp> = volcano::Memo::new();
        let stmts = p0_like();
        let region = Region::from_stmts(&stmts);
        let root = memo.insert_tree(&region_to_optree(&region), None);
        // An alternative with the same first block but a different loop.
        let alt_stmts = vec![
            stmts[0].clone(),
            Stmt::new(StmtKind::Let(
                "result".into(),
                Expr::Query(imperative::ast::QuerySpec::sql("select * from orders")),
            )),
        ];
        let alt = Region::from_stmts(&alt_stmts);
        memo.insert_tree(&region_to_optree(&alt), Some(root));
        let leaf_count = memo
            .expr_ids()
            .filter(|&i| {
                matches!(memo.expr(i).op, RegionOp::Leaf(ref s)
                    if matches!(s.kind, StmtKind::NewCollection(_)))
            })
            .count();
        assert_eq!(leaf_count, 1, "shared basic block stored once");
        assert_eq!(memo.group(root).len(), 2);
    }
}
