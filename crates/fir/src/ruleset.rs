//! First-class transformation rules: a named, toggleable rule registry.
//!
//! COBRA's contract (Figure 1) is *program + transformation rules + cost
//! model → least-cost program*. This module makes the middle input a real
//! API object: every F-IR transformation (T1–T5, N1, N2) is a named
//! [`Rule`], and a [`RuleSet`] is the registry the closure driver
//! [`expand_with`] consults. Rules can be disabled for ablation studies,
//! per-tenant configurations, or debugging, and user rules can be
//! registered alongside the standard set.
//!
//! Rule T3 (pushing scalar functions into query projections) has no
//! registry entry: it is subsumed by the F-IR ⇄ SQL expression translation
//! that T2/T5 perform and cannot fire (or be disabled) on its own.
//!
//! The registry's iteration order **is** the exploration order of the
//! closure driver; [`RuleSet::standard`] lists the rules in the order the
//! legacy hard-coded driver applied them, so results are reproducible
//! across releases.

use crate::arena::{FirArena, FirId, FirNode};
use crate::build::FirAlternative;
use crate::rules;
use std::sync::Arc;

/// Rewrite callback over a whole alternative (may derive several).
pub type AlternativeFn = dyn Fn(&FirAlternative) -> Vec<FirAlternative> + Send + Sync;
/// Rewrite callback tried at every reachable fold node. Returns the
/// replacement node and the rule tag recorded in
/// [`FirAlternative::rules_applied`].
pub type FoldLocalFn =
    dyn Fn(&mut FirArena, FirId) -> Option<(FirNode, &'static str)> + Send + Sync;

/// How (part of) a rule rewrites alternatives.
#[derive(Clone)]
pub enum RuleAction {
    /// Applies to the whole alternative (T1, T5, N1).
    Alternative(Arc<AlternativeFn>),
    /// Applies at each fold node reachable from the alternative's
    /// assignments (T2, N2, T4).
    FoldLocal(Arc<FoldLocalFn>),
    /// Implemented outside the F-IR closure engine; the embedding
    /// optimizer consults [`RuleSet::is_enabled`] by name (procedure
    /// inlining, statement-level prefetching).
    External,
}

/// The side effects a rule is *allowed* to add to an alternative, checked
/// by the static rewrite verifier (`crates/analysis`).
///
/// A sound rewrite preserves the base alternative's observable effects:
/// same tables read, same variables written, same scalar functions
/// invoked. Some rules legitimately deviate — N1 adds prefetch reads, T5
/// wraps aggregates in `coalesce` — and declare that here. Everything not
/// declared is a verification error, so an undeclared deviation (a rule
/// that drops a write, steals rows with a `LIMIT`, or reads a new table)
/// is rejected statically before the oracle ever executes it.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct EffectDelta {
    /// The rewrite may read tables the base did not (N1's prefetches).
    pub may_add_reads: bool,
    /// The rewrite may stop reading tables the base read.
    pub may_drop_reads: bool,
    /// Scalar functions the rewrite may introduce (T5's `coalesce` guard
    /// around empty aggregates).
    pub may_introduce_calls: Vec<&'static str>,
}

impl EffectDelta {
    /// Delta for rules that add reads (prefetching).
    pub fn adds_reads() -> EffectDelta {
        EffectDelta {
            may_add_reads: true,
            ..EffectDelta::default()
        }
    }

    /// Delta for rules that introduce the named scalar calls.
    pub fn introduces_calls(calls: &[&'static str]) -> EffectDelta {
        EffectDelta {
            may_introduce_calls: calls.to_vec(),
            ..EffectDelta::default()
        }
    }

    /// Fold `other`'s allowances into `self` (union of permissions).
    pub fn union_with(&mut self, other: &EffectDelta) {
        self.may_add_reads |= other.may_add_reads;
        self.may_drop_reads |= other.may_drop_reads;
        for call in &other.may_introduce_calls {
            if !self.may_introduce_calls.contains(call) {
                self.may_introduce_calls.push(call);
            }
        }
    }
}

/// A named transformation rule: one of the paper's T/N rules or a
/// user-registered extension.
///
/// A rule may carry several [`RuleAction`]s (rule T4 covers both the
/// lookup-to-join and the nested-fold-to-join rewrite); enabling or
/// disabling the rule toggles all of them together.
#[derive(Clone)]
pub struct Rule {
    name: &'static str,
    description: &'static str,
    actions: Vec<RuleAction>,
    effects: EffectDelta,
}

impl Rule {
    /// A rule rewriting whole alternatives.
    pub fn alternative(
        name: &'static str,
        description: &'static str,
        f: impl Fn(&FirAlternative) -> Vec<FirAlternative> + Send + Sync + 'static,
    ) -> Rule {
        Rule {
            name,
            description,
            actions: vec![RuleAction::Alternative(Arc::new(f))],
            effects: EffectDelta::default(),
        }
    }

    /// A rule rewriting individual fold nodes.
    pub fn fold_local(
        name: &'static str,
        description: &'static str,
        f: impl Fn(&mut FirArena, FirId) -> Option<(FirNode, &'static str)> + Send + Sync + 'static,
    ) -> Rule {
        Rule {
            name,
            description,
            actions: vec![RuleAction::FoldLocal(Arc::new(f))],
            effects: EffectDelta::default(),
        }
    }

    /// A rule implemented outside the F-IR engine, consulted by name.
    pub fn external(name: &'static str, description: &'static str) -> Rule {
        Rule {
            name,
            description,
            actions: vec![RuleAction::External],
            effects: EffectDelta::default(),
        }
    }

    /// Add a further action to this rule (builder style).
    pub fn with_action(mut self, action: RuleAction) -> Rule {
        self.actions.push(action);
        self
    }

    /// Declare the effect deviations this rule is allowed to introduce
    /// (builder style). Undeclared deviations are rejected by the static
    /// verifier when `OptimizerConfig::verify_rewrites` is on.
    pub fn with_effects(mut self, effects: EffectDelta) -> Rule {
        self.effects = effects;
        self
    }

    /// The rule's declared effect allowances.
    pub fn effects(&self) -> &EffectDelta {
        &self.effects
    }

    /// The rule's name (`"T1"` … `"N2"`, or a user-chosen name).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One-line description of what the rule does.
    pub fn description(&self) -> &'static str {
        self.description
    }

    /// The rule's rewrite actions.
    pub fn actions(&self) -> &[RuleAction] {
        &self.actions
    }
}

impl std::fmt::Debug for Rule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rule")
            .field("name", &self.name)
            .field("description", &self.description)
            .field("actions", &self.actions.len())
            .finish()
    }
}

/// The registry of transformation rules the optimizer explores, with
/// per-rule enable/disable toggles.
///
/// ```
/// use fir::RuleSet;
///
/// let mut rules = RuleSet::standard();
/// assert!(rules.is_enabled("N1"));
/// rules.disable("N1"); // ablate prefetching
/// assert!(!rules.is_enabled("N1"));
/// ```
#[derive(Clone, Default)]
pub struct RuleSet {
    rules: Vec<(Rule, bool)>,
}

impl RuleSet {
    /// An empty registry (no transformations; the optimizer can only keep
    /// programs as written).
    pub fn empty() -> RuleSet {
        RuleSet { rules: Vec::new() }
    }

    /// The paper's standard rule set: T1–T5 and N1/N2, plus the `inline`
    /// rule (procedure inlining, the enabler of pattern D) which the
    /// Region-DAG optimizer applies outside the F-IR engine.
    ///
    /// Registry order is exploration order and deliberately matches the
    /// legacy hard-coded driver: alternative-level rules T5, N1, T1 first,
    /// then the fold-local rules T2, N2, T4.
    pub fn standard() -> RuleSet {
        let mut set = RuleSet::empty();
        set.register(
            Rule::alternative(
                "T5",
                "extract aggregations into SQL (full and partial)",
                rules::t5_aggregation,
            )
            .with_effects(EffectDelta::introduces_calls(&["coalesce"])),
        );
        set.register(
            Rule::alternative(
                "N1",
                "prefetch relations client-side; lookups probe the cache",
                |alt| rules::n1_prefetch(alt).into_iter().collect(),
            )
            .with_effects(EffectDelta::adds_reads()),
        );
        set.register(Rule::alternative(
            "T1",
            "fold(insert, {}, Q) = Q: a loop materializing a query is the query",
            |alt| rules::t1_fold_removal(alt).into_iter().collect(),
        ));
        set.register(Rule::fold_local(
            "T2",
            "push a common conditional predicate into the source query",
            rules::t2_on_fold,
        ));
        set.register(Rule::fold_local(
            "N2",
            "pull a selection out of the source query (reverse of T2)",
            rules::n2_on_fold,
        ));
        set.register(
            Rule::fold_local(
                "T4",
                "iterative lookups / nested folds become joins",
                rules::lookup_to_join_on_fold,
            )
            .with_action(RuleAction::FoldLocal(Arc::new(
                rules::t4_nested_join_on_fold,
            ))),
        );
        set.register(Rule::external(
            "inline",
            "inline procedure calls so loop bodies expose their queries (pattern D)",
        ));
        set
    }

    /// Register a rule (enabled). Re-registering a name replaces the old
    /// rule, keeping its position and toggle state.
    pub fn register(&mut self, rule: Rule) {
        if let Some(slot) = self.rules.iter_mut().find(|(r, _)| r.name == rule.name) {
            slot.0 = rule;
        } else {
            self.rules.push((rule, true));
        }
    }

    /// Builder-style [`RuleSet::register`].
    pub fn with_rule(mut self, rule: Rule) -> RuleSet {
        self.register(rule);
        self
    }

    /// Enable a rule by name; returns whether the name was known.
    pub fn enable(&mut self, name: &str) -> bool {
        self.set_enabled(name, true)
    }

    /// Disable a rule by name; returns whether the name was known.
    pub fn disable(&mut self, name: &str) -> bool {
        self.set_enabled(name, false)
    }

    /// Builder-style [`RuleSet::disable`] (unknown names are ignored).
    pub fn without(mut self, name: &str) -> RuleSet {
        self.disable(name);
        self
    }

    fn set_enabled(&mut self, name: &str, on: bool) -> bool {
        match self.rules.iter_mut().find(|(r, _)| r.name == name) {
            Some(slot) => {
                slot.1 = on;
                true
            }
            None => false,
        }
    }

    /// Is the named rule registered and enabled?
    pub fn is_enabled(&self, name: &str) -> bool {
        self.rules
            .iter()
            .any(|(r, enabled)| r.name == name && *enabled)
    }

    /// All registered rule names, in registry (exploration) order.
    pub fn names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|(r, _)| r.name).collect()
    }

    /// The registered rules with their toggle state.
    pub fn rules(&self) -> impl Iterator<Item = (&Rule, bool)> {
        self.rules.iter().map(|(r, e)| (r, *e))
    }

    /// The enabled rules, in registry (exploration) order.
    pub fn enabled(&self) -> impl Iterator<Item = &Rule> {
        self.rules.iter().filter(|(_, e)| *e).map(|(r, _)| r)
    }

    /// The combined [`EffectDelta`] of every rule named in an
    /// alternative's [`FirAlternative::rules_applied`] tag list.
    ///
    /// Tags are either a rule name verbatim (`"T5"`, `"N1"`) or a rule
    /// name followed by a non-alphanumeric qualifier (`"T5-partial"`,
    /// `"T4/T5var(lookup-to-join)"`); the synthetic `"toFIR"` base tag and
    /// tags of unregistered rules contribute nothing, so an unknown rule
    /// gets the strictest (empty) allowance.
    pub fn delta_for_applied(&self, tags: &[&str]) -> EffectDelta {
        let mut delta = EffectDelta::default();
        for tag in tags {
            for (rule, _) in &self.rules {
                let matches = *tag == rule.name
                    || (tag.starts_with(rule.name)
                        && tag[rule.name.len()..]
                            .chars()
                            .next()
                            .is_some_and(|c| !c.is_ascii_alphanumeric()));
                if matches {
                    delta.union_with(&rule.effects);
                }
            }
        }
        delta
    }

    /// Number of registered rules (enabled or not).
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

impl std::fmt::Debug for RuleSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut map = f.debug_map();
        for (r, enabled) in &self.rules {
            map.entry(&r.name, enabled);
        }
        map.finish()
    }
}

/// The result of closing a base alternative under a rule set.
#[derive(Debug, Clone)]
pub struct Expansion {
    /// The base plus every derived alternative, deduplicated structurally.
    pub alternatives: Vec<FirAlternative>,
    /// True when the `max_alternatives` budget stopped the closure before
    /// it reached a fixpoint — alternatives were dropped, and the caller
    /// should surface that instead of truncating silently.
    pub truncated: bool,
    /// Diagnostics for alternatives a [`RewriteVerifier`] rejected. Empty
    /// unless the closure ran through [`expand_with_verifier`] and the
    /// verifier returned `Err` for some derivation.
    pub rejected: Vec<String>,
}

/// A soundness check run on every structurally new alternative the closure
/// driver derives, *before* it is emitted or expanded further. Called as
/// `verifier(base, candidate)`; an `Err` diagnostic drops the candidate
/// (and everything only derivable from it) and is collected in
/// [`Expansion::rejected`].
pub type RewriteVerifier<'a> =
    &'a (dyn Fn(&FirAlternative, &FirAlternative) -> Result<(), String> + Sync);

/// Close `base` under the enabled rules of `rules`, deduplicating
/// structurally and stopping after `max_alternatives` (the T2 ⇄ N2 cycle
/// terminates through deduplication exactly the way cyclic rules
/// terminate in the Volcano memo).
pub fn expand_with(base: FirAlternative, rules: &RuleSet, max_alternatives: usize) -> Expansion {
    expand_with_verifier(base, rules, max_alternatives, None)
}

/// [`expand_with`] with an optional per-alternative soundness check. With
/// `verifier == None` this is byte-for-byte `expand_with`: the closure
/// order, dedup keys and truncation behavior are identical.
pub fn expand_with_verifier(
    base: FirAlternative,
    rules: &RuleSet,
    max_alternatives: usize,
    verifier: Option<RewriteVerifier<'_>>,
) -> Expansion {
    // Flatten enabled actions once; fold-local actions keep the
    // fold-outer/rule-inner iteration of the legacy driver.
    let mut alt_actions: Vec<&Arc<AlternativeFn>> = Vec::new();
    let mut fold_actions: Vec<&Arc<FoldLocalFn>> = Vec::new();
    for rule in rules.enabled() {
        for action in rule.actions() {
            match action {
                RuleAction::Alternative(f) => alt_actions.push(f),
                RuleAction::FoldLocal(f) => fold_actions.push(f),
                RuleAction::External => {}
            }
        }
    }

    let mut out: Vec<FirAlternative> = Vec::new();
    let mut seen: std::collections::HashSet<u64> = std::collections::HashSet::new();
    // The base is the semantic reference every derivation is checked
    // against; it is also checked against itself (the comparison is then
    // trivial, but well-formedness and scoping still run on it).
    let reference = base.clone();
    let mut queue: Vec<FirAlternative> = vec![base];
    let mut truncated = false;
    let mut rejected: Vec<String> = Vec::new();
    while let Some(alt) = queue.pop() {
        let key = alt.dedup_key();
        if seen.contains(&key) {
            continue;
        }
        if out.len() >= max_alternatives {
            // A genuinely new alternative exists but the budget is spent:
            // the closure was clipped. (A closure that completes exactly
            // at the bound drains the queue through the dedup check above
            // and never reaches this point.)
            truncated = true;
            break;
        }
        seen.insert(key);
        if let Some(check) = verifier {
            if let Err(why) = check(&reference, &alt) {
                // Unsound: drop the alternative without expanding it.
                rejected.push(why);
                continue;
            }
        }
        out.push(alt.clone());

        for f in &alt_actions {
            queue.extend(f(&alt));
        }
        for fold in rules::reachable_folds(&alt) {
            for f in &fold_actions {
                let mut arena = alt.arena.clone();
                if let Some((replacement, name)) = f(&mut arena, fold) {
                    let staged = FirAlternative {
                        arena,
                        ..alt.clone()
                    };
                    queue.push(rules::replace_node(
                        &staged,
                        fold,
                        replacement,
                        name,
                        Vec::new(),
                    ));
                }
            }
        }
    }
    Expansion {
        alternatives: out,
        truncated,
        rejected,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::loop_to_fold;
    use imperative::ast::{Expr, Stmt, StmtKind};
    use orm::{EntityMapping, MappingRegistry};

    fn mappings() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
            "customer",
            "Customer",
            "o_customer_sk",
        ));
        r.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
        r
    }

    fn p0_alternative() -> FirAlternative {
        let body = vec![
            Stmt::new(StmtKind::Let(
                "cust".into(),
                Expr::nav(Expr::var("o"), "customer"),
            )),
            Stmt::new(StmtKind::Add(
                "result".into(),
                Expr::field(Expr::var("cust"), "c_birth_year"),
            )),
        ];
        loop_to_fold(
            "o",
            &Expr::LoadAll("Order".into()),
            &body,
            &mappings(),
            Some(&["result".to_string()]),
        )
        .unwrap()
    }

    #[test]
    fn standard_set_names_the_paper_rules() {
        let set = RuleSet::standard();
        for name in ["T1", "T2", "T4", "T5", "N1", "N2", "inline"] {
            assert!(set.is_enabled(name), "{name} registered and enabled");
        }
        assert_eq!(set.len(), 7);
    }

    #[test]
    fn standard_set_matches_legacy_driver() {
        let base = p0_alternative();
        let legacy = crate::rules::expand_alternatives(base.clone(), 64);
        let new = expand_with(base, &RuleSet::standard(), 64);
        assert!(!new.truncated);
        let legacy_keys: Vec<String> = legacy.iter().map(|a| a.key()).collect();
        let new_keys: Vec<String> = new.alternatives.iter().map(|a| a.key()).collect();
        assert_eq!(legacy_keys, new_keys, "same alternatives, same order");
    }

    #[test]
    fn disabling_a_rule_removes_its_alternatives() {
        let full = expand_with(p0_alternative(), &RuleSet::standard(), 64);
        let no_n1 = expand_with(p0_alternative(), &RuleSet::standard().without("N1"), 64);
        assert!(no_n1.alternatives.len() < full.alternatives.len());
        assert!(no_n1
            .alternatives
            .iter()
            .all(|a| !a.rules_applied.contains(&"N1")));
    }

    #[test]
    fn empty_rule_set_keeps_only_the_base() {
        let exp = expand_with(p0_alternative(), &RuleSet::empty(), 64);
        assert_eq!(exp.alternatives.len(), 1);
        assert!(!exp.truncated);
    }

    #[test]
    fn closure_completing_exactly_at_the_bound_is_not_truncated() {
        // Nothing is derivable, and the bound equals the closure size:
        // nothing was dropped, so nothing may be reported dropped.
        let exp = expand_with(p0_alternative(), &RuleSet::empty(), 1);
        assert_eq!(exp.alternatives.len(), 1);
        assert!(!exp.truncated);
        // The full standard closure of P0 fits in its own size exactly.
        let full = expand_with(p0_alternative(), &RuleSet::standard(), 64);
        assert!(!full.truncated);
        let exact = expand_with(
            p0_alternative(),
            &RuleSet::standard(),
            full.alternatives.len(),
        );
        assert_eq!(exact.alternatives.len(), full.alternatives.len());
        assert!(!exact.truncated, "completed exactly at the bound");
    }

    #[test]
    fn truncation_is_reported() {
        let exp = expand_with(p0_alternative(), &RuleSet::standard(), 2);
        assert_eq!(exp.alternatives.len(), 2);
        assert!(exp.truncated, "the closure was clipped");
    }

    #[test]
    fn user_rules_can_be_registered() {
        let fired = std::sync::Arc::new(std::sync::atomic::AtomicUsize::new(0));
        let fired2 = fired.clone();
        let set = RuleSet::standard().with_rule(Rule::alternative(
            "count-visits",
            "test-only rule counting driver visits",
            move |_| {
                fired2.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                Vec::new()
            },
        ));
        let exp = expand_with(p0_alternative(), &set, 64);
        assert!(fired.load(std::sync::atomic::Ordering::Relaxed) >= exp.alternatives.len() - 1);
        assert!(set.names().contains(&"count-visits"));
    }

    #[test]
    fn toggles_round_trip() {
        let mut set = RuleSet::standard();
        assert!(set.disable("T4"));
        assert!(!set.is_enabled("T4"));
        assert!(set.enable("T4"));
        assert!(set.is_enabled("T4"));
        assert!(!set.disable("no-such-rule"));
    }
}
