//! F-IR — the fold intermediate representation (§V).
//!
//! F-IR represents the value of every variable at the end of a region as
//! an expression over values available at the region's beginning. Cursor
//! loops become `fold(f, init, Q)`; this crate implements the paper's
//! extension where `fold` returns a **tuple** of accumulators and
//! `project_i` extracts one — lifting the single-aggregate restriction of
//! the earlier work and enabling *dependent aggregations* (Figure 7's
//! `sum`/`cSum`).
//!
//! Components:
//! * [`arena`] — the hash-consed expression DAG ([`FirNode`], [`FirArena`])
//!   with a paper-style pretty printer (`fold(<sum> + Q.sale_amt, 0, Q)`),
//! * [`build`] — `loopToFold` (Figure 9): symbolic evaluation of a loop
//!   body into a fold, with ORM navigation lowered to single-row lookup
//!   queries (the N+1 pattern made explicit),
//! * [`rules`] — transformation rules: T2 (predicate push), T3 is folded
//!   into the expression translation, T4/T5-variant (lookup/nested-loop →
//!   join), T5 (aggregation extraction, full and partial), N1
//!   (prefetching), N2 (selection pull-out), T1 (fold removal), plus the
//!   closure driver [`rules::expand_alternatives`],
//! * [`codegen`] — F-IR alternative → imperative statements, the inverse
//!   of [`build`],
//! * [`ruleset`] — the rules as first-class API objects: a [`RuleSet`]
//!   registry with per-rule enable/disable toggles and room for
//!   user-registered [`Rule`]s, consumed by the closure driver
//!   [`ruleset::expand_with`].

pub mod arena;
pub mod build;
pub mod codegen;
pub mod rules;
pub mod ruleset;

pub use arena::{FirArena, FirId, FirNode};
pub use build::{loop_to_fold, FirAlternative, Prefetch};
pub use codegen::generate;
pub use rules::expand_alternatives;
pub use ruleset::{
    expand_with, expand_with_verifier, EffectDelta, Expansion, RewriteVerifier, Rule, RuleAction,
    RuleSet,
};
