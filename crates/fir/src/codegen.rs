//! Code generation: F-IR alternatives back to imperative statements.
//!
//! The inverse of [`crate::build`]: folds become cursor loops, queries
//! become `executeQuery` calls, prefetches become
//! `Utils.cacheByColumn(executeQuery("select * from T"), key)` statements,
//! and cache lookups become `Utils.lookupCache` expressions — producing
//! exactly the program shapes of Figure 3 (P1, P2) from the F-IR
//! alternatives the rules derive from P0.

use crate::arena::{FirArena, FirId, FirNode};
use crate::build::FirAlternative;
use imperative::ast::{Expr, QuerySpec, Stmt, StmtKind};
use std::collections::HashMap;

/// Name of the client cache for `table` keyed by `key_col` (shared between
/// prefetch statements and lookup expressions).
pub fn cache_name(table: &str, key_col: &str) -> String {
    format!("cache_{table}_by_{key_col}")
}

/// Generate imperative statements for an alternative. Returns `None` when
/// the alternative contains a shape codegen cannot express (which the
/// optimizer treats as "alternative unavailable").
pub fn generate(alt: &FirAlternative) -> Option<Vec<Stmt>> {
    let mut g = Gen {
        arena: &alt.arena,
        emitted_accs: HashMap::new(),
        emitted_folds: Vec::new(),
        row_vars: HashMap::new(),
        fresh: 0,
    };
    let mut out = Vec::new();
    for p in &alt.prefetches {
        out.push(Stmt::new(StmtKind::CacheByColumn {
            cache: cache_name(&p.table, &p.key_col),
            source: Expr::Query(QuerySpec::of(minidb::LogicalPlan::scan(&p.table))),
            key_col: p.key_col.clone(),
        }));
    }
    for (var, id) in &alt.assigns {
        g.emit_assign(var, *id, &mut out)?;
    }
    Some(out)
}

struct Gen<'a> {
    arena: &'a FirArena,
    /// Final expression of an already-updated accumulator → its variable,
    /// so dependent reads reuse the variable instead of re-inlining.
    emitted_accs: HashMap<FirId, String>,
    /// Folds already lowered to loops (all their projections are covered).
    emitted_folds: Vec<FirId>,
    /// Row-producing nodes already bound to a local variable.
    row_vars: HashMap<FirId, String>,
    fresh: u32,
}

impl<'a> Gen<'a> {
    fn fresh_var(&mut self, prefix: &str) -> String {
        self.fresh += 1;
        format!("{prefix}{}", self.fresh)
    }

    fn emit_assign(&mut self, var: &str, id: FirId, out: &mut Vec<Stmt>) -> Option<()> {
        match self.arena.node(id).clone() {
            FirNode::Project(fold, _) => {
                if self.emitted_folds.contains(&fold) {
                    return Some(()); // loop already emitted; var is set
                }
                self.emit_fold(fold, out)
            }
            FirNode::Query { plan, binds } => {
                let spec = self.query_spec(plan, &binds, out)?;
                out.push(Stmt::new(StmtKind::Let(var.to_string(), Expr::Query(spec))));
                Some(())
            }
            FirNode::ScalarQuery { plan, binds } => {
                let spec = self.query_spec(plan, &binds, out)?;
                out.push(Stmt::new(StmtKind::Let(
                    var.to_string(),
                    Expr::ScalarQuery(spec),
                )));
                Some(())
            }
            FirNode::RowField(base, col) => {
                // Multi-aggregate extraction: bind the (single-row) result
                // once, then read its columns.
                let row_var = self.row_var_for(base, out)?;
                out.push(Stmt::new(StmtKind::Let(
                    var.to_string(),
                    Expr::field(Expr::var(row_var), col),
                )));
                Some(())
            }
            _ => {
                let e = self.tx(id, out)?;
                out.push(Stmt::new(StmtKind::Let(var.to_string(), e)));
                Some(())
            }
        }
    }

    /// Emit the loop for a fold node, updating all its accumulators.
    fn emit_fold(&mut self, fold: FirId, out: &mut Vec<Stmt>) -> Option<()> {
        let FirNode::Fold {
            func,
            init,
            source,
            loop_var,
            updated,
        } = self.arena.node(fold).clone()
        else {
            return None;
        };
        let FirNode::Tuple(items) = self.arena.node(func).clone() else {
            return None;
        };
        let FirNode::Tuple(init_items) = self.arena.node(init).clone() else {
            return None;
        };
        self.emitted_folds.push(fold);

        // Materialize non-trivial initial values before the loop. A
        // top-level fold's init is the accumulator's own region-entry
        // value (nothing to do), but a *nested* fold continues an
        // accumulation whose value-so-far lives in its init expression —
        // dropping it loses every contribution made earlier in the outer
        // iteration (a bug the differential oracle caught).
        for (u, &init_item) in updated.iter().zip(&init_items) {
            let trivial = matches!(
                self.arena.node(init_item),
                FirNode::AccParam(v) | FirNode::Param(v) | FirNode::CollectionParam(v) if v == u
            );
            if !trivial {
                self.emit_update(u, init_item, out)?;
            }
        }

        let iter = self.source_expr(source, out)?;
        let mut body = Vec::new();
        // Accumulator updates run in first-update order; dependent reads of
        // an earlier accumulator's final value resolve to its variable.
        // Bindings made *inside* the body (row variables, nested folds) go
        // out of scope with it — the loop may run zero times, so code
        // after the loop must not reuse them.
        let saved_accs = self.emitted_accs.clone();
        let saved_rows = self.row_vars.clone();
        let saved_folds = self.emitted_folds.clone();
        let order = update_order(self.arena, &updated, &items)?;
        for idx in order {
            let (u, item) = (&updated[idx], items[idx]);
            self.emit_update(u, item, &mut body)?;
            self.emitted_accs.insert(item, u.clone());
        }
        self.emitted_accs = saved_accs;
        self.row_vars = saved_rows;
        self.emitted_folds = saved_folds;
        out.push(Stmt::new(StmtKind::ForEach {
            var: loop_var,
            iter,
            body,
        }));
        Some(())
    }

    /// Emit the statement(s) updating accumulator `var` to the value of
    /// `item` for this iteration.
    fn emit_update(&mut self, var: &str, item: FirId, body: &mut Vec<Stmt>) -> Option<()> {
        let acc = FirNode::AccParam(var.to_string());
        if self.arena.node(item) == &acc {
            return Some(()); // untouched this iteration
        }
        match self.arena.node(item).clone() {
            FirNode::Insert(base, elem) => {
                self.emit_update(var, base, body)?;
                let e = self.tx(elem, body)?;
                body.push(Stmt::new(StmtKind::Add(var.to_string(), e)));
                Some(())
            }
            FirNode::MapPut(base, k, v) => {
                self.emit_update(var, base, body)?;
                let ke = self.tx(k, body)?;
                let ve = self.tx(v, body)?;
                body.push(Stmt::new(StmtKind::Put(var.to_string(), ke, ve)));
                Some(())
            }
            FirNode::Cond {
                pred,
                then_val,
                else_val,
            } => {
                let p = self.tx(pred, body)?;
                // Each branch executes alone: bindings and folds emitted
                // in one branch are not in scope in the other (or after
                // the conditional), even though hash-consing shares their
                // nodes. Without this isolation the second branch would
                // skip a fold "already emitted" in the first — dropping
                // its loop entirely.
                let saved_rows = self.row_vars.clone();
                let saved_folds = self.emitted_folds.clone();
                let mut then_branch = Vec::new();
                self.emit_update(var, then_val, &mut then_branch)?;
                self.row_vars = saved_rows.clone();
                self.emitted_folds = saved_folds.clone();
                let mut else_branch = Vec::new();
                self.emit_update(var, else_val, &mut else_branch)?;
                self.row_vars = saved_rows;
                self.emitted_folds = saved_folds;
                body.push(Stmt::new(StmtKind::If {
                    cond: p,
                    then_branch,
                    else_branch,
                }));
                Some(())
            }
            FirNode::Project(fold, _) => {
                if !self.emitted_folds.contains(&fold) {
                    self.emit_fold(fold, body)?;
                }
                Some(())
            }
            _ => {
                let e = self.tx(item, body)?;
                body.push(Stmt::new(StmtKind::Let(var.to_string(), e)));
                Some(())
            }
        }
    }

    /// The iterable expression for a fold source.
    fn source_expr(&mut self, source: FirId, out: &mut Vec<Stmt>) -> Option<Expr> {
        match self.arena.node(source).clone() {
            FirNode::Query { plan, binds } => {
                let spec = self.query_spec(plan, &binds, out)?;
                Some(Expr::Query(spec))
            }
            FirNode::CollectionParam(v) | FirNode::Param(v) => Some(Expr::Var(v)),
            FirNode::CacheLookup {
                table,
                key_col,
                key,
            } => {
                let k = self.tx(key, out)?;
                Some(Expr::LookupCache(cache_name(&table, &key_col), Box::new(k)))
            }
            _ => None,
        }
    }

    fn query_spec(
        &mut self,
        plan: minidb::SharedPlan,
        binds: &[(String, FirId)],
        out: &mut Vec<Stmt>,
    ) -> Option<QuerySpec> {
        let mut spec = QuerySpec::of(plan);
        for (p, id) in binds {
            let e = self.tx(*id, out)?;
            spec = spec.bind(p.clone(), e);
        }
        Some(spec)
    }

    /// Bind a row-producing node (lookup query / cache lookup) to a local
    /// variable, once.
    fn row_var_for(&mut self, id: FirId, out: &mut Vec<Stmt>) -> Option<String> {
        if let Some(v) = self.row_vars.get(&id) {
            return Some(v.clone());
        }
        let expr = match self.arena.node(id).clone() {
            FirNode::Query { plan, binds } => {
                let spec = self.query_spec(plan, &binds, out)?;
                Expr::Query(spec)
            }
            FirNode::CacheLookup {
                table,
                key_col,
                key,
            } => {
                let k = self.tx(key, out)?;
                Expr::LookupCache(cache_name(&table, &key_col), Box::new(k))
            }
            _ => return None,
        };
        let name = self.fresh_var("row");
        out.push(Stmt::new(StmtKind::Let(name.clone(), expr)));
        self.row_vars.insert(id, name.clone());
        Some(name)
    }

    /// Translate a value-position F-IR node into an expression, emitting
    /// helper statements (row bindings) into `out` as needed.
    fn tx(&mut self, id: FirId, out: &mut Vec<Stmt>) -> Option<Expr> {
        if let Some(var) = self.emitted_accs.get(&id) {
            return Some(Expr::Var(var.clone()));
        }
        match self.arena.node(id).clone() {
            FirNode::Const(v) => Some(Expr::Lit(v)),
            FirNode::Param(v) | FirNode::AccParam(v) | FirNode::CollectionParam(v) => {
                Some(Expr::Var(v))
            }
            FirNode::TupleVar(v) => Some(Expr::Var(v)),
            FirNode::TupleAttr(v, c) => Some(Expr::field(Expr::Var(v), c)),
            FirNode::Bin(op, l, r) => {
                let le = self.tx(l, out)?;
                let re = self.tx(r, out)?;
                Some(Expr::bin(op, le, re))
            }
            FirNode::Not(e) => {
                let i = self.tx(e, out)?;
                Some(Expr::Not(Box::new(i)))
            }
            FirNode::Call(f, args) => {
                let es = args
                    .iter()
                    .map(|a| self.tx(*a, out))
                    .collect::<Option<Vec<_>>>()?;
                Some(Expr::Call(f, es))
            }
            FirNode::RowField(base, col) => match self.arena.node(base).clone() {
                // A row already held in a variable (region parameter or
                // enclosing tuple): plain field access.
                FirNode::Param(v) | FirNode::AccParam(v) | FirNode::TupleVar(v) => {
                    Some(Expr::field(Expr::var(v), col))
                }
                _ => {
                    let row = self.row_var_for(base, out)?;
                    Some(Expr::field(Expr::var(row), col))
                }
            },
            FirNode::CacheLookup {
                table,
                key_col,
                key,
            } => {
                let k = self.tx(key, out)?;
                Some(Expr::LookupCache(cache_name(&table, &key_col), Box::new(k)))
            }
            FirNode::Query { plan, binds } => {
                let spec = self.query_spec(plan, &binds, out)?;
                Some(Expr::Query(spec))
            }
            FirNode::ScalarQuery { plan, binds } => {
                let spec = self.query_spec(plan, &binds, out)?;
                Some(Expr::ScalarQuery(spec))
            }
            // Structure nodes are only valid in update position.
            FirNode::Insert(_, _)
            | FirNode::MapPut(_, _, _)
            | FirNode::Cond { .. }
            | FirNode::Tuple(_)
            | FirNode::Project(_, _)
            | FirNode::Fold { .. } => None,
        }
    }
}

/// Order the accumulator updates of one fold so every cross-accumulator
/// read resolves to the right value once updates mutate variables in
/// place:
///
/// * an item reading `<b>` (accumulator `b`'s iteration-start value)
///   must be emitted **before** `b`'s own update overwrites it;
/// * an item embedding `b`'s final update expression must be emitted
///   **after** it, so the shared subexpression resolves to `b`'s
///   variable (the M0 dependent-aggregation pattern);
/// * an item needing both (or a dependency cycle) has no in-place
///   emission — the alternative is reported unavailable rather than
///   miscompiled. The differential oracle caught the earlier behavior,
///   which emitted declaration order and silently read mid-iteration
///   values.
///
/// The returned order is the stable topological sort (original order
/// among unconstrained updates, preserving legacy output).
fn update_order(arena: &FirArena, updated: &[String], items: &[FirId]) -> Option<Vec<usize>> {
    let n = items.len();
    // Does `root` reference AccParam(`name`) outside any occurrence of
    // the full expression `stop` (which will resolve to a variable)?
    fn reads_start(
        arena: &FirArena,
        root: FirId,
        stop: FirId,
        name: &str,
        root_is_self: bool,
    ) -> bool {
        if !root_is_self && root == stop {
            return false;
        }
        if let FirNode::AccParam(v) = arena.node(root) {
            if v == name {
                return true;
            }
        }
        arena
            .children(root)
            .into_iter()
            .any(|c| reads_start(arena, c, stop, name, false))
    }
    // Does `root` embed `other` as a (strict) subexpression?
    fn embeds(arena: &FirArena, root: FirId, other: FirId) -> bool {
        arena
            .children(root)
            .into_iter()
            .any(|c| c == other || embeds(arena, c, other))
    }

    // before[a] holds every b that must be emitted before a.
    let mut before: Vec<Vec<usize>> = vec![Vec::new(); n];
    for a in 0..n {
        for b in 0..n {
            if a == b {
                continue;
            }
            if items[a] == items[b] {
                // Hash-consing shared the whole update: whichever emits
                // first, the other resolves to its variable (`b = a`) and
                // both orders read the same pre-update state — no
                // constraint, and in particular no false cycle.
                continue;
            }
            let final_ref = embeds(arena, items[a], items[b]);
            let start_ref = reads_start(arena, items[a], items[b], &updated[b], true);
            match (start_ref, final_ref) {
                (true, true) => return None,        // needs both old and new value of b
                (true, false) => before[b].push(a), // a precedes b
                (false, true) => before[a].push(b), // b precedes a
                (false, false) => {}
            }
        }
    }
    // Stable Kahn's algorithm: lowest original index among ready updates
    // first; no ready update means a cycle.
    let mut emitted = vec![false; n];
    let mut order = Vec::with_capacity(n);
    while order.len() < n {
        let next = (0..n).find(|&i| !emitted[i] && before[i].iter().all(|&b| emitted[b]))?;
        emitted[next] = true;
        order.push(next);
    }
    Some(order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::loop_to_fold;
    use crate::rules::expand_alternatives;
    use imperative::pretty;
    use minidb::BinOp;
    use orm::{EntityMapping, MappingRegistry};

    fn mappings() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
            "customer",
            "Customer",
            "o_customer_sk",
        ));
        r.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
        r
    }

    fn p0_alts() -> Vec<FirAlternative> {
        let body = vec![
            Stmt::new(StmtKind::Let(
                "cust".into(),
                Expr::nav(Expr::var("o"), "customer"),
            )),
            Stmt::new(StmtKind::Let(
                "val".into(),
                Expr::Call(
                    "myFunc".into(),
                    vec![
                        Expr::field(Expr::var("o"), "o_id"),
                        Expr::field(Expr::var("cust"), "c_birth_year"),
                    ],
                ),
            )),
            Stmt::new(StmtKind::Add("result".into(), Expr::var("val"))),
        ];
        let base = loop_to_fold(
            "o",
            &Expr::LoadAll("Order".into()),
            &body,
            &mappings(),
            Some(&["result".to_string()]),
        )
        .unwrap();
        expand_alternatives(base, 32)
    }

    #[test]
    fn p1_codegen_matches_figure_3b_shape() {
        let alts = p0_alts();
        let join = alts
            .iter()
            .find(|a| a.rules_applied.contains(&"T4/T5var(lookup-to-join)"))
            .unwrap();
        let stmts = generate(join).expect("codegen");
        let text = pretty::stmts_to_string(&stmts);
        assert!(
            text.contains(
                "for (o : executeQuery(\"select * from orders join customer on \
                 o_customer_sk = c_customer_sk\")) {"
            ),
            "{text}"
        );
        // `val` is a per-iteration temporary; symbolic evaluation inlines
        // it into the accumulation (semantically identical to Figure 3b).
        assert!(
            text.contains("result.add(myFunc(o.o_id, o.c_birth_year));"),
            "{text}"
        );
    }

    #[test]
    fn p2_codegen_matches_figure_3c_shape() {
        let alts = p0_alts();
        let pf = alts
            .iter()
            .find(|a| a.rules_applied.contains(&"N1"))
            .unwrap();
        let stmts = generate(pf).expect("codegen");
        let text = pretty::stmts_to_string(&stmts);
        assert!(
            text.contains(
                "cache_customer_by_c_customer_sk = Utils.cacheByColumn(\
                 executeQuery(\"select * from customer\"), 'c_customer_sk');"
            ),
            "{text}"
        );
        assert!(
            text.contains("Utils.lookupCache(cache_customer_by_c_customer_sk, o.o_customer_sk)"),
            "{text}"
        );
    }

    #[test]
    fn original_fold_codegen_round_trips_p0() {
        // Codegen of the unrewritten fold reproduces a loop with the same
        // statements as the original body (lookup bound to a row variable).
        let alts = p0_alts();
        let base = alts
            .iter()
            .find(|a| a.rules_applied == vec!["toFIR"])
            .unwrap();
        let stmts = generate(base).expect("codegen");
        let text = pretty::stmts_to_string(&stmts);
        assert!(
            text.contains("for (o : executeQuery(\"select * from orders\")) {"),
            "{text}"
        );
        assert!(
            text.contains("executeQuery(\"select * from customer where c_customer_sk = :k\", k=o.o_customer_sk)"),
            "{text}"
        );
        assert!(text.contains("result.add("), "{text}");
    }

    #[test]
    fn aggregate_codegen_uses_scalar_query() {
        let body = vec![Stmt::new(StmtKind::Let(
            "sum".into(),
            Expr::bin(
                BinOp::Add,
                Expr::var("sum"),
                Expr::field(Expr::var("t"), "sale_amt"),
            ),
        ))];
        let base = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql("select * from sales")),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let alts = expand_alternatives(base, 32);
        let agg = alts
            .iter()
            .find(|a| a.rules_applied.contains(&"T5"))
            .unwrap();
        let stmts = generate(agg).unwrap();
        let text = pretty::stmts_to_string(&stmts);
        assert_eq!(
            text.trim(),
            "sum = sum + coalesce(executeScalar(\"select sum(sale_amt) as agg_sum from sales\"), 0);",
            "the extraction adds onto the entry value and guards empty input"
        );
    }

    #[test]
    fn dependent_aggregation_codegen_reuses_updated_variable() {
        // Figure 7 loop: cSum.put must reference `sum`, not re-inline it.
        let body = vec![
            Stmt::new(StmtKind::Let(
                "sum".into(),
                Expr::bin(
                    BinOp::Add,
                    Expr::var("sum"),
                    Expr::field(Expr::var("t"), "sale_amt"),
                ),
            )),
            Stmt::new(StmtKind::Put(
                "cSum".into(),
                Expr::field(Expr::var("t"), "month"),
                Expr::var("sum"),
            )),
        ];
        let base = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql(
                "select month, sale_amt from sales order by month",
            )),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let stmts = generate(&base).unwrap();
        let text = pretty::stmts_to_string(&stmts);
        assert!(text.contains("sum = sum + t.sale_amt;"), "{text}");
        assert!(text.contains("cSum.put(t.month, sum);"), "{text}");
    }

    #[test]
    fn conditional_update_codegen_emits_if() {
        let body = vec![Stmt::new(StmtKind::If {
            cond: Expr::bin(
                BinOp::Gt,
                Expr::field(Expr::var("t"), "o_amount"),
                Expr::lit(10i64),
            ),
            then_branch: vec![Stmt::new(StmtKind::Add("r".into(), Expr::var("t")))],
            else_branch: vec![],
        })];
        let base = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql("select * from orders")),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let stmts = generate(&base).unwrap();
        let text = pretty::stmts_to_string(&stmts);
        assert!(text.contains("if (t.o_amount > 10) {"), "{text}");
        assert!(text.contains("r.add(t);"), "{text}");
        assert!(!text.contains("} else {"), "empty else omitted: {text}");
    }

    #[test]
    fn t1_codegen_is_a_single_query_assignment() {
        let body = vec![Stmt::new(StmtKind::Add("r".into(), Expr::var("t")))];
        let base = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql("select * from orders")),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let alts = expand_alternatives(base, 32);
        let t1 = alts
            .iter()
            .find(|a| a.rules_applied.contains(&"T1"))
            .unwrap();
        let stmts = generate(t1).unwrap();
        let text = pretty::stmts_to_string(&stmts);
        assert_eq!(text.trim(), "r = executeQuery(\"select * from orders\");");
    }

    use imperative::ast::{Expr, QuerySpec, Stmt, StmtKind};
}
