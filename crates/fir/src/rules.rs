//! F-IR transformation rules (Figure 11).
//!
//! | Rule | Shape | Effect |
//! |------|-------|--------|
//! | T1 | `fold(insert, {}, Q) = Q` | loop materializing a query *is* the query |
//! | T2 | `fold(?(p,g), id, Q) ≡ fold(g, id, σ_p(Q))` | push predicate into the query |
//! | T4/T5-variant | lookup query / nested fold over `σ_{A=t.B}(R)` | rewrite to a join `Q ⋈ R` |
//! | T5 | `fold(op, id, π_A(Q)) ≡ γ_op(Q)` | aggregation extracted to SQL |
//! | N1 | iterative lookup in a fold | `seq(prefetch(R,A), fold(lookup…))` |
//! | N2 | `fold(g, id, σ_p(Q)) ≡ fold(?(p,g), id, Q)` | pull selection out (reverse of T2) |
//!
//! T3 (pushing scalar functions into the query projection) happens
//! implicitly during aggregation extraction: aggregate arguments are
//! translated into SQL expressions over the source's columns.
//!
//! Rules return *new* [`FirAlternative`]s; [`expand_alternatives`] closes
//! a base alternative under all rules with structural deduplication (the
//! T2 ⇄ N2 cycle terminates exactly the way cyclic rules terminate in the
//! Volcano memo).

use crate::arena::{FirArena, FirId, FirNode};
use crate::build::{FirAlternative, Prefetch};
use minidb::plan::AggItem;
use minidb::{AggFunc, BinOp, LogicalPlan, ScalarExpr, Value};

/// The decomposed parts of a fold node.
struct FoldParts {
    #[allow(dead_code)]
    fold: FirId,
    func_items: Vec<FirId>,
    init_items: Vec<FirId>,
    source: FirId,
    loop_var: String,
    updated: Vec<String>,
}

fn fold_parts(arena: &FirArena, fold: FirId) -> Option<FoldParts> {
    let FirNode::Fold {
        func,
        init,
        source,
        loop_var,
        updated,
    } = arena.node(fold).clone()
    else {
        return None;
    };
    let FirNode::Tuple(func_items) = arena.node(func).clone() else {
        return None;
    };
    let FirNode::Tuple(init_items) = arena.node(init).clone() else {
        return None;
    };
    Some(FoldParts {
        fold,
        func_items,
        init_items,
        source,
        loop_var,
        updated,
    })
}

/// The outermost fold of an alternative whose assigns are all
/// `project_i(fold)` of one fold.
fn top_fold(alt: &FirAlternative) -> Option<FirId> {
    let mut fold = None;
    for (_, id) in &alt.assigns {
        let FirNode::Project(f, _) = alt.arena.node(*id) else {
            return None;
        };
        match fold {
            None => fold = Some(*f),
            Some(existing) if existing == *f => {}
            _ => return None,
        }
    }
    fold
}

/// All fold nodes reachable from the alternative's assignments.
pub(crate) fn reachable_folds(alt: &FirAlternative) -> Vec<FirId> {
    let mut out = Vec::new();
    let (mut seen, mut order) = (Vec::new(), Vec::new());
    for (_, root) in &alt.assigns {
        alt.arena.reachable_into(*root, &mut seen, &mut order);
        for &id in &order {
            if matches!(alt.arena.node(id), FirNode::Fold { .. }) && !out.contains(&id) {
                out.push(id);
            }
        }
    }
    out
}

/// Rebuild every assignment with `old` replaced by `new_node`.
pub(crate) fn replace_node(
    alt: &FirAlternative,
    old: FirId,
    new_node: FirNode,
    rule: &'static str,
    extra_prefetches: Vec<Prefetch>,
) -> FirAlternative {
    let mut arena = alt.arena.clone();
    let assigns = alt
        .assigns
        .iter()
        .map(|(v, root)| {
            let repl = new_node.clone();
            let new_root = arena.rewrite(*root, &|id, _| {
                if id == old {
                    Some(repl.clone())
                } else {
                    None
                }
            });
            (v.clone(), new_root)
        })
        .collect();
    let mut prefetches = alt.prefetches.clone();
    for p in extra_prefetches {
        if !prefetches.contains(&p) {
            prefetches.push(p);
        }
    }
    let mut rules_applied = alt.rules_applied.clone();
    rules_applied.push(rule);
    FirAlternative {
        arena,
        prefetches,
        assigns,
        rules_applied,
        requires_empty_init: alt.requires_empty_init.clone(),
    }
}

// --------------------------------------------------------------------
// Scalar translation helpers (the F-IR ⇄ SQL bridge; subsumes rule T3).
// --------------------------------------------------------------------

/// Translate an F-IR expression into a SQL scalar expression over the
/// tuple of fold `loop_var`. References to anything *outside* that tuple
/// (params, other folds' tuples) become fresh query parameters returned in
/// `binds`.
fn to_scalar(
    arena: &FirArena,
    id: FirId,
    loop_var: &str,
    binds: &mut Vec<(String, FirId)>,
) -> Option<ScalarExpr> {
    match arena.node(id) {
        FirNode::Const(v) => Some(ScalarExpr::Lit(v.clone())),
        FirNode::TupleAttr(v, c) if v == loop_var => Some(ScalarExpr::col(c)),
        FirNode::TupleAttr(_, _) | FirNode::Param(_) => {
            // Correlated / outer value → query parameter.
            let name = format!("p{}", binds.len());
            binds.push((name.clone(), id));
            Some(ScalarExpr::Param(name))
        }
        // A field of a row available at region entry (the enclosing loop's
        // element, viewed from the inner region) is scalar to the query →
        // also a parameter (pattern A's correlated inner filter).
        FirNode::RowField(base, _) if matches!(arena.node(*base), FirNode::Param(_)) => {
            let name = format!("p{}", binds.len());
            binds.push((name.clone(), id));
            Some(ScalarExpr::Param(name))
        }
        FirNode::Bin(op, l, r) => {
            let ls = to_scalar(arena, *l, loop_var, binds)?;
            let rs = to_scalar(arena, *r, loop_var, binds)?;
            Some(ScalarExpr::bin(*op, ls, rs))
        }
        FirNode::Not(e) => {
            let es = to_scalar(arena, *e, loop_var, binds)?;
            Some(ScalarExpr::Not(Box::new(es)))
        }
        FirNode::Call(f, args) => {
            let translated = args
                .iter()
                .map(|a| to_scalar(arena, *a, loop_var, binds))
                .collect::<Option<Vec<_>>>()?;
            Some(ScalarExpr::Func(f.clone(), translated))
        }
        _ => None,
    }
}

/// Inverse of [`to_scalar`]: a SQL predicate over the source's columns
/// becomes an F-IR expression over the fold tuple; query parameters
/// resolve through `binds`.
fn from_scalar(
    arena: &mut FirArena,
    expr: &ScalarExpr,
    loop_var: &str,
    binds: &[(String, FirId)],
) -> Option<FirId> {
    match expr {
        ScalarExpr::Lit(v) => Some(arena.add(FirNode::Const(v.clone()))),
        ScalarExpr::Col(c) => {
            Some(arena.add(FirNode::TupleAttr(loop_var.to_string(), c.name.clone())))
        }
        ScalarExpr::Param(p) => binds.iter().find(|(n, _)| n == p).map(|(_, id)| *id),
        ScalarExpr::Bin(op, l, r) => {
            let lf = from_scalar(arena, l, loop_var, binds)?;
            let rf = from_scalar(arena, r, loop_var, binds)?;
            Some(arena.add(FirNode::Bin(*op, lf, rf)))
        }
        ScalarExpr::Not(e) => {
            let ef = from_scalar(arena, e, loop_var, binds)?;
            Some(arena.add(FirNode::Not(ef)))
        }
        ScalarExpr::Func(f, args) => {
            let translated = args
                .iter()
                .map(|a| from_scalar(arena, a, loop_var, binds))
                .collect::<Option<Vec<_>>>()?;
            Some(arena.add(FirNode::Call(f.clone(), translated)))
        }
    }
}

/// Match a single-row/filtered lookup query: `σ_{A = key}(R)` where `key`
/// is a parameter bound to an F-IR value or a constant. Returns
/// `(table, key_column, key_fir_id)`.
fn match_lookup_query(arena: &FirArena, id: FirId) -> Option<(String, String, FirId)> {
    let FirNode::Query { plan, binds } = arena.node(id) else {
        return None;
    };
    let LogicalPlan::Select { input, pred } = plan.as_plan() else {
        return None;
    };
    let LogicalPlan::Scan { table, .. } = &**input else {
        return None;
    };
    let ScalarExpr::Bin(BinOp::Eq, l, r) = pred else {
        return None;
    };
    let (col, key_expr) = match (&**l, &**r) {
        (ScalarExpr::Col(c), other) => (c, other),
        (other, ScalarExpr::Col(c)) => (c, other),
        _ => return None,
    };
    match key_expr {
        ScalarExpr::Param(p) => {
            let (_, key_id) = binds.iter().find(|(n, _)| n == p)?;
            Some((table.clone(), col.name.clone(), *key_id))
        }
        // Constant keys are handled by `match_lookup_query_mut`, which can
        // intern the constant.
        _ => None,
    }
}

/// Like [`match_lookup_query`] but also matches constant keys; needs `&mut`
/// to intern the constant.
fn match_lookup_query_mut(arena: &mut FirArena, id: FirId) -> Option<(String, String, FirId)> {
    if let Some(hit) = match_lookup_query(arena, id) {
        return Some(hit);
    }
    let FirNode::Query { plan, binds } = arena.node(id).clone() else {
        return None;
    };
    if !binds.is_empty() {
        return None;
    }
    let LogicalPlan::Select { input, pred } = plan.as_plan() else {
        return None;
    };
    let LogicalPlan::Scan { table, .. } = &**input else {
        return None;
    };
    let ScalarExpr::Bin(BinOp::Eq, l, r) = pred else {
        return None;
    };
    let (col, key_expr) = match (&**l, &**r) {
        (ScalarExpr::Col(c), other) => (c, other),
        (other, ScalarExpr::Col(c)) => (c, other),
        _ => return None,
    };
    if let ScalarExpr::Lit(v) = key_expr {
        let key = arena.add(FirNode::Const(v.clone()));
        return Some((table.clone(), col.name.clone(), key));
    }
    None
}

// --------------------------------------------------------------------
// Rule T5 — aggregation extraction.
// --------------------------------------------------------------------

/// A classified scalar aggregation.
struct AggClass {
    func: AggFunc,
    arg: Option<ScalarExpr>,
}

/// Classify `item` as an aggregation update of accumulator `acc`:
/// `<acc> + e` (sum), `<acc> + 1` (count).
fn classify_agg(arena: &FirArena, item: FirId, acc: &str, loop_var: &str) -> Option<AggClass> {
    // Flatten an Add chain and find <acc> exactly once.
    fn flatten(arena: &FirArena, id: FirId, out: &mut Vec<FirId>) {
        if let FirNode::Bin(BinOp::Add, l, r) = arena.node(id) {
            flatten(arena, *l, out);
            flatten(arena, *r, out);
        } else {
            out.push(id);
        }
    }
    let mut terms = Vec::new();
    flatten(arena, item, &mut terms);
    let acc_node = FirNode::AccParam(acc.to_string());
    let acc_positions: Vec<usize> = terms
        .iter()
        .enumerate()
        .filter(|(_, &t)| arena.node(t) == &acc_node)
        .map(|(i, _)| i)
        .collect();
    if acc_positions.len() != 1 {
        return None;
    }
    let rest: Vec<FirId> = terms
        .into_iter()
        .filter(|&t| arena.node(t) != &acc_node)
        .collect();
    if rest.is_empty() {
        return None;
    }
    // count: the remaining term is the constant 1.
    if rest.len() == 1 {
        if let FirNode::Const(Value::Int(1)) = arena.node(rest[0]) {
            return Some(AggClass {
                func: AggFunc::Count,
                arg: None,
            });
        }
    }
    // sum: all remaining terms translate to scalar expressions over the
    // fold tuple with no correlation.
    let mut binds = Vec::new();
    let mut sum_expr: Option<ScalarExpr> = None;
    for t in rest {
        let s = to_scalar(arena, t, loop_var, &mut binds)?;
        sum_expr = Some(match sum_expr {
            None => s,
            Some(acc) => ScalarExpr::bin(BinOp::Add, acc, s),
        });
    }
    if !binds.is_empty() {
        return None; // correlated aggregation argument: keep in the loop
    }
    Some(AggClass {
        func: AggFunc::Sum,
        arg: sum_expr,
    })
}

/// Strip a top-level ORDER BY (irrelevant under aggregation) and a
/// rename-free projection (the aggregate arguments reference base columns
/// by the same names).
fn strip_order(plan: &LogicalPlan) -> LogicalPlan {
    let p = match plan {
        LogicalPlan::OrderBy { input, .. } => (**input).clone(),
        other => other.clone(),
    };
    if let LogicalPlan::Project { input, items } = &p {
        let trivial = items
            .iter()
            .all(|(e, name)| matches!(e, ScalarExpr::Col(c) if &c.name == name));
        if trivial {
            return (**input).clone();
        }
    }
    p
}

/// Is this node the literal zero (int or float)?
fn is_zero_const(arena: &FirArena, id: FirId) -> bool {
    match arena.node(id) {
        FirNode::Const(Value::Int(0)) => true,
        FirNode::Const(Value::Float(f)) => *f == 0.0,
        _ => false,
    }
}

/// Guard an extracted aggregate against SQL's empty-input semantics:
/// `sum` (and friends) over zero rows is NULL while the fold keeps its
/// initial value, so wrap in `coalesce(agg, 0)`. `count` is already 0 on
/// empty input and needs no guard.
fn guard_empty_agg(arena: &mut FirArena, agg: FirId, func: AggFunc) -> FirId {
    if matches!(func, AggFunc::Count) {
        return agg;
    }
    let zero = arena.add(FirNode::Const(Value::Int(0)));
    arena.add(FirNode::Call("coalesce".to_string(), vec![agg, zero]))
}

/// `init + agg`, simplified to `agg` when the initial value is the
/// literal zero. A fold's value is *init plus* the aggregated delta; the
/// differential oracle caught the earlier shape that dropped `init`
/// whenever the accumulator entered the region non-zero.
fn add_init(arena: &mut FirArena, init: FirId, agg: FirId) -> FirId {
    if is_zero_const(arena, init) {
        agg
    } else {
        arena.add(FirNode::Bin(BinOp::Add, init, agg))
    }
}

/// Rule T5: extract aggregations into SQL.
///
/// * If **every** accumulator is a scalar aggregation, the whole loop
///   becomes one aggregate query (Figure 10's node 2 generalized).
/// * Otherwise each extractable accumulator yields a *partial* alternative:
///   the loop is kept intact and an extra aggregate query recomputes the
///   accumulator — the paper's §V-B example of a rewrite that usually
///   degrades performance and must be judged by the cost model.
///
/// Extracted values are always `entry + coalesce(agg, 0)` (simplified
/// when the entry value is literally zero): the fold starts from the
/// accumulator's region-entry value and yields it unchanged on an empty
/// source, and the SQL query must reproduce both behaviors.
pub fn t5_aggregation(alt: &FirAlternative) -> Vec<FirAlternative> {
    let Some(fold) = top_fold(alt) else {
        return Vec::new();
    };
    let Some(parts) = fold_parts(&alt.arena, fold) else {
        return Vec::new();
    };
    let FirNode::Query { plan, binds } = alt.arena.node(parts.source) else {
        return Vec::new();
    };
    if !binds.is_empty() {
        return Vec::new(); // correlated source: aggregation not uncorrelated
    }
    let classes: Vec<Option<AggClass>> = parts
        .updated
        .iter()
        .zip(&parts.func_items)
        .map(|(u, &item)| classify_agg(&alt.arena, item, u, &parts.loop_var))
        .collect();

    let mut out = Vec::new();
    let all = classes.iter().all(|c| c.is_some());
    if all && !classes.is_empty() {
        // Full extraction: one aggregate query computing every accumulator.
        let mut arena = alt.arena.clone();
        let aggs: Vec<AggItem> = parts
            .updated
            .iter()
            .zip(&classes)
            .map(|(u, c)| {
                let c = c.as_ref().unwrap();
                AggItem {
                    func: c.func,
                    arg: c.arg.clone(),
                    name: format!("agg_{u}"),
                }
            })
            .collect();
        let agg_plan = strip_order(plan).aggregate(Vec::new(), aggs);
        let assigns = if parts.updated.len() == 1 {
            let sq = arena.add(FirNode::ScalarQuery {
                plan: agg_plan.into(),
                binds: Vec::new(),
            });
            let func = classes[0].as_ref().unwrap().func;
            let guarded = guard_empty_agg(&mut arena, sq, func);
            let value = add_init(&mut arena, parts.init_items[0], guarded);
            vec![(parts.updated[0].clone(), value)]
        } else {
            let q = arena.add(FirNode::Query {
                plan: agg_plan.into(),
                binds: Vec::new(),
            });
            parts
                .updated
                .iter()
                .zip(&classes)
                .zip(&parts.init_items)
                .map(|((u, c), &init)| {
                    let rf = arena.add(FirNode::RowField(q, format!("agg_{u}")));
                    let guarded = guard_empty_agg(&mut arena, rf, c.as_ref().unwrap().func);
                    let value = add_init(&mut arena, init, guarded);
                    (u.clone(), value)
                })
                .collect()
        };
        let mut rules_applied = alt.rules_applied.clone();
        rules_applied.push("T5");
        out.push(FirAlternative {
            arena,
            prefetches: alt.prefetches.clone(),
            assigns,
            rules_applied,
            requires_empty_init: alt.requires_empty_init.clone(),
        });
    } else {
        // Partial extraction (per extractable accumulator): keep the loop,
        // add an aggregate query that recomputes the accumulator after it.
        for (i, u) in parts.updated.iter().enumerate() {
            let Some(c) = &classes[i] else { continue };
            let mut arena = alt.arena.clone();
            let agg_plan = strip_order(plan).aggregate(
                Vec::new(),
                vec![AggItem {
                    func: c.func,
                    arg: c.arg.clone(),
                    name: format!("agg_{u}"),
                }],
            );
            let sq = arena.add(FirNode::ScalarQuery {
                plan: agg_plan.into(),
                binds: Vec::new(),
            });
            let guarded = guard_empty_agg(&mut arena, sq, c.func);
            let mut assigns = alt.assigns.clone();
            let init = parts.init_items[i];
            let value = if is_zero_const(&arena, init) {
                guarded
            } else {
                // The kept loop mutates `u`, so its region-entry value
                // must be captured *before* the loop runs.
                let entry_var = format!("{u}__at_entry");
                let entry_param = arena.add(FirNode::Param(entry_var.clone()));
                assigns.insert(0, (entry_var, init));
                arena.add(FirNode::Bin(BinOp::Add, entry_param, guarded))
            };
            assigns.push((u.clone(), value));
            let mut rules_applied = alt.rules_applied.clone();
            rules_applied.push("T5-partial");
            out.push(FirAlternative {
                arena,
                prefetches: alt.prefetches.clone(),
                assigns,
                rules_applied,
                requires_empty_init: alt.requires_empty_init.clone(),
            });
        }
    }
    out
}

// --------------------------------------------------------------------
// Rule T2 — predicate push into the query.
// --------------------------------------------------------------------

/// Rule T2 applied to one fold node: if every accumulator update is
/// `?(p, g, <acc>)` with the same `p`, push `p` into the source query.
pub(crate) fn t2_on_fold(arena: &mut FirArena, fold: FirId) -> Option<(FirNode, &'static str)> {
    let parts = fold_parts(arena, fold)?;
    let FirNode::Query { plan, binds } = arena.node(parts.source).clone() else {
        return None;
    };
    let mut common_pred: Option<FirId> = None;
    let mut inner_items = Vec::with_capacity(parts.func_items.len());
    for (u, &item) in parts.updated.iter().zip(&parts.func_items) {
        let FirNode::Cond {
            pred,
            then_val,
            else_val,
        } = arena.node(item).clone()
        else {
            return None;
        };
        let acc = arena.add(FirNode::AccParam(u.clone()));
        if else_val != acc {
            return None;
        }
        match common_pred {
            None => common_pred = Some(pred),
            Some(p) if p == pred => {}
            _ => return None,
        }
        inner_items.push(then_val);
    }
    let pred = common_pred?;
    let mut new_binds = binds.clone();
    let scalar = to_scalar(arena, pred, &parts.loop_var, &mut new_binds)?;
    let new_plan = plan.unshare().select(scalar);
    let new_source = arena.add(FirNode::Query {
        plan: new_plan.into(),
        binds: new_binds,
    });
    let func = arena.add(FirNode::Tuple(inner_items));
    let init = arena.add(FirNode::Tuple(parts.init_items.clone()));
    Some((
        FirNode::Fold {
            func,
            init,
            source: new_source,
            loop_var: parts.loop_var.clone(),
            updated: parts.updated.clone(),
        },
        "T2",
    ))
}

// --------------------------------------------------------------------
// Rule N2 — selection pull-out (reverse of T2).
// --------------------------------------------------------------------

pub(crate) fn n2_on_fold(arena: &mut FirArena, fold: FirId) -> Option<(FirNode, &'static str)> {
    let parts = fold_parts(arena, fold)?;
    let FirNode::Query { plan, binds } = arena.node(parts.source).clone() else {
        return None;
    };
    let LogicalPlan::Select { input, pred } = plan.unshare() else {
        return None;
    };
    let fir_pred = from_scalar(arena, &pred, &parts.loop_var, &binds)?;
    // Drop binds consumed by the predicate.
    let mut used = Vec::new();
    pred.collect_params(&mut used);
    let rest_binds: Vec<(String, FirId)> = binds
        .into_iter()
        .filter(|(n, _)| !used.contains(n))
        .collect();
    let new_source = arena.add(FirNode::Query {
        plan: (*input).into(),
        binds: rest_binds,
    });
    let new_items: Vec<FirId> = parts
        .updated
        .iter()
        .zip(&parts.func_items)
        .map(|(u, &item)| {
            let acc = arena.add(FirNode::AccParam(u.clone()));
            arena.add(FirNode::Cond {
                pred: fir_pred,
                then_val: item,
                else_val: acc,
            })
        })
        .collect();
    let func = arena.add(FirNode::Tuple(new_items));
    let init = arena.add(FirNode::Tuple(parts.init_items.clone()));
    Some((
        FirNode::Fold {
            func,
            init,
            source: new_source,
            loop_var: parts.loop_var.clone(),
            updated: parts.updated.clone(),
        },
        "N2",
    ))
}

// --------------------------------------------------------------------
// T4 / T5-variant — lookups and nested loops become joins.
// --------------------------------------------------------------------

/// Is this accumulator update insensitive to iteration *order*?
///
/// A join does not guarantee the nested loops' pair order (the executor
/// may probe from either side), so the join rewrites are only valid for
/// updates whose final value is the same under any permutation of the
/// source rows:
///
/// * `<acc> ± δ(row)` chains — the accumulator appears exactly once,
///   positively, and the deltas read no accumulator state;
/// * `insert(<acc>, e)` — collections compare as bags across rewrites
///   (the paper's join rewrites reorder them already, e.g. P0 → P1);
/// * `mapput(<acc>, k, v)` with accumulator-free `k`/`v` — distinct keys
///   commute, and a key collision overwrites with a row-determined value
///   either way;
/// * `?(p, then, else)` with an accumulator-free predicate and
///   order-insensitive branches.
///
/// Anything else (e.g. `<acc> + <acc>`, predicates over the running
/// value, dependent aggregations reading another accumulator mid-stream)
/// is order-sensitive: the differential oracle caught a join rewrite of
/// `total = total + total - 86·t.fk`, where the executor's
/// build-on-the-smaller-side hash join enumerated pairs in a different
/// order and changed the result.
fn order_insensitive_update(arena: &FirArena, item: FirId, acc: &str) -> bool {
    let reads_any_acc = |id: FirId| arena.any(id, &|n| matches!(n, FirNode::AccParam(_)));
    // Flatten a ±-chain with sign tracking (Sub negates its right arm).
    fn flatten(arena: &FirArena, id: FirId, positive: bool, out: &mut Vec<(FirId, bool)>) {
        match arena.node(id) {
            FirNode::Bin(BinOp::Add, l, r) => {
                flatten(arena, *l, positive, out);
                flatten(arena, *r, positive, out);
            }
            FirNode::Bin(BinOp::Sub, l, r) => {
                flatten(arena, *l, positive, out);
                flatten(arena, *r, !positive, out);
            }
            _ => out.push((id, positive)),
        }
    }
    match arena.node(item) {
        FirNode::AccParam(v) => v == acc,
        FirNode::Bin(BinOp::Add | BinOp::Sub, _, _) => {
            let mut terms = Vec::new();
            flatten(arena, item, true, &mut terms);
            let acc_node = FirNode::AccParam(acc.to_string());
            let accs: Vec<bool> = terms
                .iter()
                .filter(|(t, _)| arena.node(*t) == &acc_node)
                .map(|&(_, positive)| positive)
                .collect();
            accs == [true]
                && terms
                    .iter()
                    .filter(|(t, _)| arena.node(*t) != &acc_node)
                    .all(|&(t, _)| !reads_any_acc(t))
        }
        FirNode::Insert(base, elem) => {
            !reads_any_acc(*elem) && order_insensitive_update(arena, *base, acc)
        }
        FirNode::MapPut(base, k, v) => {
            !reads_any_acc(*k) && !reads_any_acc(*v) && order_insensitive_update(arena, *base, acc)
        }
        FirNode::Cond {
            pred,
            then_val,
            else_val,
        } => {
            !reads_any_acc(*pred)
                && order_insensitive_update(arena, *then_val, acc)
                && order_insensitive_update(arena, *else_val, acc)
        }
        _ => false,
    }
}

/// [`order_insensitive_update`] over every accumulator of a fold.
fn join_safe(arena: &FirArena, updated: &[String], items: &[FirId]) -> bool {
    updated
        .iter()
        .zip(items)
        .all(|(u, &item)| order_insensitive_update(arena, item, u))
}

/// Rewrite an iterative single-row lookup inside the fold into a join with
/// the source (the paper's "variation of rule T5" that turns P0 into P1).
pub(crate) fn lookup_to_join_on_fold(
    arena: &mut FirArena,
    fold: FirId,
) -> Option<(FirNode, &'static str)> {
    let parts = fold_parts(arena, fold)?;
    let FirNode::Query { plan, binds } = arena.node(parts.source).clone() else {
        return None;
    };
    // The join may enumerate rows in a different order than the loop.
    if !join_safe(arena, &parts.updated, &parts.func_items) {
        return None;
    }
    // Find a lookup query reachable from the fold function whose key is an
    // attribute of *this* fold's tuple.
    let func_node = arena.add(FirNode::Tuple(parts.func_items.clone()));
    let mut target: Option<(FirId, String, String, String)> = None;
    for id in arena.reachable(func_node) {
        if let Some((table, key_col, key)) = match_lookup_query(arena, id) {
            if let FirNode::TupleAttr(v, b) = arena.node(key).clone() {
                if v == parts.loop_var {
                    target = Some((id, table, key_col, b));
                    break;
                }
            }
        }
    }
    let (lookup, table, key_col, fk_col) = target?;

    // New source: source ⋈_{fk = key} table.
    let join_plan = plan.unshare().join(
        LogicalPlan::scan(&table),
        ScalarExpr::eq(ScalarExpr::col(&fk_col), ScalarExpr::col(&key_col)),
    );
    let new_source = arena.add(FirNode::Query {
        plan: join_plan.into(),
        binds,
    });

    // Rewrite items: fields of the lookup become attributes of the joined
    // tuple.
    let loop_var = parts.loop_var.clone();
    let new_items: Vec<FirId> = parts
        .func_items
        .iter()
        .map(|&item| {
            arena.rewrite(item, &|id, node| match node {
                FirNode::RowField(base, col) if *base == lookup => {
                    Some(FirNode::TupleAttr(loop_var.clone(), col.clone()))
                }
                _ => {
                    let _ = id;
                    None
                }
            })
        })
        .collect();
    // The lookup must be fully consumed by field accesses.
    for &item in &new_items {
        if arena.reaches(item, lookup) {
            return None;
        }
    }
    let func = arena.add(FirNode::Tuple(new_items));
    let init = arena.add(FirNode::Tuple(parts.init_items.clone()));
    Some((
        FirNode::Fold {
            func,
            init,
            source: new_source,
            loop_var: parts.loop_var.clone(),
            updated: parts.updated.clone(),
        },
        "T4/T5var(lookup-to-join)",
    ))
}

/// Rule T4 proper: a nested fold over a correlated selection becomes a
/// single fold over a join (nested-loops join identification, pattern C).
pub(crate) fn t4_nested_join_on_fold(
    arena: &mut FirArena,
    fold: FirId,
) -> Option<(FirNode, &'static str)> {
    let outer = fold_parts(arena, fold)?;
    let FirNode::Query {
        plan: outer_plan,
        binds: outer_binds,
    } = arena.node(outer.source).clone()
    else {
        return None;
    };
    // Every outer item must be project_j(inner_fold) of one inner fold.
    let mut inner_fold: Option<FirId> = None;
    for &item in &outer.func_items {
        let FirNode::Project(f, _) = arena.node(item) else {
            return None;
        };
        match inner_fold {
            None => inner_fold = Some(*f),
            Some(existing) if existing == *f => {}
            _ => return None,
        }
    }
    let inner = fold_parts(arena, inner_fold?)?;
    // Inner source: σ_{A = outer.B}(R).
    let (table, key_col, key) = match_lookup_query(arena, inner.source)?;
    let FirNode::TupleAttr(v, fk_col) = arena.node(key).clone() else {
        return None;
    };
    if v != outer.loop_var {
        return None;
    }
    // Inner init must be the plain accumulators (no accumulation between
    // the loop header and the inner loop).
    for (u, &init) in inner.updated.iter().zip(&inner.init_items) {
        let acc = arena.add(FirNode::AccParam(u.clone()));
        if init != acc {
            return None;
        }
    }
    // Inner updated must cover outer updated (same variables).
    if inner.updated != outer.updated {
        return None;
    }
    // The join may enumerate pairs in a different order than the nested
    // loops (the executor builds the hash table on the smaller side).
    if !join_safe(arena, &inner.updated, &inner.func_items) {
        return None;
    }

    let join_plan = outer_plan.unshare().join(
        LogicalPlan::scan(&table),
        ScalarExpr::eq(ScalarExpr::col(&fk_col), ScalarExpr::col(&key_col)),
    );
    let new_source = arena.add(FirNode::Query {
        plan: join_plan.into(),
        binds: outer_binds,
    });
    // Rename the inner tuple variable to the outer one: the join tuple
    // carries both sides' columns.
    let outer_var = outer.loop_var.clone();
    let inner_var = inner.loop_var.clone();
    let new_items: Vec<FirId> = inner
        .func_items
        .iter()
        .map(|&item| {
            arena.rewrite(item, &|_, node| match node {
                FirNode::TupleAttr(v, c) if *v == inner_var => {
                    Some(FirNode::TupleAttr(outer_var.clone(), c.clone()))
                }
                FirNode::TupleVar(v) if *v == inner_var => {
                    Some(FirNode::TupleVar(outer_var.clone()))
                }
                _ => None,
            })
        })
        .collect();
    let func = arena.add(FirNode::Tuple(new_items));
    let init = arena.add(FirNode::Tuple(outer.init_items.clone()));
    Some((
        FirNode::Fold {
            func,
            init,
            source: new_source,
            loop_var: outer.loop_var.clone(),
            updated: outer.updated.clone(),
        },
        "T4",
    ))
}

// --------------------------------------------------------------------
// Rule N1 — prefetching.
// --------------------------------------------------------------------

/// Rule N1: replace every eq-keyed lookup query (correlated or constant)
/// with a client-cache lookup, adding the prefetch obligations.
pub fn n1_prefetch(alt: &FirAlternative) -> Option<FirAlternative> {
    // Collect matches first.
    let mut arena = alt.arena.clone();
    let mut lookups: Vec<(FirId, String, String, FirId)> = Vec::new();
    let (mut seen, mut order) = (Vec::new(), Vec::new());
    for (_, root) in &alt.assigns {
        arena.reachable_into(*root, &mut seen, &mut order);
        for &id in &order {
            if lookups.iter().any(|(l, _, _, _)| *l == id) {
                continue;
            }
            // Whole-table fold sources are not N1 targets — only eq-keyed
            // filtered lookups are.
            if let Some((table, key_col, key)) = match_lookup_query_mut(&mut arena, id) {
                lookups.push((id, table, key_col, key));
            }
        }
    }
    if lookups.is_empty() {
        return None;
    }
    let mut prefetches = alt.prefetches.clone();
    let mut assigns = Vec::with_capacity(alt.assigns.len());
    for (v, root) in &alt.assigns {
        let lk = lookups.clone();
        let new_root = arena.rewrite(*root, &|id, _| {
            lk.iter()
                .find(|(l, _, _, _)| *l == id)
                .map(|(_, table, key_col, key)| FirNode::CacheLookup {
                    table: table.clone(),
                    key_col: key_col.clone(),
                    key: *key,
                })
        });
        assigns.push((v.clone(), new_root));
    }
    for (_, table, key_col, _) in lookups {
        let p = Prefetch { table, key_col };
        if !prefetches.contains(&p) {
            prefetches.push(p);
        }
    }
    let mut rules_applied = alt.rules_applied.clone();
    rules_applied.push("N1");
    Some(FirAlternative {
        arena,
        prefetches,
        assigns,
        rules_applied,
        requires_empty_init: alt.requires_empty_init.clone(),
    })
}

// --------------------------------------------------------------------
// Rule T1 — fold removal.
// --------------------------------------------------------------------

/// Rule T1: `fold(insert, {}, Q) = Q`. Valid only when the accumulator is
/// empty at region entry — recorded in `requires_empty_init` and gated by
/// the optimizer against the surrounding region.
pub fn t1_fold_removal(alt: &FirAlternative) -> Option<FirAlternative> {
    let fold = top_fold(alt)?;
    let parts = fold_parts(&alt.arena, fold)?;
    if parts.updated.len() != 1 || alt.assigns.len() != 1 {
        return None;
    }
    let item = parts.func_items[0];
    let FirNode::Insert(base, elem) = alt.arena.node(item).clone() else {
        return None;
    };
    let acc = FirNode::AccParam(parts.updated[0].clone());
    if alt.arena.node(base) != &acc {
        return None;
    }
    let FirNode::TupleVar(v) = alt.arena.node(elem) else {
        return None;
    };
    if *v != parts.loop_var {
        return None;
    }
    if !matches!(alt.arena.node(parts.source), FirNode::Query { .. }) {
        return None;
    }
    let mut rules_applied = alt.rules_applied.clone();
    rules_applied.push("T1");
    Some(FirAlternative {
        arena: alt.arena.clone(),
        prefetches: alt.prefetches.clone(),
        assigns: vec![(parts.updated[0].clone(), parts.source)],
        rules_applied,
        requires_empty_init: Some(parts.updated[0].clone()),
    })
}

// --------------------------------------------------------------------
// Driver.
// --------------------------------------------------------------------

/// Close `base` under the standard rule set, deduplicating structurally.
/// Returns the base plus every derived alternative (bounded by
/// `max_alternatives`). Convenience wrapper over
/// [`crate::ruleset::expand_with`] with [`crate::RuleSet::standard`]; use
/// `expand_with` to toggle individual rules or register your own, and to
/// learn whether the bound clipped the closure.
pub fn expand_alternatives(base: FirAlternative, max_alternatives: usize) -> Vec<FirAlternative> {
    crate::ruleset::expand_with(base, &crate::ruleset::RuleSet::standard(), max_alternatives)
        .alternatives
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::loop_to_fold;
    use imperative::ast::{Expr, QuerySpec, Stmt, StmtKind};
    use orm::{EntityMapping, MappingRegistry};

    fn mappings() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
            "customer",
            "Customer",
            "o_customer_sk",
        ));
        r.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
        r
    }

    fn p0_alternative() -> FirAlternative {
        let body = vec![
            Stmt::new(StmtKind::Let(
                "cust".into(),
                Expr::nav(Expr::var("o"), "customer"),
            )),
            Stmt::new(StmtKind::Let(
                "val".into(),
                Expr::Call(
                    "myFunc".into(),
                    vec![
                        Expr::field(Expr::var("o"), "o_id"),
                        Expr::field(Expr::var("cust"), "c_birth_year"),
                    ],
                ),
            )),
            Stmt::new(StmtKind::Add("result".into(), Expr::var("val"))),
        ];
        loop_to_fold(
            "o",
            &Expr::LoadAll("Order".into()),
            &body,
            &mappings(),
            Some(&["result".to_string()]),
        )
        .unwrap()
    }

    #[test]
    fn lookup_to_join_produces_p1_shape() {
        let alts = expand_alternatives(p0_alternative(), 32);
        let join = alts
            .iter()
            .find(|a| a.rules_applied.contains(&"T4/T5var(lookup-to-join)"))
            .expect("join alternative");
        let text = join.display();
        assert!(
            text.contains("join customer on o_customer_sk = c_customer_sk"),
            "{text}"
        );
        assert!(text.contains("myFunc(o.o_id, o.c_birth_year)"), "{text}");
        assert!(join.prefetches.is_empty());
    }

    #[test]
    fn n1_produces_p2_shape() {
        let alts = expand_alternatives(p0_alternative(), 32);
        let pf = alts
            .iter()
            .find(|a| a.rules_applied.contains(&"N1"))
            .expect("prefetch alternative");
        let text = pf.display();
        assert!(text.contains("prefetch(customer,c_customer_sk)"), "{text}");
        assert!(
            text.contains("lookup(customer.c_customer_sk = o.o_customer_sk)"),
            "{text}"
        );
    }

    #[test]
    fn expansion_includes_original() {
        let base = p0_alternative();
        let base_key = base.key();
        let alts = expand_alternatives(base, 32);
        assert!(alts.iter().any(|a| a.key() == base_key));
        assert!(
            alts.len() >= 3,
            "P0, P1-like, P2-like at minimum: {}",
            alts.len()
        );
    }

    #[test]
    fn t5_full_extraction_single_aggregate() {
        // for (t : sales) { sum = sum + t.sale_amt }
        let body = vec![Stmt::new(StmtKind::Let(
            "sum".into(),
            Expr::bin(
                BinOp::Add,
                Expr::var("sum"),
                Expr::field(Expr::var("t"), "sale_amt"),
            ),
        ))];
        let base = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql(
                "select month, sale_amt from sales order by month",
            )),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let alts = expand_alternatives(base, 32);
        let agg = alts
            .iter()
            .find(|a| a.rules_applied.contains(&"T5"))
            .expect("aggregate alternative");
        let text = agg.display();
        assert!(
            text.contains("scalarQ[select sum(sale_amt) as agg_sum from sales]"),
            "order-by stripped, fold gone: {text}"
        );
    }

    #[test]
    fn t5_partial_keeps_loop_and_adds_query() {
        // Figure 7: dependent aggregations — partial extraction keeps the
        // loop and appends the aggregate query (the degraded §V-B rewrite).
        let body = vec![
            Stmt::new(StmtKind::Let(
                "sum".into(),
                Expr::bin(
                    BinOp::Add,
                    Expr::var("sum"),
                    Expr::field(Expr::var("t"), "sale_amt"),
                ),
            )),
            Stmt::new(StmtKind::Put(
                "cSum".into(),
                Expr::field(Expr::var("t"), "month"),
                Expr::var("sum"),
            )),
        ];
        let base = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql(
                "select month, sale_amt from sales order by month",
            )),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let alts = expand_alternatives(base, 32);
        let partial = alts
            .iter()
            .find(|a| a.rules_applied.contains(&"T5-partial"))
            .expect("partial alternative");
        assert_eq!(
            partial.assigns.len(),
            4,
            "entry capture + sum, cSum from loop + sum override"
        );
        assert_eq!(
            partial.assigns[0].0, "sum__at_entry",
            "the kept loop mutates `sum`, so its entry value is captured first"
        );
        let text = partial.display();
        assert!(text.contains("fold("), "loop kept: {text}");
        assert!(text.contains("scalarQ[select sum(sale_amt)"), "{text}");
        assert!(
            text.contains("sum__at_entry + coalesce("),
            "override preserves the entry value and guards empty input: {text}"
        );
    }

    #[test]
    fn join_rewrites_refuse_order_sensitive_accumulations() {
        // `total = total + total - t.o_amount` doubles the running value
        // each iteration: a join's pair order is not the nested-loop
        // order, so no join alternative may be derived for this fold.
        let body = vec![
            Stmt::new(StmtKind::Let(
                "cust".into(),
                Expr::nav(Expr::var("o"), "customer"),
            )),
            Stmt::new(StmtKind::Let(
                "total".into(),
                Expr::bin(
                    BinOp::Sub,
                    Expr::bin(BinOp::Add, Expr::var("total"), Expr::var("total")),
                    Expr::field(Expr::var("cust"), "c_birth_year"),
                ),
            )),
        ];
        let base = loop_to_fold(
            "o",
            &Expr::LoadAll("Order".into()),
            &body,
            &mappings(),
            Some(&["total".to_string()]),
        )
        .unwrap();
        let alts = expand_alternatives(base, 64);
        assert!(
            alts.iter().all(|a| !a
                .rules_applied
                .iter()
                .any(|r| r.contains("T4") || r.contains("join"))),
            "order-sensitive accumulation must not be join-rewritten: {:?}",
            alts.iter().map(|a| &a.rules_applied).collect::<Vec<_>>()
        );
        // The additive form stays join-rewritable.
        let additive = vec![
            Stmt::new(StmtKind::Let(
                "cust".into(),
                Expr::nav(Expr::var("o"), "customer"),
            )),
            Stmt::new(StmtKind::Let(
                "total".into(),
                Expr::bin(
                    BinOp::Sub,
                    Expr::var("total"),
                    Expr::field(Expr::var("cust"), "c_birth_year"),
                ),
            )),
        ];
        let base = loop_to_fold(
            "o",
            &Expr::LoadAll("Order".into()),
            &additive,
            &mappings(),
            Some(&["total".to_string()]),
        )
        .unwrap();
        let alts = expand_alternatives(base, 64);
        assert!(
            alts.iter()
                .any(|a| a.rules_applied.iter().any(|r| r.contains("join"))),
            "additive accumulation keeps its join alternatives"
        );
    }

    #[test]
    fn t2_pushes_conditional_into_query() {
        let body = vec![Stmt::new(StmtKind::If {
            cond: Expr::bin(
                BinOp::Gt,
                Expr::field(Expr::var("t"), "o_amount"),
                Expr::lit(10i64),
            ),
            then_branch: vec![Stmt::new(StmtKind::Add("r".into(), Expr::var("t")))],
            else_branch: vec![],
        })];
        let base = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql("select * from orders")),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let alts = expand_alternatives(base, 32);
        let pushed = alts
            .iter()
            .find(|a| a.rules_applied.contains(&"T2"))
            .expect("T2 alternative");
        let text = pushed.display();
        assert!(
            text.contains("Q[select * from orders where o_amount > 10]"),
            "{text}"
        );
        assert!(!text.contains("?("), "conditional gone: {text}");
    }

    #[test]
    fn t2_then_t1_turns_filtered_materialization_into_query() {
        // for (t : orders) { if (t.amount > 10) r.add(t) } — T2 + T1 give
        // r = σ(orders), requiring empty init.
        let body = vec![Stmt::new(StmtKind::If {
            cond: Expr::bin(
                BinOp::Gt,
                Expr::field(Expr::var("t"), "o_amount"),
                Expr::lit(10i64),
            ),
            then_branch: vec![Stmt::new(StmtKind::Add("r".into(), Expr::var("t")))],
            else_branch: vec![],
        })];
        let base = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql("select * from orders")),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let alts = expand_alternatives(base, 32);
        let t1 = alts
            .iter()
            .find(|a| a.rules_applied.contains(&"T1"))
            .expect("T1 alternative");
        assert_eq!(t1.requires_empty_init.as_deref(), Some("r"));
        let text = t1.display();
        assert!(
            text.contains("r=Q[select * from orders where o_amount > 10]"),
            "{text}"
        );
    }

    #[test]
    fn n2_pulls_selection_out_enabling_prefetch() {
        // for (t : σ_{st='open'}(orders)) { r.add(t.o_id) } — N2 pulls the
        // filter to the client; N1 can then prefetch the whole relation.
        let body = vec![Stmt::new(StmtKind::Add(
            "r".into(),
            Expr::field(Expr::var("t"), "o_id"),
        ))];
        let base = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql(
                "select * from orders where o_status = 'open'",
            )),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let alts = expand_alternatives(base, 64);
        let pulled = alts
            .iter()
            .find(|a| a.rules_applied.contains(&"N2"))
            .expect("N2 alternative");
        let text = pulled.display();
        assert!(text.contains("?((t.o_status = \"open\")"), "{text}");
        assert!(text.contains("Q[select * from orders]"), "{text}");
        // And some alternative prefetches the orders table by status.
        let prefetched = alts.iter().find(|a| {
            a.prefetches
                .iter()
                .any(|p| p.table == "orders" && p.key_col == "o_status")
        });
        assert!(prefetched.is_some(), "N1 after lookup-shaped source");
    }

    #[test]
    fn t4_nested_loop_join_identification() {
        let inner_iter = Expr::Query(
            QuerySpec::sql("select * from customer where c_customer_sk = :k")
                .bind("k", Expr::field(Expr::var("o"), "o_customer_sk")),
        );
        let body = vec![Stmt::new(StmtKind::ForEach {
            var: "c".into(),
            iter: inner_iter,
            body: vec![Stmt::new(StmtKind::Add(
                "result".into(),
                Expr::field(Expr::var("c"), "c_birth_year"),
            ))],
        })];
        let base = loop_to_fold(
            "o",
            &Expr::LoadAll("Order".into()),
            &body,
            &mappings(),
            Some(&["result".to_string()]),
        )
        .unwrap();
        let alts = expand_alternatives(base, 64);
        let joined = alts
            .iter()
            .find(|a| a.rules_applied.contains(&"T4"))
            .expect("T4 alternative");
        let text = joined.display();
        assert!(
            text.contains("join customer on o_customer_sk = c_customer_sk"),
            "{text}"
        );
        assert!(text.contains("insert(<result>, o.c_birth_year)"), "{text}");
        assert_eq!(text.matches("fold(").count(), 1, "single fold only: {text}");
    }

    #[test]
    fn expansion_terminates_under_cyclic_t2_n2() {
        let body = vec![Stmt::new(StmtKind::If {
            cond: Expr::bin(
                BinOp::Gt,
                Expr::field(Expr::var("t"), "o_amount"),
                Expr::lit(10i64),
            ),
            then_branch: vec![Stmt::new(StmtKind::Add("r".into(), Expr::var("t")))],
            else_branch: vec![],
        })];
        let base = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql("select * from orders")),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let alts = expand_alternatives(base, 1000);
        assert!(alts.len() < 100, "dedup bounds the closure: {}", alts.len());
        // T2 and N2 both fired somewhere in the closure.
        assert!(alts.iter().any(|a| a.rules_applied.contains(&"T2")));
        // N2 applied to the T2 result reproduces the base alternative and
        // is deduplicated away — exactly how cyclic rules terminate.
        let keys: Vec<String> = alts.iter().map(|a| a.key()).collect();
        let mut unique = keys.clone();
        unique.sort();
        unique.dedup();
        assert_eq!(unique.len(), keys.len(), "no duplicate alternatives");
    }
}
