//! The hash-consed F-IR expression DAG.

use minidb::{BinOp, SharedPlan, Value};
use std::collections::HashMap;

/// Index of a node in a [`FirArena`].
pub type FirId = usize;

/// An F-IR node.
///
/// Tuple variables are named by their loop variable so nested folds keep
/// their bindings apart (`TupleAttr("o", "o_id")` vs `TupleAttr("c", …)`).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum FirNode {
    /// Constant.
    Const(Value),
    /// Value of a variable at region entry.
    Param(String),
    /// `<v>` — parametric accumulator value (updated every iteration).
    AccParam(String),
    /// The current tuple of the fold with loop variable `0`.
    TupleVar(String),
    /// Attribute of the named fold's current tuple (`Q.x` in the paper).
    TupleAttr(String, String),
    /// Binary operation.
    Bin(BinOp, FirId, FirId),
    /// Negation.
    Not(FirId),
    /// Pure scalar function call.
    Call(String, Vec<FirId>),
    /// Collection insertion function (`insert` in rules T1/T4).
    Insert(FirId, FirId),
    /// Map insertion: `mapput(map, key, value)`.
    MapPut(FirId, FirId, FirId),
    /// `?(pred, then, else)` — conditional value (rule T2/N2's `?`).
    Cond {
        pred: FirId,
        then_val: FirId,
        else_val: FirId,
    },
    /// Tuple of expressions (the fold extension of §V-B).
    Tuple(Vec<FirId>),
    /// `project_i` — extract one component of a tuple expression.
    Project(FirId, usize),
    /// An embedded query; `binds` map its named parameters to F-IR values
    /// (a bind referencing an enclosing fold's tuple makes it correlated).
    /// The plan is `Arc`-shared with a precomputed fingerprint, so arena
    /// interning hashes it in O(1) and clones are refcount bumps.
    Query {
        plan: SharedPlan,
        binds: Vec<(String, FirId)>,
    },
    /// A query used as a scalar (first column of first row).
    ScalarQuery {
        plan: SharedPlan,
        binds: Vec<(String, FirId)>,
    },
    /// Column of a single-row source (a lookup query or cache lookup).
    RowField(FirId, String),
    /// Client-cache lookup: rows of `table` whose `key_col` equals `key`.
    CacheLookup {
        table: String,
        key_col: String,
        key: FirId,
    },
    /// A collection variable available at region entry.
    CollectionParam(String),
    /// `fold(func, init, source)`; `func` and `init` are [`FirNode::Tuple`]s
    /// aligned with `updated` (the accumulator variables, in order).
    Fold {
        func: FirId,
        init: FirId,
        source: FirId,
        loop_var: String,
        updated: Vec<String>,
    },
}

/// A hash-consed arena of F-IR nodes: structurally identical expressions
/// share one id, so common sub-expressions are shared (§V-B: "The
/// expressions may have common sub-expressions, which are shared").
///
/// Nodes are stored behind `Arc`, with the interning index keyed by the
/// same allocation: cloning an arena — which the rule driver does once
/// per candidate rewrite — bumps refcounts instead of deep-cloning (and
/// re-hashing) every node.
#[derive(Debug, Clone, Default)]
pub struct FirArena {
    nodes: Vec<std::sync::Arc<FirNode>>,
    index: HashMap<std::sync::Arc<FirNode>, FirId>,
}

impl FirArena {
    /// Empty arena.
    pub fn new() -> FirArena {
        FirArena::default()
    }

    /// Intern a node.
    pub fn add(&mut self, node: FirNode) -> FirId {
        // `Arc<FirNode>: Borrow<FirNode>` lets the owned map be probed by
        // reference without allocating.
        if let Some(&id) = self.index.get(&node) {
            return id;
        }
        let id = self.nodes.len();
        let node = std::sync::Arc::new(node);
        self.nodes.push(node.clone());
        self.index.insert(node, id);
        id
    }

    /// The node behind `id`.
    pub fn node(&self, id: FirId) -> &FirNode {
        &self.nodes[id]
    }

    /// Number of interned nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the arena is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Rewrite the DAG rooted at `id`, replacing nodes for which `subst`
    /// returns a replacement id. Children are rewritten first; `subst` is
    /// consulted on the *original* node id.
    pub fn rewrite(
        &mut self,
        id: FirId,
        subst: &impl Fn(FirId, &FirNode) -> Option<FirNode>,
    ) -> FirId {
        let node = (*self.nodes[id]).clone();
        if let Some(replacement) = subst(id, &node) {
            return self.add(replacement);
        }
        let rebuilt = match node {
            FirNode::Bin(op, l, r) => {
                let l2 = self.rewrite(l, subst);
                let r2 = self.rewrite(r, subst);
                FirNode::Bin(op, l2, r2)
            }
            FirNode::Not(e) => {
                let e2 = self.rewrite(e, subst);
                FirNode::Not(e2)
            }
            FirNode::Call(f, args) => {
                let args2 = args.into_iter().map(|a| self.rewrite(a, subst)).collect();
                FirNode::Call(f, args2)
            }
            FirNode::Insert(c, e) => {
                let c2 = self.rewrite(c, subst);
                let e2 = self.rewrite(e, subst);
                FirNode::Insert(c2, e2)
            }
            FirNode::MapPut(m, k, v) => {
                let m2 = self.rewrite(m, subst);
                let k2 = self.rewrite(k, subst);
                let v2 = self.rewrite(v, subst);
                FirNode::MapPut(m2, k2, v2)
            }
            FirNode::Cond {
                pred,
                then_val,
                else_val,
            } => {
                let p = self.rewrite(pred, subst);
                let t = self.rewrite(then_val, subst);
                let e = self.rewrite(else_val, subst);
                FirNode::Cond {
                    pred: p,
                    then_val: t,
                    else_val: e,
                }
            }
            FirNode::Tuple(items) => {
                let items2 = items.into_iter().map(|i| self.rewrite(i, subst)).collect();
                FirNode::Tuple(items2)
            }
            FirNode::Project(t, i) => {
                let t2 = self.rewrite(t, subst);
                FirNode::Project(t2, i)
            }
            FirNode::Query { plan, binds } => {
                let binds2 = binds
                    .into_iter()
                    .map(|(p, e)| (p, self.rewrite(e, subst)))
                    .collect();
                FirNode::Query {
                    plan,
                    binds: binds2,
                }
            }
            FirNode::ScalarQuery { plan, binds } => {
                let binds2 = binds
                    .into_iter()
                    .map(|(p, e)| (p, self.rewrite(e, subst)))
                    .collect();
                FirNode::ScalarQuery {
                    plan,
                    binds: binds2,
                }
            }
            FirNode::RowField(r, c) => {
                let r2 = self.rewrite(r, subst);
                FirNode::RowField(r2, c)
            }
            FirNode::CacheLookup {
                table,
                key_col,
                key,
            } => {
                let key2 = self.rewrite(key, subst);
                FirNode::CacheLookup {
                    table,
                    key_col,
                    key: key2,
                }
            }
            FirNode::Fold {
                func,
                init,
                source,
                loop_var,
                updated,
            } => {
                let f2 = self.rewrite(func, subst);
                let i2 = self.rewrite(init, subst);
                let s2 = self.rewrite(source, subst);
                FirNode::Fold {
                    func: f2,
                    init: i2,
                    source: s2,
                    loop_var,
                    updated,
                }
            }
            leaf @ (FirNode::Const(_)
            | FirNode::Param(_)
            | FirNode::AccParam(_)
            | FirNode::TupleVar(_)
            | FirNode::TupleAttr(_, _)
            | FirNode::CollectionParam(_)) => leaf,
        };
        self.add(rebuilt)
    }

    /// Collect every node id reachable from `id` (including itself),
    /// in post-order.
    pub fn reachable(&self, id: FirId) -> Vec<FirId> {
        let mut seen = Vec::new();
        let mut order = Vec::new();
        self.reachable_into(id, &mut seen, &mut order);
        order
    }

    /// [`FirArena::reachable`] into caller-owned buffers — hot loops
    /// traverse many roots and reuse one pair of scratch vectors instead
    /// of allocating per call. `order` is cleared and refilled.
    pub fn reachable_into(&self, id: FirId, seen: &mut Vec<bool>, order: &mut Vec<FirId>) {
        seen.clear();
        seen.resize(self.nodes.len(), false);
        order.clear();
        self.visit(id, seen, order);
    }

    /// True when `target` is reachable from `from` (early-exit DFS).
    pub fn reaches(&self, from: FirId, target: FirId) -> bool {
        if from == target {
            return true;
        }
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            let mut found = false;
            self.for_each_child(n, |c| {
                if c == target {
                    found = true;
                } else {
                    stack.push(c);
                }
            });
            if found {
                return true;
            }
        }
        false
    }

    fn visit(&self, id: FirId, seen: &mut Vec<bool>, order: &mut Vec<FirId>) {
        if seen[id] {
            return;
        }
        seen[id] = true;
        self.for_each_child(id, |c| self.visit(c, seen, order));
        order.push(id);
    }

    /// Direct children of a node.
    pub fn children(&self, id: FirId) -> Vec<FirId> {
        match self.node(id) {
            FirNode::Bin(_, l, r) => vec![*l, *r],
            FirNode::Not(e) | FirNode::Project(e, _) | FirNode::RowField(e, _) => vec![*e],
            FirNode::Call(_, args) => args.clone(),
            FirNode::Insert(a, b) => vec![*a, *b],
            FirNode::MapPut(a, b, c) => vec![*a, *b, *c],
            FirNode::Cond {
                pred,
                then_val,
                else_val,
            } => vec![*pred, *then_val, *else_val],
            FirNode::Tuple(items) => items.clone(),
            FirNode::Query { binds, .. } | FirNode::ScalarQuery { binds, .. } => {
                binds.iter().map(|(_, e)| *e).collect()
            }
            FirNode::CacheLookup { key, .. } => vec![*key],
            FirNode::Fold {
                func, init, source, ..
            } => vec![*func, *init, *source],
            _ => Vec::new(),
        }
    }

    /// True if any node reachable from `id` satisfies `pred` — an
    /// early-exit DFS that stops at the first match and visits shared
    /// sub-DAGs once (no post-order or `reachable` vector is built).
    pub fn any(&self, id: FirId, pred: &impl Fn(&FirNode) -> bool) -> bool {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            if pred(self.node(n)) {
                return true;
            }
            self.for_each_child(n, |c| stack.push(c));
        }
        false
    }

    /// Visit the direct children of `id` without allocating (the `Vec`
    /// that [`FirArena::children`] returns is pure overhead in traversal
    /// hot loops).
    pub fn for_each_child(&self, id: FirId, mut f: impl FnMut(FirId)) {
        match self.node(id) {
            FirNode::Bin(_, l, r) | FirNode::Insert(l, r) => {
                f(*l);
                f(*r);
            }
            FirNode::Not(e) | FirNode::Project(e, _) | FirNode::RowField(e, _) => f(*e),
            FirNode::Call(_, args) | FirNode::Tuple(args) => {
                for a in args {
                    f(*a);
                }
            }
            FirNode::MapPut(a, b, c) => {
                f(*a);
                f(*b);
                f(*c);
            }
            FirNode::Cond {
                pred,
                then_val,
                else_val,
            } => {
                f(*pred);
                f(*then_val);
                f(*else_val);
            }
            FirNode::Query { binds, .. } | FirNode::ScalarQuery { binds, .. } => {
                for (_, e) in binds {
                    f(*e);
                }
            }
            FirNode::CacheLookup { key, .. } => f(*key),
            FirNode::Fold {
                func, init, source, ..
            } => {
                f(*func);
                f(*init);
                f(*source);
            }
            FirNode::Const(_)
            | FirNode::Param(_)
            | FirNode::AccParam(_)
            | FirNode::TupleVar(_)
            | FirNode::TupleAttr(_, _)
            | FirNode::CollectionParam(_) => {}
        }
    }

    /// A stable 64-bit structural hash of the DAG rooted at `id`:
    /// arena-id-independent (child ids are replaced by their own
    /// structural hashes), so hashes compare across arenas. `memo` caches
    /// per-node results — pass a `vec![None; arena.len()]` (or shorter;
    /// it grows) and reuse it for every root of the same arena.
    pub fn structural_hash(&self, id: FirId, memo: &mut Vec<Option<u64>>) -> u64 {
        use std::hash::{Hash, Hasher};
        if memo.len() < self.nodes.len() {
            memo.resize(self.nodes.len(), None);
        }
        if let Some(h) = memo[id] {
            return h;
        }
        let mut h = minidb::StableHasher::new();
        let child = |s: &Self, m: &mut Vec<Option<u64>>, c: FirId| s.structural_hash(c, m);
        match self.node(id) {
            FirNode::Const(v) => {
                0u8.hash(&mut h);
                v.hash(&mut h);
            }
            FirNode::Param(s) => {
                1u8.hash(&mut h);
                s.hash(&mut h);
            }
            FirNode::AccParam(s) => {
                2u8.hash(&mut h);
                s.hash(&mut h);
            }
            FirNode::TupleVar(s) => {
                3u8.hash(&mut h);
                s.hash(&mut h);
            }
            FirNode::TupleAttr(v, c) => {
                4u8.hash(&mut h);
                v.hash(&mut h);
                c.hash(&mut h);
            }
            FirNode::Bin(op, l, r) => {
                5u8.hash(&mut h);
                op.hash(&mut h);
                let (l, r) = (*l, *r);
                child(self, memo, l).hash(&mut h);
                child(self, memo, r).hash(&mut h);
            }
            FirNode::Not(e) => {
                6u8.hash(&mut h);
                let e = *e;
                child(self, memo, e).hash(&mut h);
            }
            FirNode::Call(f, args) => {
                7u8.hash(&mut h);
                f.hash(&mut h);
                for &a in args {
                    child(self, memo, a).hash(&mut h);
                }
            }
            FirNode::Insert(a, b) => {
                8u8.hash(&mut h);
                let (a, b) = (*a, *b);
                child(self, memo, a).hash(&mut h);
                child(self, memo, b).hash(&mut h);
            }
            FirNode::MapPut(a, b, c) => {
                9u8.hash(&mut h);
                let (a, b, c) = (*a, *b, *c);
                child(self, memo, a).hash(&mut h);
                child(self, memo, b).hash(&mut h);
                child(self, memo, c).hash(&mut h);
            }
            FirNode::Cond {
                pred,
                then_val,
                else_val,
            } => {
                10u8.hash(&mut h);
                let (p, t, e) = (*pred, *then_val, *else_val);
                child(self, memo, p).hash(&mut h);
                child(self, memo, t).hash(&mut h);
                child(self, memo, e).hash(&mut h);
            }
            FirNode::Tuple(items) => {
                11u8.hash(&mut h);
                items.len().hash(&mut h);
                for &i in items {
                    child(self, memo, i).hash(&mut h);
                }
            }
            FirNode::Project(t, i) => {
                12u8.hash(&mut h);
                i.hash(&mut h);
                let t = *t;
                child(self, memo, t).hash(&mut h);
            }
            FirNode::Query { plan, binds } => {
                13u8.hash(&mut h);
                plan.fingerprint().as_u64().hash(&mut h);
                for (p, e) in binds {
                    p.hash(&mut h);
                    child(self, memo, *e).hash(&mut h);
                }
            }
            FirNode::ScalarQuery { plan, binds } => {
                14u8.hash(&mut h);
                plan.fingerprint().as_u64().hash(&mut h);
                for (p, e) in binds {
                    p.hash(&mut h);
                    child(self, memo, *e).hash(&mut h);
                }
            }
            FirNode::RowField(r, c) => {
                15u8.hash(&mut h);
                c.hash(&mut h);
                let r = *r;
                child(self, memo, r).hash(&mut h);
            }
            FirNode::CacheLookup {
                table,
                key_col,
                key,
            } => {
                16u8.hash(&mut h);
                table.hash(&mut h);
                key_col.hash(&mut h);
                let k = *key;
                child(self, memo, k).hash(&mut h);
            }
            FirNode::CollectionParam(s) => {
                17u8.hash(&mut h);
                s.hash(&mut h);
            }
            FirNode::Fold {
                func,
                init,
                source,
                loop_var,
                updated,
            } => {
                18u8.hash(&mut h);
                loop_var.hash(&mut h);
                updated.hash(&mut h);
                let (f0, i0, s0) = (*func, *init, *source);
                child(self, memo, f0).hash(&mut h);
                child(self, memo, i0).hash(&mut h);
                child(self, memo, s0).hash(&mut h);
            }
        }
        let out = h.finish();
        memo[id] = Some(out);
        out
    }

    /// Paper-style rendering, e.g. `fold(<sum> + t.sale_amt, tuple(0), Q)`.
    pub fn display(&self, id: FirId) -> String {
        match self.node(id) {
            FirNode::Const(v) => match v {
                Value::Str(s) => format!("{s:?}"),
                other => other.to_string(),
            },
            FirNode::Param(v) => v.clone(),
            FirNode::AccParam(v) => format!("<{v}>"),
            FirNode::TupleVar(v) => v.clone(),
            FirNode::TupleAttr(v, c) => format!("{v}.{c}"),
            FirNode::Bin(op, l, r) => {
                format!("({} {} {})", self.display(*l), op.sql(), self.display(*r))
            }
            FirNode::Not(e) => format!("not({})", self.display(*e)),
            FirNode::Call(f, args) => {
                let parts: Vec<String> = args.iter().map(|a| self.display(*a)).collect();
                format!("{f}({})", parts.join(", "))
            }
            FirNode::Insert(c, e) => {
                format!("insert({}, {})", self.display(*c), self.display(*e))
            }
            FirNode::MapPut(m, k, v) => format!(
                "mapput({}, {}, {})",
                self.display(*m),
                self.display(*k),
                self.display(*v)
            ),
            FirNode::Cond {
                pred,
                then_val,
                else_val,
            } => format!(
                "?({}, {}, {})",
                self.display(*pred),
                self.display(*then_val),
                self.display(*else_val)
            ),
            FirNode::Tuple(items) => {
                let parts: Vec<String> = items.iter().map(|i| self.display(*i)).collect();
                format!("tuple({})", parts.join(", "))
            }
            FirNode::Project(t, i) => format!("project{i}({})", self.display(*t)),
            FirNode::Query { plan, binds } => {
                if binds.is_empty() {
                    format!("Q[{}]", minidb::sql::print(plan))
                } else {
                    let bs: Vec<String> = binds
                        .iter()
                        .map(|(p, e)| format!("{p}={}", self.display(*e)))
                        .collect();
                    format!("Q[{} | {}]", minidb::sql::print(plan), bs.join(", "))
                }
            }
            FirNode::ScalarQuery { plan, binds } => {
                if binds.is_empty() {
                    format!("scalarQ[{}]", minidb::sql::print(plan))
                } else {
                    let bs: Vec<String> = binds
                        .iter()
                        .map(|(p, e)| format!("{p}={}", self.display(*e)))
                        .collect();
                    format!("scalarQ[{} | {}]", minidb::sql::print(plan), bs.join(", "))
                }
            }
            FirNode::RowField(r, c) => format!("{}.{c}", self.display(*r)),
            FirNode::CacheLookup {
                table,
                key_col,
                key,
            } => {
                format!("lookup({table}.{key_col} = {})", self.display(*key))
            }
            FirNode::CollectionParam(v) => v.clone(),
            FirNode::Fold {
                func, init, source, ..
            } => format!(
                "fold({}, {}, {})",
                self.display(*func),
                self.display(*init),
                self.display(*source)
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_shares_identical_nodes() {
        let mut a = FirArena::new();
        let x1 = a.add(FirNode::Param("x".into()));
        let x2 = a.add(FirNode::Param("x".into()));
        assert_eq!(x1, x2);
        let one = a.add(FirNode::Const(Value::Int(1)));
        let s1 = a.add(FirNode::Bin(BinOp::Add, x1, one));
        let s2 = a.add(FirNode::Bin(BinOp::Add, x2, one));
        assert_eq!(s1, s2);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn display_matches_paper_style() {
        // Figure 8's fold for the sum accumulator.
        let mut a = FirArena::new();
        let acc = a.add(FirNode::AccParam("sum".into()));
        let attr = a.add(FirNode::TupleAttr("t".into(), "sale_amt".into()));
        let add = a.add(FirNode::Bin(BinOp::Add, acc, attr));
        let func = a.add(FirNode::Tuple(vec![add]));
        let zero = a.add(FirNode::Const(Value::Int(0)));
        let init = a.add(FirNode::Tuple(vec![zero]));
        let q = a.add(FirNode::Query {
            plan: minidb::sql::parse("select month, sale_amt from sales order by month")
                .unwrap()
                .into(),
            binds: vec![],
        });
        let fold = a.add(FirNode::Fold {
            func,
            init,
            source: q,
            loop_var: "t".into(),
            updated: vec!["sum".into()],
        });
        let text = a.display(fold);
        assert!(
            text.starts_with("fold(tuple((<sum> + t.sale_amt)), tuple(0), Q["),
            "{text}"
        );
    }

    #[test]
    fn rewrite_substitutes_and_rebuilds() {
        let mut a = FirArena::new();
        let acc = a.add(FirNode::AccParam("v".into()));
        let attr = a.add(FirNode::TupleAttr("t".into(), "x".into()));
        let add = a.add(FirNode::Bin(BinOp::Add, acc, attr));
        // Rename tuple variable t → j.
        let renamed = a.rewrite(add, &|_, n| match n {
            FirNode::TupleAttr(v, c) if v == "t" => Some(FirNode::TupleAttr("j".into(), c.clone())),
            _ => None,
        });
        assert_eq!(a.display(renamed), "(<v> + j.x)");
        // Original untouched.
        assert_eq!(a.display(add), "(<v> + t.x)");
    }

    #[test]
    fn reachable_is_post_order_and_complete() {
        let mut a = FirArena::new();
        let x = a.add(FirNode::Param("x".into()));
        let y = a.add(FirNode::Param("y".into()));
        let add = a.add(FirNode::Bin(BinOp::Add, x, y));
        let order = a.reachable(add);
        assert_eq!(order, vec![x, y, add]);
    }

    #[test]
    fn any_detects_predicate() {
        let mut a = FirArena::new();
        let x = a.add(FirNode::Param("x".into()));
        let q = a.add(FirNode::Query {
            plan: minidb::sql::parse("select * from t").unwrap().into(),
            binds: vec![("p".into(), x)],
        });
        assert!(a.any(q, &|n| matches!(n, FirNode::Param(_))));
        assert!(!a.any(q, &|n| matches!(n, FirNode::Fold { .. })));
    }
}
