//! Conversion of cursor loops to fold expressions (Figure 9's `toFIR` /
//! `loopToFold`), by symbolic evaluation of the loop body.
//!
//! Every variable updated by the body becomes one accumulator; its update
//! expression is written over `<acc>` parameters (values at iteration
//! start), the loop tuple's attributes, and region-entry parameters. The
//! accumulators combine into a `tuple`, removing the old single-aggregate
//! precondition (§V-B) — dependent aggregations simply *read* the other
//! accumulator's in-iteration value, which symbolic evaluation resolves.
//!
//! ORM association navigation (`o.customer`) is lowered to a single-row
//! lookup query `σ_{pk = t.fk}(target)` — the shape rules N1 (prefetch)
//! and the T4/T5-variant (join rewrite) pattern-match on.

use crate::arena::{FirArena, FirId, FirNode};
use imperative::ast::{Expr, Stmt, StmtKind};
use imperative::deps::LoopAnalysis;
use minidb::{LogicalPlan, ScalarExpr};
use orm::MappingRegistry;
use std::collections::HashMap;

/// A prefetch obligation: cache `table` client-side, keyed by `key_col`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefetch {
    /// Table to prefetch.
    pub table: String,
    /// Key column for the client cache.
    pub key_col: String,
}

/// One F-IR alternative for a region: optional prefetches, then variable
/// assignments (each an F-IR expression — folds, queries, projections).
#[derive(Debug, Clone)]
pub struct FirAlternative {
    /// The expression arena (owned; alternatives are independent).
    pub arena: FirArena,
    /// Prefetches to perform before the assignments.
    pub prefetches: Vec<Prefetch>,
    /// `var ← expr`, in execution order.
    pub assigns: Vec<(String, FirId)>,
    /// Names of rules applied to reach this alternative.
    pub rules_applied: Vec<&'static str>,
    /// When set, this alternative is only valid if the named collection
    /// variable is empty at region entry (rule T1's `fold(insert, {}, Q)`).
    pub requires_empty_init: Option<String>,
}

impl FirAlternative {
    /// Compact structural key for deduplication: a stable 64-bit hash
    /// over prefetches (sorted), assignment targets and their expression
    /// DAGs (with plans contributing their fingerprints), and the
    /// empty-init requirement. Equal [`FirAlternative::key`] strings
    /// imply equal `dedup_key`s; the expansion driver dedups on this, so
    /// it never renders SQL text on the hot path.
    pub fn dedup_key(&self) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = minidb::StableHasher::new();
        let mut pf = self.prefetches.clone();
        pf.sort();
        pf.hash(&mut h);
        let mut memo: Vec<Option<u64>> = vec![None; self.arena.len()];
        self.assigns.len().hash(&mut h);
        for (v, id) in &self.assigns {
            v.hash(&mut h);
            self.arena.structural_hash(*id, &mut memo).hash(&mut h);
        }
        self.requires_empty_init.hash(&mut h);
        h.finish()
    }

    /// Structural key for deduplication (human-readable form; see
    /// [`FirAlternative::dedup_key`] for the hot-path variant).
    pub fn key(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut pf = self.prefetches.clone();
        pf.sort();
        for p in pf {
            parts.push(format!("prefetch({},{})", p.table, p.key_col));
        }
        for (v, id) in &self.assigns {
            parts.push(format!("{v}={}", self.arena.display(*id)));
        }
        if let Some(v) = &self.requires_empty_init {
            parts.push(format!("requires_empty({v})"));
        }
        parts.join("; ")
    }

    /// Paper-style rendering of the whole alternative.
    pub fn display(&self) -> String {
        self.key()
    }
}

struct Ctx<'a> {
    arena: FirArena,
    mappings: &'a MappingRegistry,
    /// loop variable → entity (for navigation lowering).
    entities: HashMap<String, String>,
}

/// Convert a cursor loop `for (var : iter) body` into a fold-based
/// [`FirAlternative`]. Returns `None` when the preconditions fail (the
/// caller keeps the loop as an opaque region).
///
/// `live_after` lists the variables live after the loop (the fold's output
/// state, §IV-A); `None` means "assume everything is live". Updated
/// variables that are *not* live and not loop-carried are treated as
/// per-iteration temporaries and resolved away by symbolic evaluation —
/// `cust` and `val` in P0 do not become accumulators.
pub fn loop_to_fold(
    var: &str,
    iter: &Expr,
    body: &[Stmt],
    mappings: &MappingRegistry,
    live_after: Option<&[String]>,
) -> Option<FirAlternative> {
    let analysis = LoopAnalysis::analyze(var, iter, body);
    if !analysis.foldable() {
        return None;
    }
    let carried = carried_vars(body);
    let accumulators: Vec<String> = analysis
        .updated
        .iter()
        .filter(|u| match live_after {
            None => true,
            Some(live) => live.contains(u) || carried.contains(u),
        })
        .cloned()
        .collect();
    if accumulators.is_empty() {
        return None; // a loop with no live outputs is dead code
    }
    let mut ctx = Ctx {
        arena: FirArena::new(),
        mappings,
        entities: HashMap::new(),
    };
    let fold = build_fold(&mut ctx, var, iter, body, &accumulators, None)?;
    let FirNode::Fold { updated, .. } = ctx.arena.node(fold).clone() else {
        unreachable!()
    };
    let assigns = updated
        .iter()
        .enumerate()
        .map(|(i, u)| (u.clone(), ctx.arena.add(FirNode::Project(fold, i))))
        .collect();
    Some(FirAlternative {
        arena: ctx.arena,
        prefetches: Vec::new(),
        assigns,
        rules_applied: vec!["toFIR"],
        requires_empty_init: None,
    })
}

/// Variables read before they are written in `body` (loop-carried uses);
/// these must remain accumulators even when dead after the loop.
fn carried_vars(body: &[Stmt]) -> Vec<String> {
    fn scan(
        stmts: &[Stmt],
        written: &mut std::collections::HashSet<String>,
        carried: &mut Vec<String>,
    ) {
        for s in stmts {
            let mut reads = Vec::new();
            match &s.kind {
                StmtKind::Let(_, e) | StmtKind::Add(_, e) | StmtKind::Print(e) => {
                    e.free_vars(&mut reads)
                }
                StmtKind::Put(_, k, v) => {
                    k.free_vars(&mut reads);
                    v.free_vars(&mut reads);
                }
                StmtKind::If {
                    cond,
                    then_branch,
                    else_branch,
                } => {
                    cond.free_vars(&mut reads);
                    for r in reads.drain(..) {
                        if !written.contains(&r) && !carried.contains(&r) {
                            carried.push(r);
                        }
                    }
                    let mut w_then = written.clone();
                    let mut w_else = written.clone();
                    scan(then_branch, &mut w_then, carried);
                    scan(else_branch, &mut w_else, carried);
                    // Only definitely-assigned variables count as written.
                    written.extend(w_then.intersection(&w_else).cloned());
                    continue;
                }
                StmtKind::ForEach { var, iter, body } => {
                    iter.free_vars(&mut reads);
                    let mut inner = written.clone();
                    inner.insert(var.clone());
                    scan(body, &mut inner, carried);
                }
                _ => {}
            }
            for r in reads {
                if !written.contains(&r) && !carried.contains(&r) {
                    carried.push(r);
                }
            }
            if let Some(u) = s.updated_var() {
                written.insert(u.to_string());
            }
        }
    }
    let mut carried = Vec::new();
    scan(body, &mut std::collections::HashSet::new(), &mut carried);
    carried
}

/// Build the fold node for one (possibly nested) loop. `outer_env`
/// supplies symbolic values for variables defined by enclosing scopes.
fn build_fold(
    ctx: &mut Ctx,
    var: &str,
    iter: &Expr,
    body: &[Stmt],
    accumulators: &[String],
    outer_env: Option<&HashMap<String, FirId>>,
) -> Option<FirId> {
    let source = sym_source(ctx, iter, var, outer_env)?;

    let updated = accumulators.to_vec();
    let mut env: HashMap<String, FirId> = HashMap::new();
    let mut init_items = Vec::with_capacity(updated.len());
    for u in &updated {
        // Initial value: the enclosing scope's current symbolic value
        // (nested folds continue accumulation), else the region-entry
        // parameter.
        let init = match outer_env.and_then(|e| e.get(u)) {
            Some(&id) => id,
            None => ctx.arena.add(FirNode::Param(u.clone())),
        };
        init_items.push(init);
        env.insert(u.clone(), ctx.arena.add(FirNode::AccParam(u.clone())));
    }
    // Non-updated outer bindings remain visible.
    if let Some(outer) = outer_env {
        for (k, &v) in outer {
            env.entry(k.clone()).or_insert(v);
        }
    }

    sym_stmts(ctx, body, var, &mut env)?;

    let func_items: Vec<FirId> = updated.iter().map(|u| env[u]).collect();
    let func = ctx.arena.add(FirNode::Tuple(func_items));
    let init = ctx.arena.add(FirNode::Tuple(init_items));
    Some(ctx.arena.add(FirNode::Fold {
        func,
        init,
        source,
        loop_var: var.to_string(),
        updated,
    }))
}

/// Symbolize the loop's source collection.
fn sym_source(
    ctx: &mut Ctx,
    iter: &Expr,
    loop_var: &str,
    outer_env: Option<&HashMap<String, FirId>>,
) -> Option<FirId> {
    match iter {
        Expr::LoadAll(entity) => {
            let m = ctx.mappings.entity(entity)?;
            let plan = LogicalPlan::scan(&m.table);
            ctx.entities.insert(loop_var.to_string(), entity.clone());
            Some(ctx.arena.add(FirNode::Query {
                plan: plan.into(),
                binds: Vec::new(),
            }))
        }
        Expr::Query(spec) => {
            let binds = spec
                .binds
                .iter()
                .map(|(p, e)| {
                    Some((
                        p.clone(),
                        sym_expr(ctx, e, "", &mut outer_env.cloned().unwrap_or_default())?,
                    ))
                })
                .collect::<Option<Vec<_>>>()?;
            // Track the entity when the query is a reshaping-free read of
            // one mapped table, so navigation on its rows still lowers.
            if let Some(t) = single_base_table(&spec.plan) {
                if let Some(m) = ctx.mappings.entity_for_table(t) {
                    ctx.entities.insert(loop_var.to_string(), m.entity.clone());
                }
            }
            Some(ctx.arena.add(FirNode::Query {
                plan: spec.plan.clone(),
                binds,
            }))
        }
        Expr::Var(v) => {
            if let Some(&id) = outer_env.and_then(|e| e.get(v)) {
                return Some(id);
            }
            Some(ctx.arena.add(FirNode::CollectionParam(v.clone())))
        }
        _ => None,
    }
}

fn single_base_table(plan: &LogicalPlan) -> Option<&str> {
    match plan {
        LogicalPlan::Scan { table, .. } => Some(table),
        LogicalPlan::Select { input, .. }
        | LogicalPlan::OrderBy { input, .. }
        | LogicalPlan::Limit { input, .. } => single_base_table(input),
        _ => None,
    }
}

fn sym_stmts(
    ctx: &mut Ctx,
    stmts: &[Stmt],
    loop_var: &str,
    env: &mut HashMap<String, FirId>,
) -> Option<()> {
    for s in stmts {
        match &s.kind {
            StmtKind::Let(x, e) => {
                let id = sym_expr(ctx, e, loop_var, env)?;
                env.insert(x.clone(), id);
            }
            StmtKind::Add(c, e) => {
                let base = *env.get(c)?;
                let elem = sym_expr(ctx, e, loop_var, env)?;
                let id = ctx.arena.add(FirNode::Insert(base, elem));
                env.insert(c.clone(), id);
            }
            StmtKind::Put(m, k, v) => {
                let base = *env.get(m)?;
                let key = sym_expr(ctx, k, loop_var, env)?;
                let val = sym_expr(ctx, v, loop_var, env)?;
                let id = ctx.arena.add(FirNode::MapPut(base, key, val));
                env.insert(m.clone(), id);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let pred = sym_expr(ctx, cond, loop_var, env)?;
                let mut env_t = env.clone();
                let mut env_e = env.clone();
                sym_stmts(ctx, then_branch, loop_var, &mut env_t)?;
                sym_stmts(ctx, else_branch, loop_var, &mut env_e)?;
                // Merge: variables whose value differs across branches get
                // a conditional value.
                let mut keys: Vec<String> = env_t.keys().chain(env_e.keys()).cloned().collect();
                keys.sort();
                keys.dedup();
                for k in keys {
                    let base = env.get(&k).copied();
                    let tv = env_t.get(&k).copied().or(base);
                    let ev = env_e.get(&k).copied().or(base);
                    let (Some(tv), Some(ev)) = (tv, ev) else {
                        // Defined in a single branch with no base value:
                        // reading it later would be unsound → give up.
                        continue;
                    };
                    if tv == ev {
                        env.insert(k, tv);
                    } else {
                        let id = ctx.arena.add(FirNode::Cond {
                            pred,
                            then_val: tv,
                            else_val: ev,
                        });
                        env.insert(k, id);
                    }
                }
            }
            StmtKind::ForEach {
                var: ivar,
                iter,
                body,
            } => {
                let inner = LoopAnalysis::analyze(ivar, iter, body);
                if !inner.foldable() {
                    return None;
                }
                // Inner loops keep every updated variable as accumulator —
                // their values may feed the rest of the outer iteration.
                // The enclosing loop's tuple stays in scope for both the
                // inner source's binds and the inner body.
                let mut scope = env.clone();
                let tv = ctx.arena.add(FirNode::TupleVar(loop_var.to_string()));
                scope.insert(loop_var.to_string(), tv);
                let fold = build_fold(ctx, ivar, iter, body, &inner.updated, Some(&scope))?;
                let FirNode::Fold { updated, .. } = ctx.arena.node(fold).clone() else {
                    unreachable!()
                };
                for (i, u) in updated.iter().enumerate() {
                    let id = ctx.arena.add(FirNode::Project(fold, i));
                    env.insert(u.clone(), id);
                }
            }
            // All other statement kinds are fold blockers; `LoopAnalysis`
            // rejected them before we got here.
            _ => return None,
        }
    }
    Some(())
}

fn sym_expr(
    ctx: &mut Ctx,
    e: &Expr,
    loop_var: &str,
    env: &mut HashMap<String, FirId>,
) -> Option<FirId> {
    match e {
        Expr::Var(v) if v == loop_var => Some(ctx.arena.add(FirNode::TupleVar(v.clone()))),
        Expr::Var(v) => match env.get(v) {
            Some(&id) => Some(id),
            None => Some(ctx.arena.add(FirNode::Param(v.clone()))),
        },
        Expr::Lit(v) => Some(ctx.arena.add(FirNode::Const(v.clone()))),
        Expr::Bin(op, l, r) => {
            let l2 = sym_expr(ctx, l, loop_var, env)?;
            let r2 = sym_expr(ctx, r, loop_var, env)?;
            Some(ctx.arena.add(FirNode::Bin(*op, l2, r2)))
        }
        Expr::Not(inner) => {
            let i = sym_expr(ctx, inner, loop_var, env)?;
            Some(ctx.arena.add(FirNode::Not(i)))
        }
        Expr::Field(base, col) => {
            let b = sym_expr(ctx, base, loop_var, env)?;
            match ctx.arena.node(b).clone() {
                FirNode::TupleVar(v) => Some(ctx.arena.add(FirNode::TupleAttr(v, col.clone()))),
                _ => Some(ctx.arena.add(FirNode::RowField(b, col.clone()))),
            }
        }
        Expr::Nav(base, field) => {
            let b = sym_expr(ctx, base, loop_var, env)?;
            // Navigation requires knowing the entity of the base row:
            // only loop tuples (of entity-known sources) are supported.
            let FirNode::TupleVar(v) = ctx.arena.node(b).clone() else {
                return None;
            };
            let entity = ctx.entities.get(&v)?.clone();
            let mapping = ctx.mappings.entity(&entity)?;
            let assoc = mapping.association(field)?;
            let target = ctx.mappings.entity(&assoc.target_entity)?;
            let plan = LogicalPlan::scan(&target.table).select(ScalarExpr::eq(
                ScalarExpr::col(&target.id_column),
                ScalarExpr::param("k"),
            ));
            let key = ctx
                .arena
                .add(FirNode::TupleAttr(v, assoc.fk_column.clone()));
            Some(ctx.arena.add(FirNode::Query {
                plan: plan.into(),
                binds: vec![("k".to_string(), key)],
            }))
        }
        Expr::Call(f, args) => {
            let ids = args
                .iter()
                .map(|a| sym_expr(ctx, a, loop_var, env))
                .collect::<Option<Vec<_>>>()?;
            Some(ctx.arena.add(FirNode::Call(f.clone(), ids)))
        }
        Expr::LoadAll(entity) => {
            let m = ctx.mappings.entity(entity)?;
            let plan = LogicalPlan::scan(&m.table);
            Some(ctx.arena.add(FirNode::Query {
                plan: plan.into(),
                binds: Vec::new(),
            }))
        }
        Expr::Query(spec) => {
            let binds = spec
                .binds
                .iter()
                .map(|(p, b)| Some((p.clone(), sym_expr(ctx, b, loop_var, env)?)))
                .collect::<Option<Vec<_>>>()?;
            Some(ctx.arena.add(FirNode::Query {
                plan: spec.plan.clone(),
                binds,
            }))
        }
        Expr::ScalarQuery(spec) => {
            let binds = spec
                .binds
                .iter()
                .map(|(p, b)| Some((p.clone(), sym_expr(ctx, b, loop_var, env)?)))
                .collect::<Option<Vec<_>>>()?;
            Some(ctx.arena.add(FirNode::ScalarQuery {
                plan: spec.plan.clone(),
                binds,
            }))
        }
        // Cache lookups, map reads and size() inside candidate loops are
        // out of F-IR's current scope: the loop stays imperative.
        Expr::LookupCache(_, _) | Expr::MapGet(_, _) | Expr::Len(_) => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use imperative::ast::QuerySpec;
    use minidb::BinOp;
    use orm::EntityMapping;

    fn mappings() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
            "customer",
            "Customer",
            "o_customer_sk",
        ));
        r.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
        r
    }

    fn let_stmt(v: &str, e: Expr) -> Stmt {
        Stmt::new(StmtKind::Let(v.into(), e))
    }

    #[test]
    fn figure_8_sum_and_csum_fold() {
        // Figure 7's loop: sum = sum + t.sale_amt; cSum.put(t.month, sum).
        let body = vec![
            let_stmt(
                "sum",
                Expr::bin(
                    BinOp::Add,
                    Expr::var("sum"),
                    Expr::field(Expr::var("t"), "sale_amt"),
                ),
            ),
            Stmt::new(StmtKind::Put(
                "cSum".into(),
                Expr::field(Expr::var("t"), "month"),
                Expr::var("sum"),
            )),
        ];
        let iter = Expr::Query(QuerySpec::sql(
            "select month, sale_amt from sales order by month",
        ));
        let alt = loop_to_fold("t", &iter, &body, &mappings(), None).expect("foldable");
        assert_eq!(alt.assigns.len(), 2);
        let (v0, p0) = &alt.assigns[0];
        assert_eq!(v0, "sum");
        let text = alt.arena.display(*p0);
        // project0(fold(tuple((<sum> + t.sale_amt), mapput(<cSum>, t.month,
        // (<sum> + t.sale_amt))), tuple(sum, cSum), Q[...]))
        assert!(
            text.starts_with("project0(fold(tuple((<sum> + t.sale_amt)"),
            "{text}"
        );
        assert!(
            text.contains("mapput(<cSum>, t.month, (<sum> + t.sale_amt))"),
            "{text}"
        );
        assert!(
            text.contains("tuple(sum, cSum)"),
            "init is region-entry values: {text}"
        );
    }

    #[test]
    fn navigation_lowers_to_lookup_query() {
        // P0's body.
        let body = vec![
            let_stmt("cust", Expr::nav(Expr::var("o"), "customer")),
            let_stmt(
                "val",
                Expr::Call(
                    "myFunc".into(),
                    vec![
                        Expr::field(Expr::var("o"), "o_id"),
                        Expr::field(Expr::var("cust"), "c_birth_year"),
                    ],
                ),
            ),
            Stmt::new(StmtKind::Add("result".into(), Expr::var("val"))),
        ];
        let alt = loop_to_fold(
            "o",
            &Expr::LoadAll("Order".into()),
            &body,
            &mappings(),
            Some(&["result".to_string()]),
        )
        .expect("foldable");
        let text = alt.arena.display(alt.assigns[0].1);
        assert!(
            text.contains("Q[select * from customer where c_customer_sk = :k | k=o.o_customer_sk]"),
            "navigation becomes a correlated lookup query: {text}"
        );
        assert!(text.contains(".c_birth_year"), "{text}");
        assert!(text.contains("myFunc(o.o_id"), "{text}");
    }

    #[test]
    fn conditional_update_becomes_cond_node() {
        let body = vec![Stmt::new(StmtKind::If {
            cond: Expr::bin(
                BinOp::Gt,
                Expr::field(Expr::var("t"), "amount"),
                Expr::lit(10i64),
            ),
            then_branch: vec![Stmt::new(StmtKind::Add("big".into(), Expr::var("t")))],
            else_branch: vec![],
        })];
        let alt = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql("select * from orders")),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let text = alt.arena.display(alt.assigns[0].1);
        assert!(
            text.contains("?((t.amount > 10), insert(<big>, t), <big>)"),
            "{text}"
        );
    }

    #[test]
    fn nested_cursor_loop_becomes_nested_fold() {
        // Pattern C shape: for o in orders { for c in σ(customer) { r.add } }
        let inner_iter = Expr::Query(
            QuerySpec::sql("select * from customer where c_customer_sk = :k")
                .bind("k", Expr::field(Expr::var("o"), "o_customer_sk")),
        );
        let body = vec![Stmt::new(StmtKind::ForEach {
            var: "c".into(),
            iter: inner_iter,
            body: vec![Stmt::new(StmtKind::Add(
                "result".into(),
                Expr::field(Expr::var("c"), "c_birth_year"),
            ))],
        })];
        let alt = loop_to_fold(
            "o",
            &Expr::LoadAll("Order".into()),
            &body,
            &mappings(),
            Some(&["result".to_string()]),
        )
        .expect("foldable");
        let text = alt.arena.display(alt.assigns[0].1);
        assert!(
            text.contains("fold(tuple(insert(<result>, c.c_birth_year))"),
            "{text}"
        );
        assert!(
            text.contains("k=o.o_customer_sk"),
            "inner source correlated: {text}"
        );
        // Inner init is the outer accumulator value.
        assert!(text.contains("tuple(<result>)"), "{text}");
    }

    #[test]
    fn non_foldable_loops_return_none() {
        let body = vec![Stmt::new(StmtKind::Print(Expr::var("t")))];
        assert!(loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql("select * from orders")),
            &body,
            &mappings(),
            None
        )
        .is_none());
    }

    #[test]
    fn pure_insert_fold_shape() {
        // for (t : Q) { r.add(t) } — rule T1's pattern.
        let body = vec![Stmt::new(StmtKind::Add("r".into(), Expr::var("t")))];
        let alt = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql("select * from orders")),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let text = alt.arena.display(alt.assigns[0].1);
        assert!(text.contains("insert(<r>, t)"), "{text}");
    }

    #[test]
    fn branch_local_temps_do_not_leak() {
        // tmp defined only in the then-branch, never read after: fine.
        let body = vec![Stmt::new(StmtKind::If {
            cond: Expr::lit(true),
            then_branch: vec![
                let_stmt("tmp", Expr::field(Expr::var("t"), "x")),
                Stmt::new(StmtKind::Add("r".into(), Expr::var("tmp"))),
            ],
            else_branch: vec![],
        })];
        let alt = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql("select * from orders")),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        assert_eq!(alt.assigns.len(), 2, "tmp and r both accumulate");
    }

    #[test]
    fn dedup_key_is_stable() {
        let body = vec![Stmt::new(StmtKind::Add("r".into(), Expr::var("t")))];
        let a1 = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql("select * from orders")),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        let a2 = loop_to_fold(
            "t",
            &Expr::Query(QuerySpec::sql("select * from orders")),
            &body,
            &mappings(),
            None,
        )
        .unwrap();
        assert_eq!(a1.key(), a2.key());
    }
}
