//! Dependency-free source-level repo lints, run in CI (`static-analysis`
//! job) as `cargo run -p analysis --bin repo_lint`.
//!
//! Two invariants, both established by earlier PRs and cheap to regress:
//!
//! * **Server locks must recover from poison.** PR 9 routed every lock
//!   acquisition in `crates/server` through the poison-recovering helpers
//!   in `crates/server/src/sync.rs`; a bare `.lock().unwrap()` /
//!   `.read().unwrap()` / `.write().unwrap()` anywhere else in the server
//!   crate would reintroduce poison-propagation on worker panic. (Other
//!   crates are exempt: they do not share locks with panicking workers,
//!   and their unwraps predate the invariant.)
//! * **The network simulator's clock stays virtual.** `crates/netsim`
//!   must never consult `Instant::now()` — determinism of every seeded
//!   test depends on it.
//!
//! Exit status 0 when clean; 1 with `file:line` diagnostics otherwise.

use std::path::{Path, PathBuf};

/// A lint: substring patterns searched in `.rs` files under `dir`,
/// skipping files named in `exempt`.
struct Lint {
    dir: &'static str,
    exempt: &'static [&'static str],
    patterns: &'static [&'static str],
    why: &'static str,
}

const LINTS: &[Lint] = &[
    Lint {
        dir: "crates/server/src",
        exempt: &["sync.rs"],
        patterns: &[".lock().unwrap()", ".read().unwrap()", ".write().unwrap()"],
        why: "server locks must use the poison-recovering helpers in \
              crates/server/src/sync.rs (PR 9 invariant)",
    },
    Lint {
        dir: "crates/netsim",
        exempt: &[],
        patterns: &["Instant::now()"],
        why: "netsim's clock is virtual; wall-clock reads break seeded determinism",
    },
];

fn main() {
    // crates/analysis/../.. is the workspace root.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();

    let mut violations = 0usize;
    for lint in LINTS {
        let base = root.join(lint.dir);
        let mut files = Vec::new();
        collect_rs_files(&base, &mut files);
        files.sort();
        for file in files {
            let name = file.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if lint.exempt.contains(&name) {
                continue;
            }
            let Ok(text) = std::fs::read_to_string(&file) else {
                continue;
            };
            for (lineno, line) in text.lines().enumerate() {
                if line.trim_start().starts_with("//") {
                    continue;
                }
                for pat in lint.patterns {
                    if line.contains(pat) {
                        violations += 1;
                        let rel = file.strip_prefix(&root).unwrap_or(&file);
                        println!(
                            "{}:{}: found `{}` — {}",
                            rel.display(),
                            lineno + 1,
                            pat,
                            lint.why
                        );
                    }
                }
            }
        }
    }

    if violations > 0 {
        println!("repo_lint: {violations} violation(s)");
        std::process::exit(1);
    }
    println!("repo_lint: clean");
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}
