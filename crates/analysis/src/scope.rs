//! Pass 3 — binding-leak detection.
//!
//! F-IR has exactly two binder forms: a fold's loop variable (referenced
//! through `TupleVar`/`TupleAttr`) and its accumulator markers
//! (`AccParam`), both scoped to the fold's `func` body. `init` and
//! `source` evaluate *before* an iteration exists, so they see only the
//! enclosing scope — which is how correlated sub-folds stay legal: an
//! inner fold's `source` may reference the *outer* loop variable, because
//! the inner fold sits inside the outer `func`.
//!
//! A reference outside its binder's body is a leak: the value it names
//! does not exist at evaluation time. PR 3 caught this bug class
//! dynamically (codegen binding leaks across `Cond` branches); this pass
//! rejects it without running anything.

use crate::{Diagnostic, Pass};
use fir::{FirAlternative, FirArena, FirId, FirNode};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeSet, HashSet};
use std::hash::{Hash, Hasher};

/// The bindings visible at a point of the walk.
#[derive(Clone, Default)]
struct Scope {
    /// Loop variables of enclosing folds (row bindings).
    tuples: BTreeSet<String>,
    /// Accumulator names of enclosing folds (fold markers).
    accs: BTreeSet<String>,
}

impl Scope {
    /// Stable fingerprint for memoization: shared DAG nodes are revisited
    /// only under scopes they have not been checked in yet.
    fn signature(&self) -> u64 {
        let mut h = DefaultHasher::new();
        for t in &self.tuples {
            ("t", t).hash(&mut h);
        }
        for a in &self.accs {
            ("a", a).hash(&mut h);
        }
        h.finish()
    }
}

/// Check that no row binding or fold marker escapes its defining fold
/// body. See the module docs for the scoping rules.
///
/// # Errors
///
/// A [`Diagnostic`] naming the leaking node and binding.
pub fn check_scopes(alt: &FirAlternative) -> Result<(), Diagnostic> {
    let mut visited: HashSet<(FirId, u64)> = HashSet::new();
    let scope = Scope::default();
    for (var, root) in &alt.assigns {
        walk(&alt.arena, *root, &scope, &mut visited).map_err(|mut d| {
            d.message = format!("in the assignment to `{var}`: {}", d.message);
            d
        })?;
    }
    Ok(())
}

fn walk(
    arena: &FirArena,
    id: FirId,
    scope: &Scope,
    visited: &mut HashSet<(FirId, u64)>,
) -> Result<(), Diagnostic> {
    if !visited.insert((id, scope.signature())) {
        return Ok(());
    }
    match arena.node(id) {
        FirNode::TupleVar(v) | FirNode::TupleAttr(v, _) => {
            if !scope.tuples.contains(v) {
                return Err(Diagnostic::new(
                    Pass::Scope,
                    Some(id),
                    format!("row binding `{v}` escapes the fold body that defines it"),
                ));
            }
        }
        FirNode::AccParam(v) => {
            if !scope.accs.contains(v) {
                return Err(Diagnostic::new(
                    Pass::Scope,
                    Some(id),
                    format!("accumulator marker `<{v}>` escapes the fold body that defines it"),
                ));
            }
        }
        FirNode::Fold {
            func,
            init,
            source,
            loop_var,
            updated,
        } => {
            // init and source evaluate before any iteration: outer scope.
            walk(arena, *init, scope, visited)?;
            walk(arena, *source, scope, visited)?;
            let mut inner = scope.clone();
            inner.tuples.insert(loop_var.clone());
            inner.accs.extend(updated.iter().cloned());
            walk(arena, *func, &inner, visited)?;
        }
        _ => {
            let mut result = Ok(());
            arena.for_each_child(id, |child| {
                if result.is_ok() {
                    result = walk(arena, child, scope, visited);
                }
            });
            result?;
        }
    }
    Ok(())
}
