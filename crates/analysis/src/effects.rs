//! Pass 2 — effect analysis and rewrite soundness.
//!
//! Two granularities:
//!
//! * [`alternative_effects`] — the observable effect set of one
//!   [`FirAlternative`]: tables read (queries, cache lookups and
//!   prefetches), tables read *under a `LIMIT`*, variables written, and
//!   scalar functions invoked (both F-IR `Call` nodes and `Func`
//!   expressions embedded in query plans, so a rewrite that pushes a call
//!   into SQL is not misread as dropping it).
//! * [`region_effects`] — variable/table read-write sets of an imperative
//!   statement region, generalizing `imperative::deps::LoopAnalysis`
//!   (which reports reads and updated variables for one loop) and
//!   `cobra_core`'s `reads_of_region` (variable reads only) to arbitrary
//!   regions with table-level effects.
//!
//! [`check_rewrite`] is the soundness judgment: a derived alternative
//! must preserve the base's effect set modulo the applied rules' declared
//! [`EffectDelta`]. Concretely — writes may only grow (T5-partial adds an
//! entry-snapshot assign; *dropping* a write is always unsound), table
//! reads are preserved exactly unless the delta allows adding (N1) or
//! dropping them, scalar calls are preserved exactly modulo declared
//! introductions (T5's `coalesce`), and no table read may become
//! `LIMIT`-truncated when the base read it unlimited — the
//! `broken_limit_rule` bug class, rejected here without executing a row.

use crate::{Diagnostic, Pass};
use fir::{EffectDelta, FirAlternative, FirArena, FirId, FirNode};
use imperative::ast::{Expr, Stmt, StmtKind};
use minidb::{LogicalPlan, ScalarExpr};
use orm::MappingRegistry;
use std::collections::BTreeSet;

/// The observable effects of an F-IR alternative.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EffectSet {
    /// Tables read by queries, cache lookups, or prefetches.
    pub table_reads: BTreeSet<String>,
    /// The subset of `table_reads` scanned under a `LIMIT` clause.
    pub limited_reads: BTreeSet<String>,
    /// Variables the alternative assigns (region outputs).
    pub writes: BTreeSet<String>,
    /// Scalar functions invoked, in F-IR or inside query plans.
    pub calls: BTreeSet<String>,
}

/// Compute the [`EffectSet`] of an alternative: the union over every
/// assignment root of node effects, plus assign targets as writes and
/// prefetched tables as reads.
#[must_use]
pub fn alternative_effects(alt: &FirAlternative) -> EffectSet {
    let mut fx = EffectSet::default();
    for (var, root) in &alt.assigns {
        fx.writes.insert(var.clone());
        collect_node(&alt.arena, *root, &mut fx);
    }
    for p in &alt.prefetches {
        fx.table_reads.insert(p.table.clone());
    }
    fx
}

/// Accumulate the read/call effects of the DAG under `root` into `fx`.
pub fn node_effects(arena: &FirArena, root: FirId, fx: &mut EffectSet) {
    collect_node(arena, root, fx);
}

fn collect_node(arena: &FirArena, root: FirId, fx: &mut EffectSet) {
    for id in arena.reachable(root) {
        match arena.node(id) {
            FirNode::Call(name, _) => {
                fx.calls.insert(name.clone());
            }
            FirNode::Query { plan, .. } | FirNode::ScalarQuery { plan, .. } => {
                collect_plan(plan.as_plan(), fx);
            }
            FirNode::CacheLookup { table, .. } => {
                fx.table_reads.insert(table.clone());
            }
            _ => {}
        }
    }
}

fn collect_plan(plan: &LogicalPlan, fx: &mut EffectSet) {
    plan.walk(&mut |p| match p {
        LogicalPlan::Scan { table, .. } => {
            fx.table_reads.insert(table.clone());
        }
        LogicalPlan::Limit { input, .. } => {
            for t in input.base_tables() {
                fx.limited_reads.insert(t.to_string());
            }
        }
        LogicalPlan::Select { pred, .. } | LogicalPlan::Join { pred, .. } => {
            collect_expr_calls(pred, &mut fx.calls);
        }
        LogicalPlan::Project { items, .. } => {
            for (e, _) in items {
                collect_expr_calls(e, &mut fx.calls);
            }
        }
        LogicalPlan::Aggregate { aggs, .. } => {
            for a in aggs {
                if let Some(e) = &a.arg {
                    collect_expr_calls(e, &mut fx.calls);
                }
            }
        }
        LogicalPlan::OrderBy { .. } => {}
    });
}

fn collect_expr_calls(e: &ScalarExpr, calls: &mut BTreeSet<String>) {
    match e {
        ScalarExpr::Func(name, args) => {
            calls.insert(name.clone());
            for a in args {
                collect_expr_calls(a, calls);
            }
        }
        ScalarExpr::Bin(_, l, r) => {
            collect_expr_calls(l, calls);
            collect_expr_calls(r, calls);
        }
        ScalarExpr::Not(inner) => collect_expr_calls(inner, calls),
        ScalarExpr::Col(_) | ScalarExpr::Lit(_) | ScalarExpr::Param(_) => {}
    }
}

fn err(node: Option<FirId>, message: String) -> Diagnostic {
    Diagnostic::new(Pass::Effects, node, message)
}

/// The rewrite-soundness judgment. See the module docs for the rules.
///
/// # Errors
///
/// A [`Diagnostic`] naming the first effect deviation `delta` does not
/// license, anchored at an offending node where one exists.
pub fn check_rewrite(
    base: &FirAlternative,
    derived: &FirAlternative,
    delta: &EffectDelta,
) -> Result<(), Diagnostic> {
    let b = alternative_effects(base);
    let d = alternative_effects(derived);

    for w in &b.writes {
        if !d.writes.contains(w) {
            return Err(err(
                None,
                format!("rewrite silently drops the write to `{w}`"),
            ));
        }
    }

    if !delta.may_add_reads {
        if let Some(t) = d.table_reads.difference(&b.table_reads).next() {
            return Err(err(
                find_reader(derived, t),
                format!("rewrite reads table `{t}` which the base does not (undeclared)"),
            ));
        }
    }
    if !delta.may_drop_reads {
        if let Some(t) = b.table_reads.difference(&d.table_reads).next() {
            return Err(err(
                None,
                format!("rewrite drops the base's read of table `{t}` (undeclared)"),
            ));
        }
    }

    if let Some(t) = d.limited_reads.difference(&b.limited_reads).next() {
        return Err(err(
            find_limiter(derived, t),
            format!(
                "rewrite truncates its read of table `{t}` with a LIMIT the base \
                 does not have (rows stolen)"
            ),
        ));
    }
    for t in b.limited_reads.difference(&d.limited_reads) {
        if d.table_reads.contains(t) {
            return Err(err(
                find_reader(derived, t),
                format!(
                    "rewrite drops the LIMIT the base applies to table `{t}` \
                     (rows added)"
                ),
            ));
        }
    }

    for c in d.calls.difference(&b.calls) {
        if !delta.may_introduce_calls.contains(&c.as_str()) {
            return Err(err(
                find_caller(derived, c),
                format!("rewrite introduces a call to `{c}` the rule did not declare"),
            ));
        }
    }
    if let Some(c) = b.calls.difference(&d.calls).next() {
        return Err(err(
            None,
            format!("rewrite silently drops the call to `{c}`"),
        ));
    }

    Ok(())
}

/// First reachable node of `alt` that reads `table`, for diagnostics.
fn find_reader(alt: &FirAlternative, table: &str) -> Option<FirId> {
    find_node(alt, &|arena, id| match arena.node(id) {
        FirNode::Query { plan, .. } | FirNode::ScalarQuery { plan, .. } => {
            plan.as_plan().base_tables().contains(&table)
        }
        FirNode::CacheLookup { table: t, .. } => t == table,
        _ => false,
    })
}

/// First reachable node whose plan puts `table` under a `LIMIT`.
fn find_limiter(alt: &FirAlternative, table: &str) -> Option<FirId> {
    find_node(alt, &|arena, id| match arena.node(id) {
        FirNode::Query { plan, .. } | FirNode::ScalarQuery { plan, .. } => {
            let mut hit = false;
            plan.as_plan().walk(&mut |p| {
                if let LogicalPlan::Limit { input, .. } = p {
                    hit |= input.base_tables().contains(&table);
                }
            });
            hit
        }
        _ => false,
    })
}

/// First reachable node that invokes `name`, in F-IR or inside a plan.
fn find_caller(alt: &FirAlternative, name: &str) -> Option<FirId> {
    find_node(alt, &|arena, id| match arena.node(id) {
        FirNode::Call(n, _) => n == name,
        FirNode::Query { plan, .. } | FirNode::ScalarQuery { plan, .. } => {
            let mut fx = EffectSet::default();
            collect_plan(plan.as_plan(), &mut fx);
            fx.calls.contains(name)
        }
        _ => false,
    })
}

fn find_node(alt: &FirAlternative, pred: &dyn Fn(&FirArena, FirId) -> bool) -> Option<FirId> {
    for (_, root) in &alt.assigns {
        for id in alt.arena.reachable(*root) {
            if pred(&alt.arena, id) {
                return Some(id);
            }
        }
    }
    None
}

/// Variable- and table-level read/write sets of an imperative region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegionEffects {
    /// Variables read before the region defines them (external reads).
    pub var_reads: BTreeSet<String>,
    /// Variables the region assigns or accumulates into.
    pub var_writes: BTreeSet<String>,
    /// Tables read by queries, `loadAll`, or association navigation.
    pub table_reads: BTreeSet<String>,
    /// Tables written by `update` statements.
    pub table_writes: BTreeSet<String>,
}

/// Compute the [`RegionEffects`] of a statement region.
///
/// Generalizes `imperative::deps::LoopAnalysis` (one loop, variables
/// only) to arbitrary statement lists with table-level effects. `loadAll`
/// resolves entity names through `mappings`; association navigation
/// (`obj.assoc`) conservatively adds the target table of *every* mapping
/// declaring an association of that name, since the object's entity is
/// not tracked statically.
#[must_use]
pub fn region_effects(stmts: &[Stmt], mappings: &MappingRegistry) -> RegionEffects {
    let mut fx = RegionEffects::default();
    let mut locals = BTreeSet::new();
    walk_stmts(stmts, &mut locals, &mut fx, mappings);
    fx
}

fn walk_stmts(
    stmts: &[Stmt],
    locals: &mut BTreeSet<String>,
    fx: &mut RegionEffects,
    mappings: &MappingRegistry,
) {
    for stmt in stmts {
        match &stmt.kind {
            StmtKind::Let(x, e) => {
                expr_effects(e, locals, fx, mappings);
                fx.var_writes.insert(x.clone());
                locals.insert(x.clone());
            }
            StmtKind::NewCollection(x) | StmtKind::NewMap(x) => {
                fx.var_writes.insert(x.clone());
                locals.insert(x.clone());
            }
            StmtKind::Add(x, e) => {
                expr_effects(e, locals, fx, mappings);
                if !locals.contains(x) {
                    fx.var_reads.insert(x.clone());
                }
                fx.var_writes.insert(x.clone());
            }
            StmtKind::Put(x, k, v) => {
                expr_effects(k, locals, fx, mappings);
                expr_effects(v, locals, fx, mappings);
                if !locals.contains(x) {
                    fx.var_reads.insert(x.clone());
                }
                fx.var_writes.insert(x.clone());
            }
            StmtKind::ForEach { var, iter, body } => {
                expr_effects(iter, locals, fx, mappings);
                let mut inner = locals.clone();
                inner.insert(var.clone());
                walk_stmts(body, &mut inner, fx, mappings);
            }
            StmtKind::While { cond, body } => {
                expr_effects(cond, locals, fx, mappings);
                let mut inner = locals.clone();
                walk_stmts(body, &mut inner, fx, mappings);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                expr_effects(cond, locals, fx, mappings);
                // Branch-local definitions do not dominate the join point.
                let mut then_locals = locals.clone();
                walk_stmts(then_branch, &mut then_locals, fx, mappings);
                let mut else_locals = locals.clone();
                walk_stmts(else_branch, &mut else_locals, fx, mappings);
            }
            StmtKind::Print(e) => expr_effects(e, locals, fx, mappings),
            StmtKind::Return(e) => {
                if let Some(e) = e {
                    expr_effects(e, locals, fx, mappings);
                }
            }
            StmtKind::Break => {}
            StmtKind::CacheByColumn { cache, source, .. } => {
                expr_effects(source, locals, fx, mappings);
                fx.var_writes.insert(cache.clone());
                locals.insert(cache.clone());
            }
            StmtKind::UpdateQuery {
                table, value, key, ..
            } => {
                expr_effects(value, locals, fx, mappings);
                expr_effects(key, locals, fx, mappings);
                // An UPDATE reads the rows it rewrites.
                fx.table_reads.insert(table.clone());
                fx.table_writes.insert(table.clone());
            }
            StmtKind::LetCall(x, _, args) => {
                for a in args {
                    expr_effects(a, locals, fx, mappings);
                }
                fx.var_writes.insert(x.clone());
                locals.insert(x.clone());
            }
            StmtKind::TryCatch { body, handler } => {
                let mut body_locals = locals.clone();
                walk_stmts(body, &mut body_locals, fx, mappings);
                let mut handler_locals = locals.clone();
                walk_stmts(handler, &mut handler_locals, fx, mappings);
            }
        }
    }
}

fn expr_effects(
    e: &Expr,
    locals: &BTreeSet<String>,
    fx: &mut RegionEffects,
    mappings: &MappingRegistry,
) {
    let mut vars = Vec::new();
    e.free_vars(&mut vars);
    for v in vars {
        if !locals.contains(&v) {
            fx.var_reads.insert(v);
        }
    }
    collect_expr_tables(e, fx, mappings);
}

fn collect_expr_tables(e: &Expr, fx: &mut RegionEffects, mappings: &MappingRegistry) {
    match e {
        Expr::LoadAll(entity) => {
            if let Some(m) = mappings.entity(entity) {
                fx.table_reads.insert(m.table.clone());
            }
        }
        Expr::Query(spec) | Expr::ScalarQuery(spec) => {
            for t in spec.plan.as_plan().base_tables() {
                fx.table_reads.insert(t.to_string());
            }
            for (_, b) in &spec.binds {
                collect_expr_tables(b, fx, mappings);
            }
        }
        Expr::Nav(obj, assoc) => {
            collect_expr_tables(obj, fx, mappings);
            for m in mappings.iter() {
                if let Some(a) = m.association(assoc) {
                    if let Some(target) = mappings.entity(&a.target_entity) {
                        fx.table_reads.insert(target.table.clone());
                    }
                }
            }
        }
        Expr::Bin(_, l, r) | Expr::MapGet(l, r) => {
            collect_expr_tables(l, fx, mappings);
            collect_expr_tables(r, fx, mappings);
        }
        Expr::Not(inner) | Expr::Field(inner, _) | Expr::Len(inner) => {
            collect_expr_tables(inner, fx, mappings);
        }
        Expr::Call(_, args) => {
            for a in args {
                collect_expr_tables(a, fx, mappings);
            }
        }
        Expr::LookupCache(_, key) => collect_expr_tables(key, fx, mappings),
        Expr::Var(_) | Expr::Lit(_) => {}
    }
}
