//! Static verification of F-IR programs and rewrite-rule outputs.
//!
//! Cobra's correctness story used to be entirely dynamic: unsound rewrites
//! were caught by the differential oracle *executing* hundreds of seeded
//! programs. This crate makes the same bug classes statically checkable,
//! so a broken rule is rejected in microseconds — before anything runs —
//! with a diagnostic naming the pass and the offending arena node.
//!
//! Three passes, in the order they run:
//!
//! 1. **Well-formedness** ([`check_wellformed`]): arena references are
//!    acyclic and defined before use (the hash-consing invariant that
//!    every child id precedes its parent), fold `func`/`init` tuples are
//!    balanced against the accumulator list, query plans carry a bind for
//!    every parameter they use, and `requires_empty_init` names a real
//!    assignment.
//! 2. **Effect analysis** ([`effects`]): read/write/call sets per
//!    alternative ([`EffectSet`]) and per imperative region
//!    ([`RegionEffects`], generalizing `imperative::deps::LoopAnalysis`).
//!    The rewrite-soundness check ([`effects::check_rewrite`]) demands
//!    that a derived alternative preserve the base's effects modulo the
//!    rule's declared [`fir::EffectDelta`]: N1 may add prefetch reads, T5
//!    may introduce `coalesce`, and nothing may silently drop a write,
//!    change the tables read, or truncate a read with a `LIMIT` the base
//!    did not have (the `broken_limit_rule` bug class).
//! 3. **Binding-leak detection** ([`check_scopes`]): a scoped-environment
//!    walk asserting no row binding (`TupleVar`/`TupleAttr`) or fold
//!    accumulator marker (`AccParam`) escapes the fold body that defines
//!    it — the bug class behind PR 3's codegen binding leaks.
//!
//! The optimizer wires these in behind `OptimizerConfig::verify_rewrites`
//! (`VerifyLevel::{Off,Panic,Reject}`); see `cobra_core`.

pub mod effects;
pub mod scope;
pub mod wellformed;

pub use effects::{alternative_effects, region_effects, EffectSet, RegionEffects};
pub use scope::check_scopes;
pub use wellformed::check_wellformed;

use fir::{EffectDelta, FirAlternative, FirId};

/// Which verifier pass produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pass {
    /// Pass 1 — structural well-formedness of the arena and alternative.
    WellFormed,
    /// Pass 2 — effect (read/write/call set) soundness of a rewrite.
    Effects,
    /// Pass 3 — binding/scope discipline (no leaks out of fold bodies).
    Scope,
}

impl std::fmt::Display for Pass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Pass::WellFormed => write!(f, "pass 1 (well-formedness)"),
            Pass::Effects => write!(f, "pass 2 (effect analysis)"),
            Pass::Scope => write!(f, "pass 3 (binding-leak)"),
        }
    }
}

/// A verification failure: the pass that found it, the offending arena
/// node (when one exists — a *dropped* write has no node to point at),
/// the rule whose application produced the alternative, and the message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The pass that rejected the alternative.
    pub pass: Pass,
    /// Offending node in the alternative's arena, if the defect is a node.
    pub node: Option<FirId>,
    /// The most recently applied rule (from `rules_applied`), if known.
    pub rule: Option<&'static str>,
    /// Human-readable description of the defect.
    pub message: String,
}

impl Diagnostic {
    fn new(pass: Pass, node: Option<FirId>, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            pass,
            node,
            rule: None,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.pass)?;
        if let Some(node) = self.node {
            write!(f, " at node {node}")?;
        }
        if let Some(rule) = self.rule {
            write!(f, " [rule {rule}]")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for Diagnostic {}

/// Run passes 1 and 3 on a single alternative (no rewrite to compare
/// against): well-formedness, then binding-leak detection.
///
/// # Errors
///
/// The first [`Diagnostic`] any pass produces.
pub fn verify_alternative(alt: &FirAlternative) -> Result<(), Diagnostic> {
    check_wellformed(alt)?;
    check_scopes(alt)
}

/// Full static verification of a rewrite: passes 1 and 3 on the derived
/// alternative, then pass 2 comparing its effect set against the base's,
/// modulo the applied rules' declared `delta`.
///
/// The returned diagnostic is attributed to the most recently applied
/// rule (the last entry of `derived.rules_applied` past the `"toFIR"`
/// base tag).
///
/// # Errors
///
/// The first [`Diagnostic`] any pass produces.
pub fn verify_rewrite(
    base: &FirAlternative,
    derived: &FirAlternative,
    delta: &EffectDelta,
) -> Result<(), Diagnostic> {
    let attribute = |mut d: Diagnostic| {
        d.rule = derived
            .rules_applied
            .iter()
            .rev()
            .find(|t| **t != "toFIR")
            .copied();
        d
    };
    verify_alternative(derived).map_err(attribute)?;
    effects::check_rewrite(base, derived, delta).map_err(attribute)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fir::{FirArena, FirNode};
    use imperative::ast::{Expr, Stmt, StmtKind};
    use minidb::Value;
    use orm::{EntityMapping, MappingRegistry};

    fn single(arena: FirArena, root: FirId) -> FirAlternative {
        FirAlternative {
            arena,
            prefetches: Vec::new(),
            assigns: vec![("out".to_string(), root)],
            rules_applied: vec!["toFIR"],
            requires_empty_init: None,
        }
    }

    #[test]
    fn diagnostic_display_names_pass_node_and_rule() {
        let mut d = Diagnostic::new(Pass::Effects, Some(17), "boom");
        d.rule = Some("Xbug");
        assert_eq!(
            d.to_string(),
            "pass 2 (effect analysis) at node 17 [rule Xbug]: boom"
        );
    }

    #[test]
    fn wellformed_rejects_out_of_range_project() {
        let mut arena = FirArena::new();
        let c = arena.add(FirNode::Const(Value::Int(1)));
        let tuple = arena.add(FirNode::Tuple(vec![c]));
        let bad = arena.add(FirNode::Project(tuple, 3));
        let diag = check_wellformed(&single(arena, bad)).unwrap_err();
        assert_eq!(diag.pass, Pass::WellFormed);
        assert_eq!(diag.node, Some(bad));
        assert!(diag.message.contains("out of range"), "{diag}");
    }

    #[test]
    fn wellformed_rejects_empty_assignment_list() {
        let mut alt = single(FirArena::new(), 0);
        alt.assigns.clear();
        let diag = check_wellformed(&alt).unwrap_err();
        assert!(diag.message.contains("no assignments"), "{diag}");
    }

    #[test]
    fn scope_rejects_a_top_level_row_binding() {
        let mut arena = FirArena::new();
        let leak = arena.add(FirNode::TupleVar("o".to_string()));
        let diag = check_scopes(&single(arena, leak)).unwrap_err();
        assert_eq!(diag.pass, Pass::Scope);
        assert_eq!(diag.node, Some(leak));
        assert!(diag.message.contains("escapes the fold body"), "{diag}");
    }

    #[test]
    fn check_rewrite_flags_dropped_write_and_honors_delta() {
        let mut arena = FirArena::new();
        let c = arena.add(FirNode::Const(Value::Int(1)));
        let base = FirAlternative {
            arena,
            prefetches: Vec::new(),
            assigns: vec![("a".to_string(), c), ("b".to_string(), c)],
            rules_applied: vec!["toFIR"],
            requires_empty_init: None,
        };
        let mut derived = base.clone();
        derived.assigns.pop();
        derived.rules_applied.push("Xdrop");
        let delta = EffectDelta::default();
        let diag = verify_rewrite(&base, &derived, &delta).unwrap_err();
        assert_eq!(diag.pass, Pass::Effects);
        assert_eq!(diag.rule, Some("Xdrop"));
        assert!(diag.message.contains("drops the write to `b`"), "{diag}");
        // The same pair with the write intact verifies clean.
        assert!(verify_rewrite(&base, &base, &delta).is_ok());
    }

    #[test]
    fn check_rewrite_allows_new_calls_only_when_declared() {
        let mut arena = FirArena::new();
        let c = arena.add(FirNode::Const(Value::Int(1)));
        let base = single(arena, c);
        let mut derived = base.clone();
        let call = derived
            .arena
            .add(FirNode::Call("coalesce".to_string(), vec![c]));
        derived.assigns[0].1 = call;
        let undeclared = EffectDelta::default();
        let diag = effects::check_rewrite(&base, &derived, &undeclared).unwrap_err();
        assert!(diag.message.contains("coalesce"), "{diag}");
        let declared = EffectDelta::introduces_calls(&["coalesce"]);
        assert!(effects::check_rewrite(&base, &derived, &declared).is_ok());
    }

    #[test]
    fn region_effects_tracks_vars_tables_and_updates() {
        let mut mappings = MappingRegistry::new();
        mappings.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
            "customer",
            "Customer",
            "o_customer_sk",
        ));
        mappings.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
        let region = vec![
            Stmt::new(StmtKind::ForEach {
                var: "o".to_string(),
                iter: Expr::LoadAll("Order".to_string()),
                body: vec![
                    Stmt::new(StmtKind::Let(
                        "cust".to_string(),
                        Expr::nav(Expr::var("o"), "customer"),
                    )),
                    Stmt::new(StmtKind::Add(
                        "total".to_string(),
                        Expr::field(Expr::var("cust"), "c_birth_year"),
                    )),
                ],
            }),
            Stmt::new(StmtKind::UpdateQuery {
                table: "orders".to_string(),
                set_col: "o_qty".to_string(),
                value: Expr::var("total"),
                key_col: "o_id".to_string(),
                key: Expr::lit(Value::Int(1)),
            }),
        ];
        let fx = region_effects(&region, &mappings);
        assert!(fx.table_reads.contains("orders"), "{fx:?}");
        assert!(fx.table_reads.contains("customer"), "{fx:?}");
        assert_eq!(
            fx.table_writes.iter().collect::<Vec<_>>(),
            vec!["orders"],
            "only the UPDATE writes"
        );
        // `total` is accumulated before any local definition: an external
        // read and a write. Loop-local `o`/`cust` never escape.
        assert!(fx.var_reads.contains("total"), "{fx:?}");
        assert!(fx.var_writes.contains("total"), "{fx:?}");
        assert!(!fx.var_reads.contains("o"), "{fx:?}");
        assert!(!fx.var_reads.contains("cust"), "{fx:?}");
    }
}
