//! Pass 1 — structural well-formedness of an [`FirAlternative`].
//!
//! The checks lean on the hash-consing construction invariant: a node can
//! only be interned after its children, so **every child id is strictly
//! smaller than its parent's id**. One linear scan therefore rules out
//! both dangling references and cycles. Unreachable nodes are *not* an
//! error — rewrites legitimately strand the sub-expressions they replace
//! (the arena is an append-only hash-consed pool, not a garbage-collected
//! heap).

use crate::{Diagnostic, Pass};
use fir::{FirAlternative, FirArena, FirId, FirNode};

fn err(node: Option<FirId>, message: String) -> Diagnostic {
    Diagnostic::new(Pass::WellFormed, node, message)
}

/// Check structural well-formedness. See the module docs for the rules.
///
/// # Errors
///
/// The first structural defect found, as a [`Diagnostic`] naming the
/// offending node where one exists.
pub fn check_wellformed(alt: &FirAlternative) -> Result<(), Diagnostic> {
    let arena = &alt.arena;

    if alt.assigns.is_empty() {
        return Err(err(
            None,
            "alternative has no assignments: every write was dropped".into(),
        ));
    }

    // Def-before-use over the whole arena: child ids strictly precede
    // their parent's. Catches dangling ids and reference cycles at once.
    for id in 0..arena.len() {
        let mut bad = None;
        arena.for_each_child(id, |child| {
            if child >= id && bad.is_none() {
                bad = Some(child);
            }
        });
        if let Some(child) = bad {
            return Err(err(
                Some(id),
                format!(
                    "node {id} references child {child} which does not precede it \
                     (dangling or cyclic reference)"
                ),
            ));
        }
    }

    for (var, root) in &alt.assigns {
        if *root >= arena.len() {
            return Err(err(
                Some(*root),
                format!("assignment to `{var}` points at node {root}, past the arena end"),
            ));
        }
        for id in arena.reachable(*root) {
            check_node(arena, id)?;
        }
    }

    if let Some(var) = &alt.requires_empty_init {
        if !alt.assigns.iter().any(|(v, _)| v == var) {
            return Err(err(
                None,
                format!("requires_empty_init names `{var}`, which no assignment targets"),
            ));
        }
    }

    for p in &alt.prefetches {
        if p.table.is_empty() || p.key_col.is_empty() {
            return Err(err(
                None,
                format!(
                    "prefetch of table `{}` keyed by `{}` has an empty component",
                    p.table, p.key_col
                ),
            ));
        }
    }

    Ok(())
}

fn check_node(arena: &FirArena, id: FirId) -> Result<(), Diagnostic> {
    match arena.node(id) {
        FirNode::Fold {
            func,
            init,
            updated,
            loop_var,
            ..
        } => {
            if updated.is_empty() {
                return Err(err(Some(id), "fold has no accumulator variables".into()));
            }
            let mut names = updated.clone();
            names.sort_unstable();
            names.dedup();
            if names.len() != updated.len() {
                return Err(err(
                    Some(id),
                    format!("fold accumulators are not distinct: {updated:?}"),
                ));
            }
            if updated.iter().any(|u| u == loop_var) {
                return Err(err(
                    Some(id),
                    format!("fold loop variable `{loop_var}` shadows an accumulator"),
                ));
            }
            for (role, tuple_id) in [("func", *func), ("init", *init)] {
                match arena.node(tuple_id) {
                    FirNode::Tuple(items) if items.len() == updated.len() => {}
                    FirNode::Tuple(items) => {
                        return Err(err(
                            Some(id),
                            format!(
                                "fold {role} tuple has {} items for {} accumulators \
                                 (markers unbalanced)",
                                items.len(),
                                updated.len()
                            ),
                        ));
                    }
                    other => {
                        return Err(err(
                            Some(id),
                            format!(
                                "fold {role} must be a Tuple aligned with the \
                                 accumulators, found {other:?}"
                            ),
                        ));
                    }
                }
            }
        }
        FirNode::Query { plan, binds } | FirNode::ScalarQuery { plan, binds } => {
            let mut names: Vec<&str> = binds.iter().map(|(n, _)| n.as_str()).collect();
            names.sort_unstable();
            let before = names.len();
            names.dedup();
            if names.len() != before {
                return Err(err(Some(id), "query binds the same parameter twice".into()));
            }
            for param in plan.as_plan().params() {
                if !names.contains(&param.as_str()) {
                    return Err(err(
                        Some(id),
                        format!("query plan uses parameter `:{param}` with no bind"),
                    ));
                }
            }
        }
        FirNode::Project(tuple, idx) => match arena.node(*tuple) {
            FirNode::Tuple(items) if *idx >= items.len() => {
                return Err(err(
                    Some(id),
                    format!(
                        "project_{idx} out of range for a {}-item tuple",
                        items.len()
                    ),
                ));
            }
            FirNode::Fold { updated, .. } if *idx >= updated.len() => {
                return Err(err(
                    Some(id),
                    format!(
                        "project_{idx} out of range for a fold over {} accumulators",
                        updated.len()
                    ),
                ));
            }
            _ => {}
        },
        _ => {}
    }
    Ok(())
}
