//! Pseudo-code printer for programs.
//!
//! Renders functions the way the paper's listings read, e.g.:
//!
//! ```text
//! processOrders(result) {
//!   result = {};
//!   for (o : loadAll(Order)) {
//!     cust = o.customer;
//!     val = myFunc(o.o_id, cust.c_birth_year);
//!     result.add(val);
//!   }
//! }
//! ```

use crate::ast::{Expr, Function, Stmt, StmtKind};
use minidb::sql;
use std::fmt::Write as _;

/// Render a function as pseudo-code.
pub fn function_to_string(f: &Function) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}({}) {{", f.name, f.params.join(", "));
    write_stmts(&mut out, &f.body, 1);
    out.push_str("}\n");
    out
}

/// Render a whole program: every function, entry first.
pub fn program_to_string(p: &crate::ast::Program) -> String {
    let mut out = String::new();
    for (i, f) in p.functions.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        out.push_str(&function_to_string(f));
    }
    out
}

/// Render a statement list at the given indent depth.
pub fn stmts_to_string(stmts: &[Stmt]) -> String {
    let mut out = String::new();
    write_stmts(&mut out, stmts, 0);
    out
}

/// Render one expression.
pub fn expr_to_string(e: &Expr) -> String {
    match e {
        Expr::Var(v) => v.clone(),
        Expr::Lit(v) => match v {
            minidb::Value::Str(s) => format!("{s:?}"),
            other => other.to_string(),
        },
        Expr::Bin(op, l, r) => {
            format!("{} {} {}", expr_to_string(l), op.sql(), expr_to_string(r))
        }
        Expr::Not(inner) => format!("!({})", expr_to_string(inner)),
        Expr::Field(b, f) => format!("{}.{}", expr_to_string(b), f),
        Expr::Nav(b, f) => format!("{}.{}", expr_to_string(b), f),
        Expr::Call(f, args) => {
            let rendered: Vec<String> = args.iter().map(expr_to_string).collect();
            format!("{f}({})", rendered.join(", "))
        }
        Expr::LoadAll(entity) => format!("loadAll({entity})"),
        Expr::Query(q) => {
            if q.binds.is_empty() {
                format!("executeQuery(\"{}\")", sql::print(&q.plan))
            } else {
                let binds: Vec<String> = q
                    .binds
                    .iter()
                    .map(|(p, e)| format!("{p}={}", expr_to_string(e)))
                    .collect();
                format!(
                    "executeQuery(\"{}\", {})",
                    sql::print(&q.plan),
                    binds.join(", ")
                )
            }
        }
        Expr::ScalarQuery(q) => {
            if q.binds.is_empty() {
                format!("executeScalar(\"{}\")", sql::print(&q.plan))
            } else {
                let binds: Vec<String> = q
                    .binds
                    .iter()
                    .map(|(p, e)| format!("{p}={}", expr_to_string(e)))
                    .collect();
                format!(
                    "executeScalar(\"{}\", {})",
                    sql::print(&q.plan),
                    binds.join(", ")
                )
            }
        }
        Expr::LookupCache(cache, key) => {
            format!("Utils.lookupCache({cache}, {})", expr_to_string(key))
        }
        Expr::MapGet(m, k) => format!("{}.get({})", expr_to_string(m), expr_to_string(k)),
        Expr::Len(c) => format!("{}.size()", expr_to_string(c)),
    }
}

fn write_stmts(out: &mut String, stmts: &[Stmt], depth: usize) {
    for s in stmts {
        write_stmt(out, s, depth);
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_stmt(out: &mut String, s: &Stmt, depth: usize) {
    indent(out, depth);
    match &s.kind {
        StmtKind::Let(v, e) => {
            let _ = writeln!(out, "{v} = {};", expr_to_string(e));
        }
        StmtKind::NewCollection(v) => {
            let _ = writeln!(out, "{v} = {{}};");
        }
        StmtKind::NewMap(v) => {
            let _ = writeln!(out, "{v} = new Map();");
        }
        StmtKind::Add(c, e) => {
            let _ = writeln!(out, "{c}.add({});", expr_to_string(e));
        }
        StmtKind::Put(m, k, v) => {
            let _ = writeln!(
                out,
                "{m}.put({}, {});",
                expr_to_string(k),
                expr_to_string(v)
            );
        }
        StmtKind::ForEach { var, iter, body } => {
            let _ = writeln!(out, "for ({var} : {}) {{", expr_to_string(iter));
            write_stmts(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        StmtKind::While { cond, body } => {
            let _ = writeln!(out, "while ({}) {{", expr_to_string(cond));
            write_stmts(out, body, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
        StmtKind::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "if ({}) {{", expr_to_string(cond));
            write_stmts(out, then_branch, depth + 1);
            indent(out, depth);
            if else_branch.is_empty() {
                out.push_str("}\n");
            } else {
                out.push_str("} else {\n");
                write_stmts(out, else_branch, depth + 1);
                indent(out, depth);
                out.push_str("}\n");
            }
        }
        StmtKind::Print(e) => {
            let _ = writeln!(out, "print({});", expr_to_string(e));
        }
        StmtKind::Return(Some(e)) => {
            let _ = writeln!(out, "return {};", expr_to_string(e));
        }
        StmtKind::Return(None) => {
            out.push_str("return;\n");
        }
        StmtKind::Break => {
            out.push_str("break;\n");
        }
        StmtKind::CacheByColumn {
            cache,
            source,
            key_col,
        } => {
            let _ = writeln!(
                out,
                "{cache} = Utils.cacheByColumn({}, '{key_col}');",
                expr_to_string(source)
            );
        }
        StmtKind::UpdateQuery {
            table,
            set_col,
            value,
            key_col,
            key,
        } => {
            let _ = writeln!(
                out,
                "executeUpdate(\"update {table} set {set_col} = ? where {key_col} = ?\", {}, {});",
                expr_to_string(value),
                expr_to_string(key)
            );
        }
        StmtKind::LetCall(v, f, args) => {
            let rendered: Vec<String> = args.iter().map(expr_to_string).collect();
            let _ = writeln!(out, "{v} = {f}({});", rendered.join(", "));
        }
        StmtKind::TryCatch { body, handler } => {
            out.push_str("try {\n");
            write_stmts(out, body, depth + 1);
            indent(out, depth);
            out.push_str("} catch {\n");
            write_stmts(out, handler, depth + 1);
            indent(out, depth);
            out.push_str("}\n");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QuerySpec;
    use minidb::BinOp;

    #[test]
    fn renders_p0_like_the_paper() {
        let f = Function::new(
            "processOrders",
            vec!["result".to_string()],
            vec![
                Stmt::new(StmtKind::NewCollection("result".into())),
                Stmt::new(StmtKind::ForEach {
                    var: "o".into(),
                    iter: Expr::LoadAll("Order".into()),
                    body: vec![
                        Stmt::new(StmtKind::Let(
                            "cust".into(),
                            Expr::nav(Expr::var("o"), "customer"),
                        )),
                        Stmt::new(StmtKind::Add("result".into(), Expr::var("cust"))),
                    ],
                }),
            ],
        );
        let text = function_to_string(&f);
        assert!(text.contains("processOrders(result) {"));
        assert!(text.contains("for (o : loadAll(Order)) {"));
        assert!(text.contains("cust = o.customer;"));
        assert!(text.contains("result.add(cust);"));
    }

    #[test]
    fn renders_queries_with_sql_text() {
        let e = Expr::Query(QuerySpec::sql("select * from orders"));
        assert_eq!(expr_to_string(&e), "executeQuery(\"select * from orders\")");
    }

    #[test]
    fn renders_parameterized_queries_with_binds() {
        let e = Expr::Query(
            QuerySpec::sql("select * from customer where c_customer_sk = :cust")
                .bind("cust", Expr::field(Expr::var("o"), "o_customer_sk")),
        );
        let s = expr_to_string(&e);
        assert!(s.contains(":cust"), "{s}");
        assert!(s.contains("cust=o.o_customer_sk"), "{s}");
    }

    #[test]
    fn renders_if_else_and_while() {
        let f = Function::new(
            "t",
            vec![],
            vec![Stmt::new(StmtKind::If {
                cond: Expr::bin(BinOp::Gt, Expr::var("x"), Expr::lit(0i64)),
                then_branch: vec![Stmt::new(StmtKind::Print(Expr::var("x")))],
                else_branch: vec![Stmt::new(StmtKind::While {
                    cond: Expr::lit(false),
                    body: vec![Stmt::new(StmtKind::Break)],
                })],
            })],
        );
        let text = function_to_string(&f);
        assert!(text.contains("if (x > 0) {"));
        assert!(text.contains("} else {"));
        assert!(text.contains("while (false) {"));
        assert!(text.contains("break;"));
    }

    #[test]
    fn renders_cache_operations() {
        let s = Stmt::new(StmtKind::CacheByColumn {
            cache: "custCache".into(),
            source: Expr::LoadAll("Customer".into()),
            key_col: "c_customer_sk".into(),
        });
        let text = stmts_to_string(&[s]);
        assert!(
            text.contains("custCache = Utils.cacheByColumn(loadAll(Customer), 'c_customer_sk');")
        );
        let lookup = Expr::LookupCache(
            "custCache".into(),
            Box::new(Expr::field(Expr::var("o"), "o_customer_sk")),
        );
        assert_eq!(
            expr_to_string(&lookup),
            "Utils.lookupCache(custCache, o.o_customer_sk)"
        );
    }
}
