//! The mini imperative language in which the paper's application programs
//! are written.
//!
//! The paper's prototype analyses Java/Hibernate bytecode through Soot; our
//! substitute is a small structured language rich enough for every program
//! in the paper: ORM access (`loadAll`, association navigation), embedded
//! SQL (`executeQuery` with named parameters), collections and maps,
//! loops over query results (cursor loops), conditionals, client-side
//! caches (`cacheByColumn`/`lookupCache`), database updates, opaque pure
//! functions (`myFunc`), user-defined procedures, and `try/catch` (which
//! produces *unstructured* regions, exercising COBRA's black-box path).
//!
//! The crate provides:
//! * [`ast`] — statements, expressions and functions (with line numbers),
//! * [`mod@cfg`] — lowering to a control-flow graph whose nodes are single
//!   statements (the paper treats each statement as a basic block),
//! * [`regions`] — the region tree built directly from the structured AST,
//! * [`structural`] — Muchnick-style structural analysis that rebuilds the
//!   region tree from the *CFG* (the paper's construction), verified
//!   against [`regions`] on structured programs,
//! * [`deps`] — loop dependence analysis feeding the F-IR preconditions,
//! * [`pretty`] — a pseudo-code printer used by the examples.

pub mod ast;
pub mod cfg;
pub mod deps;
pub mod pretty;
pub mod regions;
pub mod structural;

pub use ast::{Expr, Function, Program, QuerySpec, Stmt, StmtKind};
pub use cfg::{Cfg, NodeId, NodeKind};
pub use deps::{Blocker, LoopAnalysis};
pub use regions::{Region, RegionKind};
