//! Structural analysis: region tree from the control-flow graph.
//!
//! This is the paper's construction (§III-B, following Muchnick): regions
//! are discovered by iteratively collapsing schema patterns in the CFG —
//! sequences, if-then, if-then-else, and while/cursor loops — until one
//! region remains. Fragments that match no pattern (exceptional edges from
//! `try/catch`) leave the reduction stuck, and the analysis reports the
//! program as unstructured; COBRA then falls back to AST-derived regions
//! where such fragments become black boxes.
//!
//! The result is verified (in tests and property tests) to have the same
//! shape as [`crate::regions::Region::from_function`] on structured
//! programs.

use crate::ast::Function;
use crate::cfg::{Cfg, NodeKind};
use crate::regions::{Region, RegionKind};

/// Why structural analysis failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Unstructured {
    /// The reduction got stuck with this many live nodes remaining.
    Irreducible { remaining: usize },
}

impl std::fmt::Display for Unstructured {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Unstructured::Irreducible { remaining } => {
                write!(f, "irreducible control flow ({remaining} nodes left)")
            }
        }
    }
}

/// Node state during reduction.
#[derive(Debug, Clone)]
struct AbsNode {
    region: Region,
    kind: AbsKind,
    succs: Vec<usize>,
    preds: Vec<usize>,
    alive: bool,
}

#[derive(Debug, Clone, PartialEq)]
enum AbsKind {
    Entry,
    Exit,
    Plain,
    LoopHead { var: String, iter: crate::ast::Expr },
    WhileHead { cond: crate::ast::Expr },
    Branch { cond: crate::ast::Expr },
}

/// Run structural analysis on `f`'s CFG.
pub fn analyze(f: &Function) -> Result<Region, Unstructured> {
    let cfg = Cfg::build(f);
    analyze_cfg(&cfg)
}

/// Run structural analysis on an already-built CFG.
pub fn analyze_cfg(cfg: &Cfg) -> Result<Region, Unstructured> {
    let mut g = Graph::from_cfg(cfg);
    g.reduce();
    g.finish()
}

struct Graph {
    nodes: Vec<AbsNode>,
    entry: usize,
    exit: usize,
}

impl Graph {
    fn from_cfg(cfg: &Cfg) -> Graph {
        let nodes = cfg
            .nodes
            .iter()
            .map(|n| {
                let (kind, region) = match &n.kind {
                    NodeKind::Entry => (AbsKind::Entry, Region::empty()),
                    NodeKind::Exit => (AbsKind::Exit, Region::empty()),
                    NodeKind::Join => (AbsKind::Plain, Region::empty()),
                    NodeKind::Simple(s) => (AbsKind::Plain, Region::from_stmt(s)),
                    NodeKind::LoopHead { var, iter } => (
                        AbsKind::LoopHead {
                            var: var.clone(),
                            iter: iter.clone(),
                        },
                        Region::empty(),
                    ),
                    NodeKind::WhileHead { cond } => {
                        (AbsKind::WhileHead { cond: cond.clone() }, Region::empty())
                    }
                    NodeKind::Branch { cond } => {
                        (AbsKind::Branch { cond: cond.clone() }, Region::empty())
                    }
                };
                AbsNode {
                    region,
                    kind,
                    succs: n.succs.clone(),
                    preds: n.preds.clone(),
                    alive: true,
                }
            })
            .collect();
        Graph {
            nodes,
            entry: cfg.entry,
            exit: cfg.exit,
        }
    }

    fn reduce(&mut self) {
        loop {
            if self.collapse_loop() || self.collapse_branch() || self.collapse_seq() {
                continue;
            }
            break;
        }
    }

    fn finish(self) -> Result<Region, Unstructured> {
        // Success: entry → (one plain node) → exit, or entry → exit.
        let live: Vec<usize> = (0..self.nodes.len())
            .filter(|&i| self.nodes[i].alive)
            .collect();
        let inner: Vec<usize> = live
            .iter()
            .copied()
            .filter(|&i| i != self.entry && i != self.exit)
            .collect();
        match inner.len() {
            0 => Ok(Region::empty()),
            1 if self.nodes[inner[0]].kind == AbsKind::Plain => {
                Ok(self.nodes[inner[0]].region.normalize())
            }
            n => Err(Unstructured::Irreducible { remaining: n }),
        }
    }

    // -- helpers --------------------------------------------------------

    fn kill(&mut self, id: usize) {
        self.nodes[id].alive = false;
        self.nodes[id].succs.clear();
        self.nodes[id].preds.clear();
    }

    fn remove_pred(&mut self, node: usize, pred: usize) {
        self.nodes[node].preds.retain(|&p| p != pred);
    }

    fn replace_pred(&mut self, node: usize, from: usize, to: usize) {
        for p in &mut self.nodes[node].preds {
            if *p == from {
                *p = to;
            }
        }
    }

    fn seq2(a: &Region, b: &Region) -> Region {
        let mut children = Vec::new();
        for r in [a, b] {
            match &r.kind {
                RegionKind::Empty => {}
                RegionKind::Seq(inner) => children.extend(inner.iter().cloned()),
                _ => children.push(r.clone()),
            }
        }
        match children.len() {
            0 => Region::empty(),
            1 => children.pop().unwrap(),
            _ => {
                let start = children
                    .iter()
                    .map(|c| c.span.0)
                    .filter(|&l| l > 0)
                    .min()
                    .unwrap_or(0);
                let end = children.iter().map(|c| c.span.1).max().unwrap_or(0);
                Region {
                    kind: RegionKind::Seq(children),
                    span: (start, end),
                }
            }
        }
    }

    /// Sequence rule: a → b with a single-succ, b single-pred, both plain.
    fn collapse_seq(&mut self) -> bool {
        for a in 0..self.nodes.len() {
            if !self.nodes[a].alive || self.nodes[a].kind != AbsKind::Plain {
                continue;
            }
            if self.nodes[a].succs.len() != 1 {
                continue;
            }
            let b = self.nodes[a].succs[0];
            if b == a || b == self.exit || !self.nodes[b].alive {
                continue;
            }
            if self.nodes[b].kind != AbsKind::Plain || self.nodes[b].preds.len() != 1 {
                continue;
            }
            // Merge b into a.
            let b_region = self.nodes[b].region.clone();
            let b_succs = self.nodes[b].succs.clone();
            self.nodes[a].region = Self::seq2(&self.nodes[a].region, &b_region);
            self.nodes[a].succs = b_succs.clone();
            for s in b_succs {
                self.replace_pred(s, b, a);
            }
            self.kill(b);
            return true;
        }
        false
    }

    /// Branch rules: if-then-else, if-then, if with empty branches.
    fn collapse_branch(&mut self) -> bool {
        for c in 0..self.nodes.len() {
            if !self.nodes[c].alive {
                continue;
            }
            let AbsKind::Branch { cond } = self.nodes[c].kind.clone() else {
                continue;
            };
            if self.nodes[c].succs.len() != 2 {
                continue;
            }
            let (t, e) = (self.nodes[c].succs[0], self.nodes[c].succs[1]);

            // Both branches empty: succs identical.
            if t == e {
                self.nodes[c].kind = AbsKind::Plain;
                self.nodes[c].region = Region {
                    kind: RegionKind::Cond {
                        cond,
                        then_r: Box::new(Region::empty()),
                        else_r: Box::new(Region::empty()),
                    },
                    span: self.nodes[c].region.span,
                };
                self.nodes[c].succs = vec![t];
                self.remove_pred(t, c);
                self.nodes[t].preds.push(c);
                return true;
            }

            let arm_ok = |g: &Graph, n: usize| {
                g.nodes[n].alive
                    && g.nodes[n].kind == AbsKind::Plain
                    && g.nodes[n].preds.len() == 1
                    && g.nodes[n].preds[0] == c
                    && g.nodes[n].succs.len() == 1
            };

            // If-then-else: both arms collapse to the same join.
            if arm_ok(self, t)
                && arm_ok(self, e)
                && self.nodes[t].succs[0] == self.nodes[e].succs[0]
            {
                let j = self.nodes[t].succs[0];
                if j == c {
                    continue;
                }
                let region = Region {
                    kind: RegionKind::Cond {
                        cond,
                        then_r: Box::new(self.nodes[t].region.clone()),
                        else_r: Box::new(self.nodes[e].region.clone()),
                    },
                    span: self.nodes[c].region.span,
                };
                self.nodes[c].kind = AbsKind::Plain;
                self.nodes[c].region = region;
                self.nodes[c].succs = vec![j];
                self.remove_pred(j, t);
                self.remove_pred(j, e);
                self.nodes[j].preds.push(c);
                self.kill(t);
                self.kill(e);
                return true;
            }

            // If-then: then-arm flows to the else-successor (the join).
            if arm_ok(self, t) && self.nodes[t].succs[0] == e {
                let region = Region {
                    kind: RegionKind::Cond {
                        cond,
                        then_r: Box::new(self.nodes[t].region.clone()),
                        else_r: Box::new(Region::empty()),
                    },
                    span: self.nodes[c].region.span,
                };
                self.nodes[c].kind = AbsKind::Plain;
                self.nodes[c].region = region;
                self.nodes[c].succs = vec![e];
                self.remove_pred(e, t);
                self.kill(t);
                return true;
            }

            // Empty-then: else-arm flows to the then-successor.
            if arm_ok(self, e) && self.nodes[e].succs[0] == t {
                let region = Region {
                    kind: RegionKind::Cond {
                        cond,
                        then_r: Box::new(Region::empty()),
                        else_r: Box::new(self.nodes[e].region.clone()),
                    },
                    span: self.nodes[c].region.span,
                };
                self.nodes[c].kind = AbsKind::Plain;
                self.nodes[c].region = region;
                self.nodes[c].succs = vec![t];
                self.remove_pred(t, e);
                self.kill(e);
                return true;
            }
        }
        false
    }

    /// Loop rule: header with succs [body, exit] where body's only edge
    /// returns to the header.
    fn collapse_loop(&mut self) -> bool {
        for h in 0..self.nodes.len() {
            if !self.nodes[h].alive {
                continue;
            }
            let (is_for, var_iter, cond) = match &self.nodes[h].kind {
                AbsKind::LoopHead { var, iter } => (true, Some((var.clone(), iter.clone())), None),
                AbsKind::WhileHead { cond } => (false, None, Some(cond.clone())),
                _ => continue,
            };
            if self.nodes[h].succs.len() != 2 {
                continue;
            }
            let (b, x) = (self.nodes[h].succs[0], self.nodes[h].succs[1]);

            // Empty body: self edge.
            let body_region = if b == h {
                Region::empty()
            } else {
                if !(self.nodes[b].alive
                    && self.nodes[b].kind == AbsKind::Plain
                    && self.nodes[b].preds.len() == 1
                    && self.nodes[b].preds[0] == h
                    && self.nodes[b].succs.len() == 1
                    && self.nodes[b].succs[0] == h)
                {
                    continue;
                }
                self.nodes[b].region.clone()
            };

            let span = self.nodes[h].region.span;
            let region = if is_for {
                let (var, iter) = var_iter.unwrap();
                Region {
                    kind: RegionKind::Loop {
                        var,
                        iter,
                        body: Box::new(body_region),
                    },
                    span,
                }
            } else {
                Region {
                    kind: RegionKind::WhileLoop {
                        cond: cond.unwrap(),
                        body: Box::new(body_region),
                    },
                    span,
                }
            };
            self.nodes[h].kind = AbsKind::Plain;
            self.nodes[h].region = region;
            self.nodes[h].succs = vec![x];
            // Remove the back edge from preds.
            if b == h {
                self.remove_pred(h, h);
            } else {
                self.remove_pred(h, b);
                self.kill(b);
            }
            return true;
        }
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::{Expr, Stmt, StmtKind};

    fn func(body: Vec<Stmt>) -> Function {
        let mut f = Function::new("t", vec![], body);
        f.number_lines(2);
        f
    }

    fn assert_matches_ast(f: &Function) {
        let from_cfg = analyze(f).expect("structured program must reduce");
        let from_ast = Region::from_function(f).normalize();
        assert!(
            from_cfg.same_shape(&from_ast),
            "CFG-derived region differs from AST-derived:\n{from_cfg:#?}\nvs\n{from_ast:#?}"
        );
    }

    #[test]
    fn straight_line_matches_ast_regions() {
        assert_matches_ast(&func(vec![
            Stmt::new(StmtKind::NewCollection("r".into())),
            Stmt::new(StmtKind::Let("x".into(), Expr::lit(1i64))),
            Stmt::new(StmtKind::Print(Expr::var("x"))),
        ]));
    }

    #[test]
    fn loop_matches_ast_regions() {
        assert_matches_ast(&func(vec![
            Stmt::new(StmtKind::NewCollection("r".into())),
            Stmt::new(StmtKind::ForEach {
                var: "o".into(),
                iter: Expr::LoadAll("Order".into()),
                body: vec![
                    Stmt::new(StmtKind::Let(
                        "v".into(),
                        Expr::field(Expr::var("o"), "o_id"),
                    )),
                    Stmt::new(StmtKind::Add("r".into(), Expr::var("v"))),
                ],
            }),
            Stmt::new(StmtKind::Print(Expr::var("r"))),
        ]));
    }

    #[test]
    fn if_then_else_matches_ast_regions() {
        assert_matches_ast(&func(vec![Stmt::new(StmtKind::If {
            cond: Expr::lit(true),
            then_branch: vec![Stmt::new(StmtKind::Print(Expr::lit(1i64)))],
            else_branch: vec![Stmt::new(StmtKind::Print(Expr::lit(2i64)))],
        })]));
    }

    #[test]
    fn if_then_without_else_matches_ast_regions() {
        assert_matches_ast(&func(vec![
            Stmt::new(StmtKind::Let("x".into(), Expr::lit(0i64))),
            Stmt::new(StmtKind::If {
                cond: Expr::lit(true),
                then_branch: vec![Stmt::new(StmtKind::Let("x".into(), Expr::lit(1i64)))],
                else_branch: vec![],
            }),
            Stmt::new(StmtKind::Print(Expr::var("x"))),
        ]));
    }

    #[test]
    fn nested_loop_and_if_matches_ast_regions() {
        assert_matches_ast(&func(vec![Stmt::new(StmtKind::ForEach {
            var: "a".into(),
            iter: Expr::LoadAll("A".into()),
            body: vec![Stmt::new(StmtKind::ForEach {
                var: "b".into(),
                iter: Expr::LoadAll("B".into()),
                body: vec![Stmt::new(StmtKind::If {
                    cond: Expr::bin(
                        minidb::BinOp::Eq,
                        Expr::field(Expr::var("a"), "x"),
                        Expr::field(Expr::var("b"), "y"),
                    ),
                    then_branch: vec![Stmt::new(StmtKind::Add("r".into(), Expr::var("b")))],
                    else_branch: vec![],
                })],
            })],
        })]));
    }

    #[test]
    fn while_loop_matches_ast_regions() {
        assert_matches_ast(&func(vec![Stmt::new(StmtKind::While {
            cond: Expr::bin(minidb::BinOp::Lt, Expr::var("i"), Expr::lit(10i64)),
            body: vec![Stmt::new(StmtKind::Let(
                "i".into(),
                Expr::bin(minidb::BinOp::Add, Expr::var("i"), Expr::lit(1i64)),
            ))],
        })]));
    }

    #[test]
    fn empty_loop_body_reduces() {
        let f = func(vec![Stmt::new(StmtKind::ForEach {
            var: "o".into(),
            iter: Expr::LoadAll("Order".into()),
            body: vec![],
        })]);
        let r = analyze(&f).unwrap();
        assert!(matches!(r.kind, RegionKind::Loop { .. }));
    }

    #[test]
    fn try_catch_is_unstructured() {
        let f = func(vec![
            Stmt::new(StmtKind::Let("x".into(), Expr::lit(0i64))),
            Stmt::new(StmtKind::TryCatch {
                body: vec![
                    Stmt::new(StmtKind::Print(Expr::lit(1i64))),
                    Stmt::new(StmtKind::Print(Expr::lit(2i64))),
                ],
                handler: vec![Stmt::new(StmtKind::Print(Expr::lit(3i64)))],
            }),
        ]);
        assert!(
            analyze(&f).is_err(),
            "exceptional edges defeat the reduction"
        );
    }

    #[test]
    fn break_makes_loop_unstructured_for_cfg_analysis() {
        // `break` introduces a second exit edge from the body; the simple
        // loop schema no longer matches. The AST path still produces a
        // loop region (and fold preconditions separately reject `break`).
        let f = func(vec![Stmt::new(StmtKind::ForEach {
            var: "o".into(),
            iter: Expr::LoadAll("Order".into()),
            body: vec![Stmt::new(StmtKind::If {
                cond: Expr::lit(true),
                then_branch: vec![Stmt::new(StmtKind::Break)],
                else_branch: vec![],
            })],
        })]);
        assert!(analyze(&f).is_err());
    }

    #[test]
    fn empty_function_reduces_to_empty_region() {
        let f = func(vec![]);
        let r = analyze(&f).unwrap();
        assert!(matches!(r.kind, RegionKind::Empty));
    }

    #[test]
    fn motivating_example_p0_reduces() {
        // P0 from Figure 3a.
        let f = func(vec![
            Stmt::new(StmtKind::NewCollection("result".into())),
            Stmt::new(StmtKind::ForEach {
                var: "o".into(),
                iter: Expr::LoadAll("Order".into()),
                body: vec![
                    Stmt::new(StmtKind::Let(
                        "cust".into(),
                        Expr::nav(Expr::var("o"), "customer"),
                    )),
                    Stmt::new(StmtKind::Let(
                        "val".into(),
                        Expr::Call("myFunc".into(), vec![Expr::field(Expr::var("o"), "o_id")]),
                    )),
                    Stmt::new(StmtKind::Add("result".into(), Expr::var("val"))),
                ],
            }),
        ]);
        assert_matches_ast(&f);
    }
}
