//! Loop data-dependence analysis.
//!
//! F-IR can represent a cursor loop as a `fold` only when the loop's data
//! dependencies permit it (§V, Figure 9: "if there are no external
//! dependency edges in D"). This module computes, per loop:
//!
//! * whether the loop is a *cursor loop* (iterates a query result or a
//!   materialized collection),
//! * the set of variables the body updates (fold accumulator candidates;
//!   the tuple/project extension permits *dependent* accumulators, so
//!   reading another accumulator is not a blocker),
//! * the [`Blocker`]s that rule out a fold representation (side effects,
//!   early exits, database writes, calls to non-pure functions, …),
//! * whether the body performs iterative data access (the N+1 pattern
//!   targeted by prefetching rule N1).

use crate::ast::{Expr, Stmt, StmtKind};

/// A reason the loop cannot be represented as a fold.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Blocker {
    /// The iterable is not a query/collection (not a cursor loop).
    NonCursorIterable,
    /// `break` in the body.
    HasBreak,
    /// `return` in the body.
    HasReturn,
    /// `print` in the body (observable side effect).
    HasPrint,
    /// A database update in the body.
    HasUpdate,
    /// `try/catch` in the body.
    HasTryCatch,
    /// A `while` loop in the body (unknown iteration count).
    HasWhile,
    /// A call to a user-defined procedure (not a registered pure function).
    CallsProcedure(String),
    /// The loop variable itself is reassigned.
    AssignsLoopVar,
    /// A client-side cache is (re)built inside the loop.
    BuildsCache,
}

/// Result of analysing one `for (var : iter) body` loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopAnalysis {
    /// The loop iterates over a query result / collection.
    pub cursor: bool,
    /// Variables updated by the body, in first-update order (fold
    /// accumulator candidates).
    pub updated: Vec<String>,
    /// Variables read by the body that are defined *outside* the loop
    /// (excluding accumulators and the loop variable).
    pub external_reads: Vec<String>,
    /// Conditions that block a fold representation.
    pub blockers: Vec<Blocker>,
    /// The body contains a nested cursor loop (join candidate, rule T4).
    pub has_nested_cursor_loop: bool,
    /// The body accesses the database per iteration (N+1; rule N1 target).
    pub iterative_db_access: bool,
}

impl LoopAnalysis {
    /// True if the loop satisfies the F-IR fold preconditions.
    pub fn foldable(&self) -> bool {
        self.cursor && self.blockers.is_empty()
    }

    /// Analyse a loop given its variable, iterable and body.
    pub fn analyze(var: &str, iter: &Expr, body: &[Stmt]) -> LoopAnalysis {
        let cursor = matches!(
            iter,
            Expr::LoadAll(_) | Expr::Query(_) | Expr::Var(_) | Expr::LookupCache(_, _)
        );
        let mut a = LoopAnalysis {
            cursor,
            updated: Vec::new(),
            external_reads: Vec::new(),
            blockers: Vec::new(),
            has_nested_cursor_loop: false,
            iterative_db_access: false,
        };
        if !cursor {
            a.blockers.push(Blocker::NonCursorIterable);
        }
        let mut reads = Vec::new();
        scan(var, body, &mut a, &mut reads, true);
        // External reads: read before (or without) being updated locally,
        // and not the loop variable.
        let mut seen = std::collections::HashSet::new();
        for r in reads {
            if r != var && !a.updated.contains(&r) && seen.insert(r.clone()) {
                a.external_reads.push(r);
            }
        }
        a
    }
}

fn note_update(a: &mut LoopAnalysis, name: &str, loop_var: &str) {
    if name == loop_var {
        push_unique(&mut a.blockers, Blocker::AssignsLoopVar);
    } else if !a.updated.iter().any(|u| u == name) {
        a.updated.push(name.to_string());
    }
}

fn push_unique(blockers: &mut Vec<Blocker>, b: Blocker) {
    if !blockers.contains(&b) {
        blockers.push(b);
    }
}

fn scan(
    loop_var: &str,
    body: &[Stmt],
    a: &mut LoopAnalysis,
    reads: &mut Vec<String>,
    top_level: bool,
) {
    for stmt in body {
        match &stmt.kind {
            StmtKind::Let(v, e) => {
                scan_expr(e, a, reads);
                note_update(a, v, loop_var);
            }
            StmtKind::NewCollection(v) | StmtKind::NewMap(v) => {
                note_update(a, v, loop_var);
            }
            StmtKind::Add(c, e) => {
                scan_expr(e, a, reads);
                note_update(a, c, loop_var);
            }
            StmtKind::Put(m, k, v) => {
                scan_expr(k, a, reads);
                scan_expr(v, a, reads);
                note_update(a, m, loop_var);
            }
            StmtKind::ForEach { var, iter, body } => {
                scan_expr(iter, a, reads);
                if matches!(iter, Expr::LoadAll(_) | Expr::Query(_)) {
                    a.has_nested_cursor_loop = true;
                    a.iterative_db_access = true;
                }
                // Nested loop bodies contribute updates/blockers too; the
                // inner loop variable shadows.
                let mut inner = LoopAnalysis {
                    cursor: true,
                    updated: Vec::new(),
                    external_reads: Vec::new(),
                    blockers: Vec::new(),
                    has_nested_cursor_loop: false,
                    iterative_db_access: false,
                };
                let mut inner_reads = Vec::new();
                scan(var, body, &mut inner, &mut inner_reads, false);
                for b in inner.blockers {
                    push_unique(&mut a.blockers, b);
                }
                a.has_nested_cursor_loop |= inner.has_nested_cursor_loop;
                a.iterative_db_access |= inner.iterative_db_access;
                for u in inner.updated {
                    note_update(a, &u, loop_var);
                }
                for r in inner_reads {
                    if r != *var {
                        reads.push(r);
                    }
                }
            }
            StmtKind::While { cond, body } => {
                push_unique(&mut a.blockers, Blocker::HasWhile);
                scan_expr(cond, a, reads);
                scan(loop_var, body, a, reads, false);
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                scan_expr(cond, a, reads);
                scan(loop_var, then_branch, a, reads, false);
                scan(loop_var, else_branch, a, reads, false);
            }
            StmtKind::Print(e) => {
                push_unique(&mut a.blockers, Blocker::HasPrint);
                scan_expr(e, a, reads);
            }
            StmtKind::Return(e) => {
                push_unique(&mut a.blockers, Blocker::HasReturn);
                if let Some(e) = e {
                    scan_expr(e, a, reads);
                }
            }
            StmtKind::Break => push_unique(&mut a.blockers, Blocker::HasBreak),
            StmtKind::CacheByColumn { cache, source, .. } => {
                push_unique(&mut a.blockers, Blocker::BuildsCache);
                scan_expr(source, a, reads);
                note_update(a, cache, loop_var);
            }
            StmtKind::UpdateQuery { value, key, .. } => {
                push_unique(&mut a.blockers, Blocker::HasUpdate);
                scan_expr(value, a, reads);
                scan_expr(key, a, reads);
            }
            StmtKind::LetCall(v, f, args) => {
                push_unique(&mut a.blockers, Blocker::CallsProcedure(f.clone()));
                for e in args {
                    scan_expr(e, a, reads);
                }
                note_update(a, v, loop_var);
            }
            StmtKind::TryCatch { body, handler } => {
                push_unique(&mut a.blockers, Blocker::HasTryCatch);
                scan(loop_var, body, a, reads, false);
                scan(loop_var, handler, a, reads, false);
            }
        }
        let _ = top_level;
    }
}

fn scan_expr(e: &Expr, a: &mut LoopAnalysis, reads: &mut Vec<String>) {
    e.free_vars(reads);
    if e.may_access_db() {
        a.iterative_db_access = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QuerySpec;
    use minidb::BinOp;

    fn add_stmt(c: &str, e: Expr) -> Stmt {
        Stmt::new(StmtKind::Add(c.into(), e))
    }

    #[test]
    fn simple_aggregation_loop_is_foldable() {
        // sum = sum + t.sale_amt
        let body = vec![Stmt::new(StmtKind::Let(
            "sum".into(),
            Expr::bin(
                BinOp::Add,
                Expr::var("sum"),
                Expr::field(Expr::var("t"), "sale_amt"),
            ),
        ))];
        let a = LoopAnalysis::analyze(
            "t",
            &Expr::Query(QuerySpec::sql(
                "select month, sale_amt from sales order by month",
            )),
            &body,
        );
        assert!(a.foldable());
        assert_eq!(a.updated, vec!["sum".to_string()]);
    }

    #[test]
    fn dependent_aggregations_are_allowed() {
        // Figure 7: sum then cSum.put(month, sum) — cSum depends on sum.
        let body = vec![
            Stmt::new(StmtKind::Let(
                "sum".into(),
                Expr::bin(
                    BinOp::Add,
                    Expr::var("sum"),
                    Expr::field(Expr::var("t"), "sale_amt"),
                ),
            )),
            Stmt::new(StmtKind::Put(
                "cSum".into(),
                Expr::field(Expr::var("t"), "month"),
                Expr::var("sum"),
            )),
        ];
        let a = LoopAnalysis::analyze(
            "t",
            &Expr::Query(QuerySpec::sql(
                "select month, sale_amt from sales order by month",
            )),
            &body,
        );
        assert!(
            a.foldable(),
            "tuple/project extension permits this: {:?}",
            a.blockers
        );
        assert_eq!(a.updated, vec!["sum".to_string(), "cSum".to_string()]);
    }

    #[test]
    fn print_blocks_fold() {
        let body = vec![Stmt::new(StmtKind::Print(Expr::var("t")))];
        let a = LoopAnalysis::analyze("t", &Expr::LoadAll("Order".into()), &body);
        assert!(!a.foldable());
        assert!(a.blockers.contains(&Blocker::HasPrint));
    }

    #[test]
    fn break_and_return_block_fold() {
        let body = vec![Stmt::new(StmtKind::If {
            cond: Expr::lit(true),
            then_branch: vec![Stmt::new(StmtKind::Break)],
            else_branch: vec![Stmt::new(StmtKind::Return(None))],
        })];
        let a = LoopAnalysis::analyze("t", &Expr::LoadAll("Order".into()), &body);
        assert!(a.blockers.contains(&Blocker::HasBreak));
        assert!(a.blockers.contains(&Blocker::HasReturn));
    }

    #[test]
    fn update_query_blocks_fold_but_is_reported() {
        // Pattern A: nested loops with intermittent updates.
        let body = vec![Stmt::new(StmtKind::UpdateQuery {
            table: "orders".into(),
            set_col: "o_status".into(),
            value: Expr::lit("done"),
            key_col: "o_id".into(),
            key: Expr::field(Expr::var("t"), "o_id"),
        })];
        let a = LoopAnalysis::analyze("t", &Expr::LoadAll("Order".into()), &body);
        assert!(!a.foldable());
        assert_eq!(a.blockers, vec![Blocker::HasUpdate]);
    }

    #[test]
    fn nav_inside_body_is_iterative_db_access() {
        // The N+1 pattern of P0.
        let body = vec![Stmt::new(StmtKind::Let(
            "cust".into(),
            Expr::nav(Expr::var("o"), "customer"),
        ))];
        let a = LoopAnalysis::analyze("o", &Expr::LoadAll("Order".into()), &body);
        assert!(a.iterative_db_access);
        assert!(a.foldable(), "navigation itself does not block folding");
    }

    #[test]
    fn nested_cursor_loop_detected() {
        let body = vec![Stmt::new(StmtKind::ForEach {
            var: "c".into(),
            iter: Expr::Query(QuerySpec::sql("select * from customer")),
            body: vec![add_stmt("r", Expr::var("c"))],
        })];
        let a = LoopAnalysis::analyze("o", &Expr::LoadAll("Order".into()), &body);
        assert!(a.has_nested_cursor_loop);
        assert!(a.foldable());
        assert_eq!(a.updated, vec!["r".to_string()]);
    }

    #[test]
    fn procedure_call_blocks_fold_with_name() {
        let body = vec![Stmt::new(StmtKind::LetCall(
            "x".into(),
            "helper".into(),
            vec![Expr::var("o")],
        ))];
        let a = LoopAnalysis::analyze("o", &Expr::LoadAll("Order".into()), &body);
        assert_eq!(a.blockers, vec![Blocker::CallsProcedure("helper".into())]);
    }

    #[test]
    fn loop_var_assignment_blocks() {
        let body = vec![Stmt::new(StmtKind::Let("o".into(), Expr::lit(1i64)))];
        let a = LoopAnalysis::analyze("o", &Expr::LoadAll("Order".into()), &body);
        assert!(a.blockers.contains(&Blocker::AssignsLoopVar));
    }

    #[test]
    fn non_cursor_iterable_blocks() {
        let body = vec![];
        let a = LoopAnalysis::analyze("x", &Expr::lit(1i64), &body);
        assert!(!a.cursor);
        assert!(a.blockers.contains(&Blocker::NonCursorIterable));
    }

    #[test]
    fn external_reads_exclude_loop_var_and_accumulators() {
        let body = vec![Stmt::new(StmtKind::Let(
            "acc".into(),
            Expr::bin(
                BinOp::Add,
                Expr::bin(BinOp::Add, Expr::var("acc"), Expr::var("bias")),
                Expr::field(Expr::var("t"), "v"),
            ),
        ))];
        let a = LoopAnalysis::analyze("t", &Expr::var("rows"), &body);
        assert_eq!(a.external_reads, vec!["bias".to_string()]);
    }

    #[test]
    fn if_branches_are_scanned() {
        let body = vec![Stmt::new(StmtKind::If {
            cond: Expr::bin(
                BinOp::Gt,
                Expr::field(Expr::var("t"), "amount"),
                Expr::lit(10i64),
            ),
            then_branch: vec![add_stmt("big", Expr::var("t"))],
            else_branch: vec![add_stmt("small", Expr::var("t"))],
        })];
        let a = LoopAnalysis::analyze("t", &Expr::var("rows"), &body);
        assert!(a.foldable());
        assert_eq!(a.updated, vec!["big".to_string(), "small".to_string()]);
    }
}
