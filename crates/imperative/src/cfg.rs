//! Control-flow graph lowering.
//!
//! Each simple statement becomes one CFG node (the paper treats every
//! statement as a basic block, footnote 4). Compound statements lower to
//! header/branch nodes plus edges:
//!
//! * `if` → a branch node whose first successor is the then-entry and
//!   second the else-entry (or the join when a branch is empty),
//! * loops → a header node with successors `[body-entry, loop-exit]` and a
//!   back edge from the body tail to the header,
//! * `break` → an edge to the innermost loop's exit join,
//! * `return` → an edge to the function exit,
//! * `try/catch` → an edge from *every* node of the body to the handler
//!   entry (exceptional flow), which makes the fragment unstructured.

use crate::ast::{Expr, Function, Stmt, StmtKind};

/// Index of a node in the CFG.
pub type NodeId = usize;

/// What a CFG node represents.
#[derive(Debug, Clone, PartialEq)]
pub enum NodeKind {
    /// Function entry.
    Entry,
    /// Function exit.
    Exit,
    /// A single simple statement.
    Simple(Stmt),
    /// Cursor-loop header `for (var : iter)`.
    LoopHead { var: String, iter: Expr },
    /// While-loop header.
    WhileHead { cond: Expr },
    /// Conditional branch on `cond`.
    Branch { cond: Expr },
    /// Control-flow merge point.
    Join,
}

/// A CFG node with ordered successor/predecessor lists.
///
/// Successor order is semantic: for a branch, `succs[0]` is the then-edge
/// and `succs[1]` the else-edge; for loop headers, `succs[0]` enters the
/// body and `succs[1]` leaves the loop.
#[derive(Debug, Clone)]
pub struct Node {
    /// Node payload.
    pub kind: NodeKind,
    /// Source line of the originating statement (0 if synthetic).
    pub line: u32,
    /// Ordered successors.
    pub succs: Vec<NodeId>,
    /// Predecessors (order not significant).
    pub preds: Vec<NodeId>,
}

/// A function's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    /// All nodes; indices are [`NodeId`]s.
    pub nodes: Vec<Node>,
    /// The entry node.
    pub entry: NodeId,
    /// The exit node.
    pub exit: NodeId,
}

impl Cfg {
    /// Build the CFG of a function body.
    pub fn build(f: &Function) -> Cfg {
        let mut b = Builder {
            nodes: Vec::new(),
            loop_exits: Vec::new(),
            exit: 0,
        };
        let entry = b.add(NodeKind::Entry, 0);
        let exit = b.add(NodeKind::Exit, 0);
        b.exit = exit;
        let tail = b.lower_list(&f.body, Some(entry));
        if let Some(t) = tail {
            b.edge(t, exit);
        }
        Cfg {
            nodes: b.nodes,
            entry,
            exit,
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the graph has no statement nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes
            .iter()
            .all(|n| matches!(n.kind, NodeKind::Entry | NodeKind::Exit))
    }

    /// All nodes reachable from entry (DFS preorder).
    pub fn reachable(&self) -> Vec<NodeId> {
        let mut seen = vec![false; self.nodes.len()];
        let mut order = Vec::new();
        let mut stack = vec![self.entry];
        while let Some(n) = stack.pop() {
            if seen[n] {
                continue;
            }
            seen[n] = true;
            order.push(n);
            for &s in self.nodes[n].succs.iter().rev() {
                if !seen[s] {
                    stack.push(s);
                }
            }
        }
        order
    }
}

struct Builder {
    nodes: Vec<Node>,
    /// Stack of loop-exit join nodes, for `break`.
    loop_exits: Vec<NodeId>,
    exit: NodeId,
}

impl Builder {
    fn add(&mut self, kind: NodeKind, line: u32) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(Node {
            kind,
            line,
            succs: Vec::new(),
            preds: Vec::new(),
        });
        id
    }

    fn edge(&mut self, from: NodeId, to: NodeId) {
        self.nodes[from].succs.push(to);
        self.nodes[to].preds.push(from);
    }

    /// Lower a statement list starting after `current` (the node control
    /// currently flows from). Returns the new tail, or `None` if control
    /// cannot fall through (return/break).
    fn lower_list(&mut self, stmts: &[Stmt], mut current: Option<NodeId>) -> Option<NodeId> {
        for stmt in stmts {
            let Some(cur) = current else { break }; // unreachable code dropped
            current = self.lower_stmt(stmt, cur);
        }
        current
    }

    fn lower_stmt(&mut self, stmt: &Stmt, current: NodeId) -> Option<NodeId> {
        match &stmt.kind {
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let branch = self.add(NodeKind::Branch { cond: cond.clone() }, stmt.line);
                self.edge(current, branch);
                let join = self.add(NodeKind::Join, 0);
                // Then edge first: successor order encodes branch polarity.
                if then_branch.is_empty() {
                    self.edge(branch, join);
                } else {
                    let entry = self.reserve_entry(then_branch, branch);
                    let tail = self.lower_list(&then_branch[1..], Some(entry));
                    if let Some(t) = tail {
                        self.edge(t, join);
                    }
                }
                if else_branch.is_empty() {
                    self.edge(branch, join);
                } else {
                    let entry = self.reserve_entry(else_branch, branch);
                    let tail = self.lower_list(&else_branch[1..], Some(entry));
                    if let Some(t) = tail {
                        self.edge(t, join);
                    }
                }
                Some(join)
            }
            StmtKind::ForEach { var, iter, body } => {
                let head = self.add(
                    NodeKind::LoopHead {
                        var: var.clone(),
                        iter: iter.clone(),
                    },
                    stmt.line,
                );
                self.edge(current, head);
                let exit = self.add(NodeKind::Join, 0);
                self.loop_exits.push(exit);
                let tail = self.lower_list(body, Some(head));
                self.loop_exits.pop();
                if let Some(t) = tail {
                    if t == head {
                        // Empty body: self back edge.
                        self.edge(head, head);
                    } else {
                        self.edge(t, head);
                    }
                }
                // Order: succs[0] entered the body above; exit edge second.
                self.edge(head, exit);
                self.fix_loop_succ_order(head);
                Some(exit)
            }
            StmtKind::While { cond, body } => {
                let head = self.add(NodeKind::WhileHead { cond: cond.clone() }, stmt.line);
                self.edge(current, head);
                let exit = self.add(NodeKind::Join, 0);
                self.loop_exits.push(exit);
                let tail = self.lower_list(body, Some(head));
                self.loop_exits.pop();
                if let Some(t) = tail {
                    if t == head {
                        self.edge(head, head);
                    } else {
                        self.edge(t, head);
                    }
                }
                self.edge(head, exit);
                self.fix_loop_succ_order(head);
                Some(exit)
            }
            StmtKind::Return(_) => {
                let node = self.add(NodeKind::Simple(stmt.clone()), stmt.line);
                self.edge(current, node);
                let exit = self.exit;
                self.edge(node, exit);
                None
            }
            StmtKind::Break => {
                let node = self.add(NodeKind::Simple(stmt.clone()), stmt.line);
                self.edge(current, node);
                let target = *self
                    .loop_exits
                    .last()
                    .expect("break outside of loop is rejected by construction");
                self.edge(node, target);
                None
            }
            StmtKind::TryCatch { body, handler } => {
                let join = self.add(NodeKind::Join, 0);
                let before = self.nodes.len();
                let tail = self.lower_list(body, Some(current));
                let body_nodes: Vec<NodeId> = (before..self.nodes.len()).collect();
                // Handler entry.
                let handler_entry = self.add(NodeKind::Join, 0);
                let h_tail = self.lower_list(handler, Some(handler_entry));
                // Exceptional edges: any body node may jump to the handler.
                for n in body_nodes {
                    self.edge(n, handler_entry);
                }
                if let Some(t) = tail {
                    self.edge(t, join);
                }
                if let Some(t) = h_tail {
                    self.edge(t, join);
                }
                Some(join)
            }
            _ => {
                let node = self.add(NodeKind::Simple(stmt.clone()), stmt.line);
                self.edge(current, node);
                Some(node)
            }
        }
    }

    /// Lower the first statement of a branch so the branch's outgoing edge
    /// order stays [then, else]; returns the node to continue from.
    fn reserve_entry(&mut self, stmts: &[Stmt], branch: NodeId) -> NodeId {
        // Lower only the first statement here; caller lowers the rest.
        self.lower_stmt(&stmts[0], branch).unwrap_or_else(|| {
            // First statement was return/break: continue from a dead join
            // that has no successors (unreachable continuation).
            self.add(NodeKind::Join, 0)
        })
    }

    /// Ensure a loop head's successors are ordered [body, exit]. The body
    /// edge was added first, but an empty body adds a self edge late.
    fn fix_loop_succ_order(&mut self, head: NodeId) {
        let succs = &mut self.nodes[head].succs;
        if succs.len() == 2 && succs[0] != head && succs[1] == head {
            succs.swap(0, 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn simple(kind: StmtKind) -> Stmt {
        Stmt::new(kind)
    }

    fn func(body: Vec<Stmt>) -> Function {
        let mut f = Function::new("t", vec![], body);
        f.number_lines(1);
        f
    }

    #[test]
    fn straight_line_chains_nodes() {
        let f = func(vec![
            simple(StmtKind::NewCollection("r".into())),
            simple(StmtKind::Print(Expr::lit(1i64))),
        ]);
        let cfg = Cfg::build(&f);
        // entry, exit, 2 statements
        assert_eq!(cfg.len(), 4);
        let entry_succ = cfg.nodes[cfg.entry].succs[0];
        assert!(matches!(cfg.nodes[entry_succ].kind, NodeKind::Simple(_)));
        let second = cfg.nodes[entry_succ].succs[0];
        assert_eq!(cfg.nodes[second].succs, vec![cfg.exit]);
    }

    #[test]
    fn if_else_diamond() {
        let f = func(vec![simple(StmtKind::If {
            cond: Expr::lit(true),
            then_branch: vec![simple(StmtKind::Print(Expr::lit(1i64)))],
            else_branch: vec![simple(StmtKind::Print(Expr::lit(2i64)))],
        })]);
        let cfg = Cfg::build(&f);
        let branch = cfg.nodes[cfg.entry].succs[0];
        assert!(matches!(cfg.nodes[branch].kind, NodeKind::Branch { .. }));
        assert_eq!(cfg.nodes[branch].succs.len(), 2);
        let t = cfg.nodes[branch].succs[0];
        let e = cfg.nodes[branch].succs[1];
        assert_eq!(cfg.nodes[t].succs, cfg.nodes[e].succs, "both reach join");
    }

    #[test]
    fn loop_has_back_edge_and_ordered_succs() {
        let f = func(vec![simple(StmtKind::ForEach {
            var: "o".into(),
            iter: Expr::LoadAll("Order".into()),
            body: vec![simple(StmtKind::Print(Expr::var("o")))],
        })]);
        let cfg = Cfg::build(&f);
        let head = cfg.nodes[cfg.entry].succs[0];
        let NodeKind::LoopHead { .. } = cfg.nodes[head].kind else {
            panic!()
        };
        assert_eq!(cfg.nodes[head].succs.len(), 2);
        let body = cfg.nodes[head].succs[0];
        assert!(matches!(cfg.nodes[body].kind, NodeKind::Simple(_)));
        assert_eq!(cfg.nodes[body].succs, vec![head], "back edge");
    }

    #[test]
    fn break_targets_loop_exit() {
        let f = func(vec![simple(StmtKind::ForEach {
            var: "o".into(),
            iter: Expr::LoadAll("Order".into()),
            body: vec![simple(StmtKind::Break)],
        })]);
        let cfg = Cfg::build(&f);
        let head = cfg.nodes[cfg.entry].succs[0];
        let exit_join = cfg.nodes[head].succs[1];
        let brk = cfg.nodes[head].succs[0];
        assert_eq!(cfg.nodes[brk].succs, vec![exit_join]);
    }

    #[test]
    fn return_goes_to_function_exit() {
        let f = func(vec![
            simple(StmtKind::Return(Some(Expr::lit(1i64)))),
            simple(StmtKind::Print(Expr::lit(2i64))), // dead
        ]);
        let cfg = Cfg::build(&f);
        let ret = cfg.nodes[cfg.entry].succs[0];
        assert_eq!(cfg.nodes[ret].succs, vec![cfg.exit]);
        // Statements after an unconditional return are dropped entirely.
        let prints = cfg
            .nodes
            .iter()
            .filter(|n| {
                matches!(&n.kind, NodeKind::Simple(s)
                    if matches!(s.kind, StmtKind::Print(_)))
            })
            .count();
        assert_eq!(prints, 0);
    }

    #[test]
    fn try_catch_adds_exceptional_edges() {
        let f = func(vec![simple(StmtKind::TryCatch {
            body: vec![
                simple(StmtKind::Print(Expr::lit(1i64))),
                simple(StmtKind::Print(Expr::lit(2i64))),
            ],
            handler: vec![simple(StmtKind::Print(Expr::lit(3i64)))],
        })]);
        let cfg = Cfg::build(&f);
        // Both body statements must have 2 successors (normal + handler).
        let two_succ_simples = cfg
            .nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Simple(_)) && n.succs.len() == 2)
            .count();
        assert_eq!(two_succ_simples, 2);
    }

    #[test]
    fn empty_function_links_entry_to_exit() {
        let f = func(vec![]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.nodes[cfg.entry].succs, vec![cfg.exit]);
        assert!(cfg.is_empty());
    }

    #[test]
    fn reachable_covers_loop_bodies() {
        let f = func(vec![simple(StmtKind::ForEach {
            var: "o".into(),
            iter: Expr::LoadAll("Order".into()),
            body: vec![simple(StmtKind::Print(Expr::var("o")))],
        })]);
        let cfg = Cfg::build(&f);
        assert_eq!(cfg.reachable().len(), cfg.len());
    }
}
