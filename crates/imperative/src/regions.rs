//! Program regions built from the structured AST.
//!
//! A region is a single-entry single-exit fragment (§III-B): a basic block
//! (one statement), a sequence, a conditional, a loop — or a *black box*
//! for unstructured fragments (`try/catch`), which COBRA keeps intact while
//! still optimizing regions around it (§IV-B).
//!
//! Regions are named like the paper names them: `P0.S2-7` is the
//! sequential region of program `P0` spanning lines 2–7; `B`, `C`, `L`,
//! `X` denote basic block, conditional, loop and black-box regions.

use crate::ast::{Expr, Function, Stmt, StmtKind};

/// The shape of a region.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RegionKind {
    /// A single simple statement (basic block).
    Block(Stmt),
    /// Two or more regions in sequence.
    Seq(Vec<Region>),
    /// `if (cond) then_r else else_r` (else may be [`RegionKind::Empty`]).
    Cond {
        cond: Expr,
        then_r: Box<Region>,
        else_r: Box<Region>,
    },
    /// Cursor loop `for (var : iter) body`.
    Loop {
        var: String,
        iter: Expr,
        body: Box<Region>,
    },
    /// `while (cond) body`.
    WhileLoop { cond: Expr, body: Box<Region> },
    /// Unstructured fragment kept verbatim.
    BlackBox(Vec<Stmt>),
    /// Empty region (empty else-branch, empty body).
    Empty,
}

/// A region with its source span.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Region {
    /// Shape and children.
    pub kind: RegionKind,
    /// `(first_line, last_line)`; `(0, 0)` for synthesized code.
    pub span: (u32, u32),
}

impl Region {
    /// An empty region.
    pub fn empty() -> Region {
        Region {
            kind: RegionKind::Empty,
            span: (0, 0),
        }
    }

    /// Build the region tree for a statement list.
    pub fn from_stmts(stmts: &[Stmt]) -> Region {
        let mut children: Vec<Region> = stmts.iter().map(Region::from_stmt).collect();
        match children.len() {
            0 => Region::empty(),
            1 => children.pop().unwrap(),
            _ => {
                let span = span_of(&children);
                Region {
                    kind: RegionKind::Seq(children),
                    span,
                }
            }
        }
    }

    /// Build the region tree for one statement.
    pub fn from_stmt(stmt: &Stmt) -> Region {
        let line = stmt.line;
        match &stmt.kind {
            StmtKind::ForEach { var, iter, body } => {
                let body_r = Region::from_stmts(body);
                let end = stmt.max_line().max(line);
                Region {
                    kind: RegionKind::Loop {
                        var: var.clone(),
                        iter: iter.clone(),
                        body: Box::new(body_r),
                    },
                    span: (line, end + 1),
                }
            }
            StmtKind::While { cond, body } => {
                let body_r = Region::from_stmts(body);
                let end = stmt.max_line().max(line);
                Region {
                    kind: RegionKind::WhileLoop {
                        cond: cond.clone(),
                        body: Box::new(body_r),
                    },
                    span: (line, end + 1),
                }
            }
            StmtKind::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let then_r = Region::from_stmts(then_branch);
                let else_r = if else_branch.is_empty() {
                    Region::empty()
                } else {
                    Region::from_stmts(else_branch)
                };
                let end = stmt.max_line().max(line);
                Region {
                    kind: RegionKind::Cond {
                        cond: cond.clone(),
                        then_r: Box::new(then_r),
                        else_r: Box::new(else_r),
                    },
                    span: (line, end + 1),
                }
            }
            StmtKind::TryCatch { .. } => {
                let end = stmt.max_line().max(line);
                Region {
                    kind: RegionKind::BlackBox(vec![stmt.clone()]),
                    span: (line, end + 1),
                }
            }
            _ => Region {
                kind: RegionKind::Block(stmt.clone()),
                span: (line, line),
            },
        }
    }

    /// Region tree of a whole function body.
    pub fn from_function(f: &Function) -> Region {
        Region::from_stmts(&f.body)
    }

    /// Reconstruct the statement list this region denotes.
    pub fn to_stmts(&self) -> Vec<Stmt> {
        match &self.kind {
            RegionKind::Block(s) => vec![s.clone()],
            RegionKind::Seq(children) => children.iter().flat_map(|c| c.to_stmts()).collect(),
            RegionKind::Cond {
                cond,
                then_r,
                else_r,
            } => vec![Stmt::at(
                self.span.0,
                StmtKind::If {
                    cond: cond.clone(),
                    then_branch: then_r.to_stmts(),
                    else_branch: else_r.to_stmts(),
                },
            )],
            RegionKind::Loop { var, iter, body } => vec![Stmt::at(
                self.span.0,
                StmtKind::ForEach {
                    var: var.clone(),
                    iter: iter.clone(),
                    body: body.to_stmts(),
                },
            )],
            RegionKind::WhileLoop { cond, body } => vec![Stmt::at(
                self.span.0,
                StmtKind::While {
                    cond: cond.clone(),
                    body: body.to_stmts(),
                },
            )],
            RegionKind::BlackBox(stmts) => stmts.clone(),
            RegionKind::Empty => Vec::new(),
        }
    }

    /// Paper-style label, e.g. `P0.S2-7`.
    pub fn label(&self, program: &str) -> String {
        let letter = match &self.kind {
            RegionKind::Block(_) => "B",
            RegionKind::Seq(_) => "S",
            RegionKind::Cond { .. } => "C",
            RegionKind::Loop { .. } | RegionKind::WhileLoop { .. } => "L",
            RegionKind::BlackBox(_) => "X",
            RegionKind::Empty => "E",
        };
        let (a, b) = self.span;
        if a == b {
            format!("{program}.{letter}{a}")
        } else {
            format!("{program}.{letter}{a}-{b}")
        }
    }

    /// Flatten nested sequences and drop empty children; used to compare
    /// region trees from different construction paths.
    pub fn normalize(&self) -> Region {
        match &self.kind {
            RegionKind::Seq(children) => {
                let mut flat = Vec::new();
                for c in children {
                    let n = c.normalize();
                    match n.kind {
                        RegionKind::Empty => {}
                        RegionKind::Seq(inner) => flat.extend(inner),
                        _ => flat.push(n),
                    }
                }
                match flat.len() {
                    0 => Region::empty(),
                    1 => flat.pop().unwrap(),
                    _ => {
                        let span = span_of(&flat);
                        Region {
                            kind: RegionKind::Seq(flat),
                            span,
                        }
                    }
                }
            }
            RegionKind::Cond {
                cond,
                then_r,
                else_r,
            } => Region {
                kind: RegionKind::Cond {
                    cond: cond.clone(),
                    then_r: Box::new(then_r.normalize()),
                    else_r: Box::new(else_r.normalize()),
                },
                span: self.span,
            },
            RegionKind::Loop { var, iter, body } => Region {
                kind: RegionKind::Loop {
                    var: var.clone(),
                    iter: iter.clone(),
                    body: Box::new(body.normalize()),
                },
                span: self.span,
            },
            RegionKind::WhileLoop { cond, body } => Region {
                kind: RegionKind::WhileLoop {
                    cond: cond.clone(),
                    body: Box::new(body.normalize()),
                },
                span: self.span,
            },
            _ => self.clone(),
        }
    }

    /// Compare shapes ignoring spans (spans differ between AST- and
    /// CFG-derived trees for brace lines).
    pub fn same_shape(&self, other: &Region) -> bool {
        match (&self.kind, &other.kind) {
            (RegionKind::Block(a), RegionKind::Block(b)) => a == b,
            (RegionKind::Seq(a), RegionKind::Seq(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.same_shape(y))
            }
            (
                RegionKind::Cond {
                    cond: c1,
                    then_r: t1,
                    else_r: e1,
                },
                RegionKind::Cond {
                    cond: c2,
                    then_r: t2,
                    else_r: e2,
                },
            ) => c1 == c2 && t1.same_shape(t2) && e1.same_shape(e2),
            (
                RegionKind::Loop {
                    var: v1,
                    iter: i1,
                    body: b1,
                },
                RegionKind::Loop {
                    var: v2,
                    iter: i2,
                    body: b2,
                },
            ) => v1 == v2 && i1 == i2 && b1.same_shape(b2),
            (
                RegionKind::WhileLoop { cond: c1, body: b1 },
                RegionKind::WhileLoop { cond: c2, body: b2 },
            ) => c1 == c2 && b1.same_shape(b2),
            (RegionKind::BlackBox(a), RegionKind::BlackBox(b)) => a == b,
            (RegionKind::Empty, RegionKind::Empty) => true,
            _ => false,
        }
    }

    /// Visit every region in the tree (pre-order).
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a Region)) {
        f(self);
        match &self.kind {
            RegionKind::Seq(children) => {
                for c in children {
                    c.walk(f);
                }
            }
            RegionKind::Cond { then_r, else_r, .. } => {
                then_r.walk(f);
                else_r.walk(f);
            }
            RegionKind::Loop { body, .. } | RegionKind::WhileLoop { body, .. } => body.walk(f),
            _ => {}
        }
    }

    /// Count regions in the tree.
    pub fn count(&self) -> usize {
        let mut n = 0;
        self.walk(&mut |_| n += 1);
        n
    }
}

fn span_of(children: &[Region]) -> (u32, u32) {
    let start = children
        .iter()
        .map(|c| c.span.0)
        .filter(|&l| l > 0)
        .min()
        .unwrap_or(0);
    let end = children.iter().map(|c| c.span.1).max().unwrap_or(0);
    (start, end)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::QuerySpec;

    /// Figure 5's program P0 shape: result={}; for(o: loadAll){...3 stmts}.
    fn p0() -> Function {
        let mut f = Function::new(
            "P0",
            vec!["result".to_string()],
            vec![
                Stmt::new(StmtKind::NewCollection("result".into())),
                Stmt::new(StmtKind::ForEach {
                    var: "o".into(),
                    iter: Expr::LoadAll("Order".into()),
                    body: vec![
                        Stmt::new(StmtKind::Let(
                            "cust".into(),
                            Expr::nav(Expr::var("o"), "customer"),
                        )),
                        Stmt::new(StmtKind::Let(
                            "val".into(),
                            Expr::Call(
                                "myFunc".into(),
                                vec![
                                    Expr::field(Expr::var("o"), "o_id"),
                                    Expr::field(Expr::var("cust"), "c_birth_year"),
                                ],
                            ),
                        )),
                        Stmt::new(StmtKind::Add("result".into(), Expr::var("val"))),
                    ],
                }),
            ],
        );
        f.number_lines(2);
        f
    }

    #[test]
    fn p0_region_tree_matches_figure_5() {
        let r = Region::from_function(&p0());
        // Outermost: sequential region S2-7.
        assert_eq!(r.label("P0"), "P0.S2-7");
        let RegionKind::Seq(children) = &r.kind else {
            panic!("seq expected")
        };
        assert_eq!(children.len(), 2);
        assert_eq!(children[0].label("P0"), "P0.B2");
        assert_eq!(children[1].label("P0"), "P0.L3-7");
        // Loop body is the sequential region S4-6 of three basic blocks.
        let RegionKind::Loop { body, .. } = &children[1].kind else {
            panic!()
        };
        assert_eq!(body.label("P0"), "P0.S4-6");
        let RegionKind::Seq(inner) = &body.kind else {
            panic!()
        };
        assert_eq!(inner.len(), 3);
        assert!(inner.iter().all(|c| matches!(c.kind, RegionKind::Block(_))));
    }

    #[test]
    fn region_round_trips_to_statements() {
        let f = p0();
        let r = Region::from_function(&f);
        let stmts = r.to_stmts();
        assert_eq!(stmts, f.body, "region → stmts is lossless (mod lines)");
    }

    #[test]
    fn if_region_with_and_without_else() {
        let with_else = Stmt::new(StmtKind::If {
            cond: Expr::lit(true),
            then_branch: vec![Stmt::new(StmtKind::Break)],
            else_branch: vec![Stmt::new(StmtKind::Print(Expr::lit(1i64)))],
        });
        let r = Region::from_stmt(&with_else);
        let RegionKind::Cond { else_r, .. } = &r.kind else {
            panic!()
        };
        assert!(!matches!(else_r.kind, RegionKind::Empty));

        let without_else = Stmt::new(StmtKind::If {
            cond: Expr::lit(true),
            then_branch: vec![Stmt::new(StmtKind::Break)],
            else_branch: vec![],
        });
        let r = Region::from_stmt(&without_else);
        let RegionKind::Cond { else_r, .. } = &r.kind else {
            panic!()
        };
        assert!(matches!(else_r.kind, RegionKind::Empty));
    }

    #[test]
    fn try_catch_becomes_black_box() {
        let s = Stmt::new(StmtKind::TryCatch {
            body: vec![Stmt::new(StmtKind::Print(Expr::lit(1i64)))],
            handler: vec![],
        });
        let r = Region::from_stmt(&s);
        assert!(matches!(r.kind, RegionKind::BlackBox(_)));
        // Black boxes reconstruct verbatim.
        assert_eq!(r.to_stmts(), vec![s]);
    }

    #[test]
    fn normalize_flattens_nested_seq_and_drops_empty() {
        let inner = Region {
            kind: RegionKind::Seq(vec![
                Region::from_stmt(&Stmt::new(StmtKind::Break)),
                Region::empty(),
            ]),
            span: (0, 0),
        };
        let outer = Region {
            kind: RegionKind::Seq(vec![inner, Region::from_stmt(&Stmt::new(StmtKind::Break))]),
            span: (0, 0),
        };
        let n = outer.normalize();
        let RegionKind::Seq(children) = &n.kind else {
            panic!()
        };
        assert_eq!(children.len(), 2);
        assert!(children
            .iter()
            .all(|c| matches!(c.kind, RegionKind::Block(_))));
    }

    #[test]
    fn while_region() {
        let s = Stmt::new(StmtKind::While {
            cond: Expr::lit(true),
            body: vec![Stmt::new(StmtKind::Break)],
        });
        let r = Region::from_stmt(&s);
        assert!(matches!(r.kind, RegionKind::WhileLoop { .. }));
    }

    #[test]
    fn count_and_walk_cover_all_nodes() {
        let r = Region::from_function(&p0());
        // S2-7, B2, L3-7, S4-6, and 3 blocks = 7 regions.
        assert_eq!(r.count(), 7);
    }

    #[test]
    fn query_loop_region_label() {
        let mut f = Function::new(
            "M0",
            vec![],
            vec![Stmt::new(StmtKind::ForEach {
                var: "t".into(),
                iter: Expr::Query(QuerySpec::sql(
                    "select month, sale_amt from sales order by month",
                )),
                body: vec![Stmt::new(StmtKind::Let(
                    "sum".into(),
                    Expr::bin(
                        minidb::BinOp::Add,
                        Expr::var("sum"),
                        Expr::field(Expr::var("t"), "sale_amt"),
                    ),
                ))],
            })],
        );
        f.number_lines(4);
        let r = Region::from_function(&f);
        assert_eq!(r.label("M0"), "M0.L4-6");
    }
}
