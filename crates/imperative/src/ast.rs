//! Abstract syntax of the mini language.
//!
//! Statements carry source line numbers so regions can be named the way
//! the paper names them (`P0.L3-7` — loop region of program `P0` spanning
//! lines 3–7). Line numbers are *ignored* by `PartialEq`/`Hash`: two
//! structurally identical fragments are the same region alternative in the
//! Region DAG regardless of where they appeared.

use minidb::{BinOp, SharedPlan, Value};
use std::hash::{Hash, Hasher};

/// An embedded query: a logical plan (parsed from SQL) plus bindings for
/// its named parameters (`:param` → expression evaluated at the call site).
///
/// The plan is [`SharedPlan`] (an `Arc` plus a precomputed structural
/// fingerprint): programs, region operators and memo keys embed the same
/// plans thousands of times, so cloning is a refcount bump and
/// hashing/equality are O(1) fingerprint operations.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct QuerySpec {
    /// The query plan.
    pub plan: SharedPlan,
    /// Parameter bindings, in declaration order.
    pub binds: Vec<(String, Expr)>,
}

impl QuerySpec {
    /// A query with no parameters.
    pub fn of(plan: impl Into<SharedPlan>) -> QuerySpec {
        QuerySpec {
            plan: plan.into(),
            binds: Vec::new(),
        }
    }

    /// Parse SQL text into a query spec with no parameters.
    ///
    /// # Panics
    /// Panics on parse errors; intended for statically-known program text.
    pub fn sql(text: &str) -> QuerySpec {
        QuerySpec::of(minidb::sql::parse(text).expect("valid SQL in program text"))
    }

    /// Add a parameter binding.
    pub fn bind(mut self, name: impl Into<String>, expr: Expr) -> QuerySpec {
        self.binds.push((name.into(), expr));
        self
    }
}

/// Expressions. Data access (`LoadAll`, `Query`, `Nav`, `LookupCache`) is
/// expression-valued, mirroring how ORM code reads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Variable reference.
    Var(String),
    /// Literal.
    Lit(Value),
    /// Binary operation (shares [`minidb::BinOp`] semantics).
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Logical negation.
    Not(Box<Expr>),
    /// `obj.field` — read a column of a row object. Pure.
    Field(Box<Expr>, String),
    /// `obj.assoc` — navigate a many-to-one association. May issue a
    /// query (the N+1 select problem) unless the session cache hits.
    Nav(Box<Expr>, String),
    /// Call a registered pure scalar function (e.g. `myFunc`).
    Call(String, Vec<Expr>),
    /// `loadAll(Entity)` — fetch all rows of the entity's table via ORM.
    LoadAll(String),
    /// `executeQuery("…")` — run SQL and return the row collection.
    Query(QuerySpec),
    /// `executeQuery("…")` used as a scalar: first column of the first
    /// result row (the paper's `sum = executeQuery("select sum(…)…")`).
    ScalarQuery(QuerySpec),
    /// `Utils.lookupCache(cache, key)` — client-side column-cache probe.
    /// Returns the list of cached rows whose key column equals `key`.
    LookupCache(String, Box<Expr>),
    /// `map.get(key)`.
    MapGet(Box<Expr>, Box<Expr>),
    /// `collection.size()`.
    Len(Box<Expr>),
}

impl Expr {
    /// Variable shorthand.
    pub fn var(name: impl Into<String>) -> Expr {
        Expr::Var(name.into())
    }

    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Binary-op shorthand.
    pub fn bin(op: BinOp, l: Expr, r: Expr) -> Expr {
        Expr::Bin(op, Box::new(l), Box::new(r))
    }

    /// Field access shorthand.
    pub fn field(base: Expr, name: impl Into<String>) -> Expr {
        Expr::Field(Box::new(base), name.into())
    }

    /// Association navigation shorthand.
    pub fn nav(base: Expr, assoc: impl Into<String>) -> Expr {
        Expr::Nav(Box::new(base), assoc.into())
    }

    /// Collect free variable names into `out` (with duplicates).
    pub fn free_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Var(v) => out.push(v.clone()),
            Expr::Lit(_) | Expr::LoadAll(_) => {}
            Expr::Bin(_, l, r) => {
                l.free_vars(out);
                r.free_vars(out);
            }
            Expr::Not(e) | Expr::Len(e) => e.free_vars(out),
            Expr::Field(b, _) | Expr::Nav(b, _) => b.free_vars(out),
            Expr::Call(_, args) => {
                for a in args {
                    a.free_vars(out);
                }
            }
            Expr::Query(q) | Expr::ScalarQuery(q) => {
                for (_, e) in &q.binds {
                    e.free_vars(out);
                }
            }
            Expr::LookupCache(_, k) => k.free_vars(out),
            Expr::MapGet(m, k) => {
                m.free_vars(out);
                k.free_vars(out);
            }
        }
    }

    /// True if evaluation may access the database (queries, loads, or
    /// association navigation that can miss the session cache).
    pub fn may_access_db(&self) -> bool {
        match self {
            Expr::LoadAll(_) | Expr::Query(_) | Expr::ScalarQuery(_) | Expr::Nav(_, _) => true,
            Expr::Var(_) | Expr::Lit(_) => false,
            Expr::Bin(_, l, r) => l.may_access_db() || r.may_access_db(),
            Expr::Not(e) | Expr::Len(e) => e.may_access_db(),
            Expr::Field(b, _) => b.may_access_db(),
            Expr::Call(_, args) => args.iter().any(|a| a.may_access_db()),
            Expr::LookupCache(_, k) => k.may_access_db(),
            Expr::MapGet(m, k) => m.may_access_db() || k.may_access_db(),
        }
    }
}

/// Statement payloads.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum StmtKind {
    /// `x = expr` — declaration or assignment.
    Let(String, Expr),
    /// `x = {}` — fresh empty collection.
    NewCollection(String),
    /// `x = new Map()` — fresh empty map.
    NewMap(String),
    /// `collection.add(expr)`.
    Add(String, Expr),
    /// `map.put(key, value)`.
    Put(String, Expr, Expr),
    /// `for (var : iter) { body }` — the cursor loop of the paper.
    ForEach {
        var: String,
        iter: Expr,
        body: Vec<Stmt>,
    },
    /// `while (cond) { body }` — iteration count unknown statically.
    While { cond: Expr, body: Vec<Stmt> },
    /// `if (cond) { then } else { else }`.
    If {
        cond: Expr,
        then_branch: Vec<Stmt>,
        else_branch: Vec<Stmt>,
    },
    /// `print(expr)` — observable side effect.
    Print(Expr),
    /// `return expr?`.
    Return(Option<Expr>),
    /// `break` out of the innermost loop.
    Break,
    /// `Utils.cacheByColumn(cache, source, keyColumn)` — build a
    /// client-side cache of `source` rows keyed by `keyColumn`.
    CacheByColumn {
        cache: String,
        source: Expr,
        key_col: String,
    },
    /// `update table set set_col = value where key_col = key` — a database
    /// write (blocks SQL translation of the enclosing loop; pattern A).
    UpdateQuery {
        table: String,
        set_col: String,
        value: Expr,
        key_col: String,
        key: Expr,
    },
    /// `x = f(args)` — call a user-defined function in the same program.
    LetCall(String, String, Vec<Expr>),
    /// `try { body } catch { handler }` — unstructured control flow.
    TryCatch { body: Vec<Stmt>, handler: Vec<Stmt> },
}

/// A statement: payload plus source line (line 0 = synthesized code).
#[derive(Debug, Clone, Eq)]
pub struct Stmt {
    /// The payload.
    pub kind: StmtKind,
    /// 1-based source line; 0 for generated statements.
    pub line: u32,
}

impl Stmt {
    /// Statement with no line information.
    pub fn new(kind: StmtKind) -> Stmt {
        Stmt { kind, line: 0 }
    }

    /// Statement at a specific line.
    pub fn at(line: u32, kind: StmtKind) -> Stmt {
        Stmt { kind, line }
    }

    /// Child statement lists (loop/branch bodies).
    pub fn children(&self) -> Vec<&[Stmt]> {
        match &self.kind {
            StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => vec![body],
            StmtKind::If {
                then_branch,
                else_branch,
                ..
            } => vec![then_branch, else_branch],
            StmtKind::TryCatch { body, handler } => vec![body, handler],
            _ => Vec::new(),
        }
    }

    /// Largest line number in this statement (inclusive of children).
    pub fn max_line(&self) -> u32 {
        let mut max = self.line;
        for list in self.children() {
            for s in list {
                max = max.max(s.max_line());
            }
        }
        max
    }

    /// Number of statements in this statement, inclusive of children
    /// (an `if` with two one-statement branches counts 3).
    pub fn stmt_count(&self) -> usize {
        1 + self
            .children()
            .iter()
            .flat_map(|list| list.iter())
            .map(|s| s.stmt_count())
            .sum::<usize>()
    }

    /// The variable this statement defines/updates at the top level, if any.
    pub fn updated_var(&self) -> Option<&str> {
        match &self.kind {
            StmtKind::Let(v, _)
            | StmtKind::NewCollection(v)
            | StmtKind::NewMap(v)
            | StmtKind::Add(v, _)
            | StmtKind::Put(v, _, _)
            | StmtKind::LetCall(v, _, _) => Some(v),
            StmtKind::CacheByColumn { cache, .. } => Some(cache),
            _ => None,
        }
    }
}

/// Structural equality ignores line numbers.
impl PartialEq for Stmt {
    fn eq(&self, other: &Self) -> bool {
        self.kind == other.kind
    }
}

/// Structural hash ignores line numbers (consistent with `PartialEq`).
impl Hash for Stmt {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.kind.hash(state);
    }
}

/// A function: name, parameters, body.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Function {
    /// Function name (also used as the program label, e.g. `P0`).
    pub name: String,
    /// Parameter names.
    pub params: Vec<String>,
    /// Body statements.
    pub body: Vec<Stmt>,
}

impl Function {
    /// Build a function.
    pub fn new(name: impl Into<String>, params: Vec<String>, body: Vec<Stmt>) -> Function {
        Function {
            name: name.into(),
            params,
            body,
        }
    }

    /// Total number of statements in the body, inclusive of nesting —
    /// the size metric the differential-oracle minimizer reduces.
    pub fn stmt_count(&self) -> usize {
        self.body.iter().map(|s| s.stmt_count()).sum()
    }

    /// Assign sequential line numbers (starting at `first`) to every
    /// statement in source order, recursing into bodies. Returns the next
    /// free line number.
    pub fn number_lines(&mut self, first: u32) -> u32 {
        fn go(stmts: &mut [Stmt], mut line: u32) -> u32 {
            for s in stmts {
                s.line = line;
                line += 1;
                match &mut s.kind {
                    StmtKind::ForEach { body, .. } | StmtKind::While { body, .. } => {
                        line = go(body, line);
                        line += 1; // closing brace
                    }
                    StmtKind::If {
                        then_branch,
                        else_branch,
                        ..
                    } => {
                        line = go(then_branch, line);
                        if !else_branch.is_empty() {
                            line += 1; // else
                            line = go(else_branch, line);
                        }
                        line += 1;
                    }
                    StmtKind::TryCatch { body, handler } => {
                        line = go(body, line);
                        line += 1;
                        line = go(handler, line);
                        line += 1;
                    }
                    _ => {}
                }
            }
            line
        }
        go(&mut self.body, first)
    }
}

/// A program: one or more functions, the first being the entry point.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Program {
    /// Functions; `functions[0]` is the entry point.
    pub functions: Vec<Function>,
}

impl Program {
    /// Single-function program.
    pub fn single(f: Function) -> Program {
        Program { functions: vec![f] }
    }

    /// The entry function.
    pub fn entry(&self) -> &Function {
        &self.functions[0]
    }

    /// Look up a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Total statement count across all functions.
    pub fn stmt_count(&self) -> usize {
        self.functions.iter().map(|f| f.stmt_count()).sum()
    }

    /// This program with its entry function replaced (helpers unchanged) —
    /// the shape the optimizer returns, reassembled into a runnable
    /// program.
    pub fn with_entry(&self, entry: Function) -> Program {
        let mut functions = self.functions.clone();
        functions[0] = entry;
        Program { functions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn let_stmt(v: &str, e: Expr) -> Stmt {
        Stmt::new(StmtKind::Let(v.into(), e))
    }

    #[test]
    fn stmt_equality_ignores_lines() {
        let a = Stmt::at(3, StmtKind::Break);
        let b = Stmt::at(99, StmtKind::Break);
        assert_eq!(a, b);
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let mut h1 = DefaultHasher::new();
        let mut h2 = DefaultHasher::new();
        a.hash(&mut h1);
        b.hash(&mut h2);
        assert_eq!(h1.finish(), h2.finish());
    }

    #[test]
    fn free_vars_collects_through_structure() {
        let e = Expr::bin(
            BinOp::Add,
            Expr::field(Expr::var("o"), "o_id"),
            Expr::MapGet(Box::new(Expr::var("m")), Box::new(Expr::var("k"))),
        );
        let mut vars = Vec::new();
        e.free_vars(&mut vars);
        assert_eq!(vars, vec!["o", "m", "k"]);
    }

    #[test]
    fn may_access_db_flags_queries_and_nav() {
        assert!(Expr::LoadAll("Order".into()).may_access_db());
        assert!(Expr::nav(Expr::var("o"), "customer").may_access_db());
        assert!(!Expr::field(Expr::var("o"), "o_id").may_access_db());
        let q = Expr::Query(QuerySpec::sql("select * from orders"));
        assert!(q.may_access_db());
    }

    #[test]
    fn number_lines_assigns_sequentially_with_nesting() {
        let mut f = Function::new(
            "p",
            vec![],
            vec![
                let_stmt("x", Expr::lit(1i64)),
                Stmt::new(StmtKind::ForEach {
                    var: "o".into(),
                    iter: Expr::LoadAll("Order".into()),
                    body: vec![
                        let_stmt("y", Expr::lit(2i64)),
                        let_stmt("z", Expr::lit(3i64)),
                    ],
                }),
                Stmt::new(StmtKind::Print(Expr::var("x"))),
            ],
        );
        f.number_lines(2);
        assert_eq!(f.body[0].line, 2);
        assert_eq!(f.body[1].line, 3);
        match &f.body[1].kind {
            StmtKind::ForEach { body, .. } => {
                assert_eq!(body[0].line, 4);
                assert_eq!(body[1].line, 5);
            }
            _ => unreachable!(),
        }
        // 6 is the closing brace; print lands on 7.
        assert_eq!(f.body[2].line, 7);
        assert_eq!(f.body[1].max_line(), 5);
    }

    #[test]
    fn updated_var_reporting() {
        assert_eq!(let_stmt("x", Expr::lit(1i64)).updated_var(), Some("x"));
        assert_eq!(
            Stmt::new(StmtKind::Add("acc".into(), Expr::lit(1i64))).updated_var(),
            Some("acc")
        );
        assert_eq!(Stmt::new(StmtKind::Break).updated_var(), None);
    }

    #[test]
    fn query_spec_binds_params() {
        let q = QuerySpec::sql("select * from customer where c_customer_sk = :cust")
            .bind("cust", Expr::field(Expr::var("o"), "o_customer_sk"));
        assert_eq!(q.binds.len(), 1);
        assert_eq!(q.plan.params(), vec!["cust".to_string()]);
    }

    #[test]
    fn program_lookup() {
        let p = Program {
            functions: vec![
                Function::new("main", vec![], vec![]),
                Function::new("helper", vec!["x".into()], vec![]),
            ],
        };
        assert_eq!(p.entry().name, "main");
        assert!(p.function("helper").is_some());
        assert!(p.function("nope").is_none());
    }
}
