//! The transformation-rule engine.

use crate::memo::{GroupId, MExprId, Memo, OpTree};
use std::fmt::Debug;
use std::hash::Hash;

/// A transformation rule.
///
/// Rules fire on one m-expr at a time and return alternative trees that
/// compute the same result; the engine inserts each alternative into the
/// m-expr's group. Rules may be cyclic (commutativity, T2 ⇄ N2): the
/// memo's duplicate detection guarantees termination.
pub trait Rule<Op: Clone + Eq + Hash + Debug> {
    /// Rule name for diagnostics.
    fn name(&self) -> &str;

    /// Alternatives for the expression `expr`, if the rule matches.
    fn apply(&self, memo: &Memo<Op>, expr: MExprId) -> Vec<OpTree<Op>>;
}

/// Statistics of one expansion run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExpandStats {
    /// Full passes over the memo.
    pub passes: usize,
    /// Rule applications that produced at least one alternative.
    pub matches: usize,
    /// Alternatives actually new (not deduplicated away).
    pub added: usize,
}

/// Expand the memo by applying `rules` to every m-expr until fixpoint.
///
/// Each pass snapshots the current expression count; new expressions are
/// processed in subsequent passes. Termination: every insertion either
/// dedups to an existing expression (no growth) or adds one, and rules can
/// only generate finitely many shapes over a finite vocabulary — in
/// practice the fixpoint is reached in a few passes, and `max_passes`
/// bounds pathological rule sets.
pub fn expand<Op: Clone + Eq + Hash + Debug>(
    memo: &mut Memo<Op>,
    rules: &[&dyn Rule<Op>],
    max_passes: usize,
) -> ExpandStats {
    let mut stats = ExpandStats::default();
    loop {
        stats.passes += 1;
        let before_exprs = memo.num_exprs();
        let snapshot: Vec<MExprId> = memo.expr_ids().collect();
        for id in snapshot {
            for rule in rules {
                let alternatives = rule.apply(memo, id);
                if alternatives.is_empty() {
                    continue;
                }
                stats.matches += 1;
                let group: GroupId = memo.expr(id).group;
                for alt in alternatives {
                    let pre = memo.num_exprs();
                    memo.insert_tree(&alt, Some(group));
                    if memo.num_exprs() > pre {
                        stats.added += memo.num_exprs() - pre;
                    }
                }
            }
        }
        if memo.num_exprs() == before_exprs || stats.passes >= max_passes {
            return stats;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::Child;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum TOp {
        Leaf(&'static str),
        Pair,
    }

    /// Commutativity: Pair(x, y) → Pair(y, x). Cyclic on purpose.
    struct Commute;
    impl Rule<TOp> for Commute {
        fn name(&self) -> &str {
            "commute"
        }
        fn apply(&self, memo: &Memo<TOp>, expr: MExprId) -> Vec<OpTree<TOp>> {
            let e = memo.expr(expr);
            if e.op != TOp::Pair {
                return Vec::new();
            }
            vec![OpTree {
                op: TOp::Pair,
                children: vec![Child::Group(e.children[1]), Child::Group(e.children[0])],
            }]
        }
    }

    #[test]
    fn cyclic_rule_terminates_with_both_orders() {
        let mut memo = Memo::new();
        let tree = OpTree::node(
            TOp::Pair,
            vec![OpTree::leaf(TOp::Leaf("a")), OpTree::leaf(TOp::Leaf("b"))],
        );
        let root = memo.insert_tree(&tree, None);
        let stats = expand(&mut memo, &[&Commute], 16);
        assert!(stats.passes <= 3, "fixpoint reached quickly: {stats:?}");
        assert_eq!(memo.group(root).len(), 2, "(a,b) and (b,a)");
    }

    #[test]
    fn expansion_is_idempotent() {
        let mut memo = Memo::new();
        let tree = OpTree::node(
            TOp::Pair,
            vec![OpTree::leaf(TOp::Leaf("a")), OpTree::leaf(TOp::Leaf("b"))],
        );
        let root = memo.insert_tree(&tree, None);
        expand(&mut memo, &[&Commute], 16);
        let exprs_after_first = memo.num_exprs();
        let stats = expand(&mut memo, &[&Commute], 16);
        assert_eq!(memo.num_exprs(), exprs_after_first);
        assert_eq!(stats.added, 0);
        assert_eq!(memo.group(root).len(), 2);
    }

    #[test]
    fn nested_pairs_commute_at_every_level() {
        // Pair(Pair(a,b), c): commuting both levels yields 2 exprs in each
        // pair group → 4 distinct plans at the root (Figure 4c analogue).
        let mut memo = Memo::new();
        let tree = OpTree::node(
            TOp::Pair,
            vec![
                OpTree::node(
                    TOp::Pair,
                    vec![OpTree::leaf(TOp::Leaf("a")), OpTree::leaf(TOp::Leaf("b"))],
                ),
                OpTree::leaf(TOp::Leaf("c")),
            ],
        );
        let root = memo.insert_tree(&tree, None);
        expand(&mut memo, &[&Commute], 16);
        assert_eq!(memo.group(root).len(), 2);
        let plans = crate::search::count_plans(&memo, root);
        assert_eq!(plans, 4);
    }
}
