//! A generic Volcano/Cascades optimization framework.
//!
//! The paper extends Volcano/Cascades (Graefe et al.) from relational
//! algebra to whole programs; this crate is the framework itself, generic
//! over the operator type:
//!
//! * [`Memo`] — the AND-OR DAG: *groups* are OR nodes (equivalence classes
//!   of expressions computing the same result), *m-exprs* are AND nodes
//!   (an operator applied to child groups). Duplicate m-exprs are detected
//!   by hash-consing, and groups found to contain the same expression are
//!   merged — this is what makes cyclic transformation rules (join
//!   commutativity, T2/N2) terminate (§III-A).
//! * [`Rule`] / [`expand`] — the transformation engine: rules fire on
//!   m-exprs and contribute alternative [`OpTree`]s to the m-expr's group;
//!   expansion runs to a fixpoint.
//! * [`CostModel`] / [`best_plan`] — memoized least-cost extraction over
//!   the DAG (OR node = min over children; AND node = operator cost
//!   combined with child costs), with cycle-safe traversal.
//! * [`relalg`] — a small relational-algebra instantiation reproducing the
//!   paper's Figure 4 example (join commutativity/associativity), used by
//!   tests and as executable documentation of the framework.

mod costmemo;
mod engine;
mod memo;
pub mod relalg;
mod search;

pub use costmemo::CostMemo;
pub use engine::{expand, ExpandStats, Rule};
pub use memo::{Child, GroupId, MExpr, MExprId, Memo, OpTree};
pub use search::{
    best_plan, best_plan_from, cost_table, cost_table_sweeps, count_plans, top_k_plans,
    tree_fingerprint, BestPlan, CostModel, CostTable,
};
