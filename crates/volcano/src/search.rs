//! Least-cost plan extraction over the AND-OR DAG.

use crate::memo::{GroupId, MExprId, Memo, OpTree};
use std::fmt::Debug;
use std::hash::Hash;

/// Cost model for AND nodes: given an m-expr and the best costs of its
/// child groups, return the total cost of the expression (§III-A: "Cost of
/// operator + Sum of costs of children" — the model owns the combination
/// so richer formulas like `C_cond = p·C_t + (1−p)·C_f + C_p` fit too).
pub trait CostModel<Op: Clone + Eq + Hash + Debug> {
    /// Total cost of `expr` given `child_costs` (aligned with children).
    fn cost(&self, memo: &Memo<Op>, expr: MExprId, child_costs: &[f64]) -> f64;
}

/// An extracted plan: the winning tree and its estimated cost.
#[derive(Debug, Clone)]
pub struct BestPlan<Op> {
    /// Estimated cost of the plan.
    pub cost: f64,
    /// The chosen operator tree.
    pub tree: OpTree<Op>,
    /// The chosen m-expr per visited group (for introspection).
    pub choices: Vec<(GroupId, MExprId)>,
}

/// The value-iterated cost table: best known cost per group (indexed by
/// group id; read through [`Memo::find`] for canonical ids), plus whether
/// iteration reached its fixpoint within the sweep budget.
#[derive(Debug, Clone)]
pub struct CostTable {
    /// Best cost per group (`f64::INFINITY` when no finite plan is known).
    pub group_costs: Vec<f64>,
    /// False when a sweep budget stopped iteration before the fixpoint —
    /// remaining `INFINITY`/non-optimal entries may be artifacts of the
    /// budget rather than true costs.
    pub converged: bool,
}

/// Run cost value iteration over the whole memo: groups start at `+inf`
/// and relax until a fixpoint (or until `max_sweeps`, when given — the
/// search-effort budget). Convergence: costs are non-negative and only
/// decrease; the optimal (acyclic) plan is found within `#groups` sweeps.
pub fn cost_table<Op: Clone + Eq + Hash + Debug>(
    memo: &Memo<Op>,
    model: &dyn CostModel<Op>,
    max_sweeps: Option<usize>,
) -> CostTable {
    let n = memo.num_groups();
    let mut cost = vec![f64::INFINITY; n];
    // Improvements only propagate along acyclic paths (a self-referential
    // expression can never lower its own group), so the fixpoint is
    // reached within `n` improving sweeps — one more quiet sweep confirms
    // it. Only an explicit `max_sweeps` budget may stop earlier.
    let sweeps = max_sweeps.unwrap_or_else(|| n.saturating_add(1)).max(1);
    let mut converged = false;
    for _ in 0..sweeps {
        let mut changed = false;
        for eid in memo.expr_ids() {
            let e = memo.expr(eid);
            let group = memo.find(e.group);
            let child_costs: Vec<f64> = e.children.iter().map(|&c| cost[memo.find(c)]).collect();
            if child_costs.iter().any(|c| !c.is_finite()) {
                continue;
            }
            let total = model.cost(memo, eid, &child_costs);
            if total < cost[group] {
                cost[group] = total;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    CostTable {
        group_costs: cost,
        converged,
    }
}

/// Find the least-cost plan rooted at `root`.
///
/// OR nodes take the minimum over their alternatives; AND nodes combine
/// operator and child costs via the model. Costs are computed by **value
/// iteration** (see [`cost_table`]), which correctly handles
/// *self-referential alternatives* — an expression that contains its own
/// group as a sub-region (e.g. "run the loop, then also run an extra
/// aggregate query" is an alternative of the loop's group). The optimum
/// is always achieved by an acyclic plan, and extraction guards against
/// choosing an expression that re-enters a group already on the current
/// path.
pub fn best_plan<Op: Clone + Eq + Hash + Debug>(
    memo: &Memo<Op>,
    root: GroupId,
    model: &dyn CostModel<Op>,
) -> Option<BestPlan<Op>> {
    best_plan_from(memo, root, model, &cost_table(memo, model, None))
}

/// Extract the least-cost plan rooted at `root` from a precomputed
/// [`CostTable`] (the budgeted / introspectable form of [`best_plan`]).
pub fn best_plan_from<Op: Clone + Eq + Hash + Debug>(
    memo: &Memo<Op>,
    root: GroupId,
    model: &dyn CostModel<Op>,
    table: &CostTable,
) -> Option<BestPlan<Op>> {
    let cost = &table.group_costs;
    let root = memo.find(root);
    if !cost[root].is_finite() {
        return None;
    }
    let mut choices = Vec::new();
    let mut path = Vec::new();
    let tree = extract(memo, root, cost, model, &mut choices, &mut path)?;
    Some(BestPlan {
        cost: cost[root],
        tree,
        choices,
    })
}

/// Extract the cheapest plan, never re-entering a group on the current
/// path (an acyclic optimum always exists).
fn extract<Op: Clone + Eq + Hash + Debug>(
    memo: &Memo<Op>,
    group: GroupId,
    cost: &[f64],
    model: &dyn CostModel<Op>,
    choices: &mut Vec<(GroupId, MExprId)>,
    path: &mut Vec<GroupId>,
) -> Option<OpTree<Op>> {
    let group = memo.find(group);
    if path.contains(&group) {
        return None;
    }
    path.push(group);

    // Cheapest expression whose children avoid the current path.
    let mut best: Option<(f64, MExprId)> = None;
    for &eid in memo.group(group) {
        let e = memo.expr(eid);
        if e.children.iter().any(|&c| path.contains(&memo.find(c))) {
            continue;
        }
        let child_costs: Vec<f64> = e.children.iter().map(|&c| cost[memo.find(c)]).collect();
        if child_costs.iter().any(|c| !c.is_finite()) {
            continue;
        }
        let total = model.cost(memo, eid, &child_costs);
        match best {
            Some((b, _)) if b <= total => {}
            _ => best = Some((total, eid)),
        }
    }
    let (_, expr) = best?;
    choices.push((group, expr));
    let e = memo.expr(expr);
    let mut children = Vec::with_capacity(e.children.len());
    for &c in &e.children {
        let sub = extract(memo, c, cost, model, choices, path)?;
        children.push(crate::memo::Child::Tree(Box::new(sub)));
    }
    path.pop();
    Some(OpTree {
        op: e.op.clone(),
        children,
    })
}

/// Count the distinct plans representable from `root` (product over AND
/// children, sum over OR alternatives). Cycles contribute zero (a cyclic
/// "plan" is not a plan). Saturates at `u64::MAX`.
pub fn count_plans<Op: Clone + Eq + Hash + Debug>(memo: &Memo<Op>, root: GroupId) -> u64 {
    fn go<Op: Clone + Eq + Hash + Debug>(
        memo: &Memo<Op>,
        group: GroupId,
        visiting: &mut Vec<GroupId>,
    ) -> u64 {
        let group = memo.find(group);
        if visiting.contains(&group) {
            return 0;
        }
        visiting.push(group);
        let mut total: u64 = 0;
        for &eid in memo.group(group) {
            let mut prod: u64 = 1;
            for &c in &memo.expr(eid).children {
                prod = prod.saturating_mul(go(memo, c, visiting));
                if prod == 0 {
                    break;
                }
            }
            total = total.saturating_add(prod);
        }
        visiting.pop();
        total
    }
    go(memo, root, &mut Vec::new())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::Child;

    // Costs live in a side table (the model), not in the operator enum.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Op2 {
        Leaf(&'static str),
        Combine,
    }

    struct Table;
    impl CostModel<Op2> for Table {
        fn cost(&self, memo: &Memo<Op2>, expr: MExprId, child_costs: &[f64]) -> f64 {
            let own = match memo.expr(expr).op {
                Op2::Leaf("cheap") => 1.0,
                Op2::Leaf("pricey") => 100.0,
                Op2::Leaf(_) => 10.0,
                Op2::Combine => 5.0,
            };
            own + child_costs.iter().sum::<f64>()
        }
    }

    #[test]
    fn picks_cheapest_alternative() {
        let mut memo = Memo::new();
        let g = memo.insert_tree(&OpTree::leaf(Op2::Leaf("pricey")), None);
        memo.insert_tree(&OpTree::leaf(Op2::Leaf("cheap")), Some(g));
        let best = best_plan(&memo, g, &Table).unwrap();
        assert_eq!(best.cost, 1.0);
        assert_eq!(best.tree.op, Op2::Leaf("cheap"));
    }

    #[test]
    fn combines_child_costs() {
        let mut memo = Memo::new();
        let tree = OpTree::node(
            Op2::Combine,
            vec![
                OpTree::leaf(Op2::Leaf("a")),
                OpTree::leaf(Op2::Leaf("cheap")),
            ],
        );
        let root = memo.insert_tree(&tree, None);
        let best = best_plan(&memo, root, &Table).unwrap();
        assert_eq!(best.cost, 5.0 + 10.0 + 1.0);
    }

    #[test]
    fn min_propagates_through_shared_groups() {
        let mut memo = Memo::new();
        let shared = memo.insert_tree(&OpTree::leaf(Op2::Leaf("pricey")), None);
        memo.insert_tree(&OpTree::leaf(Op2::Leaf("cheap")), Some(shared));
        let root = memo.insert_tree(
            &OpTree::over_groups(Op2::Combine, vec![shared, shared]),
            None,
        );
        let best = best_plan(&memo, root, &Table).unwrap();
        assert_eq!(
            best.cost,
            5.0 + 1.0 + 1.0,
            "shared group costed once, used twice"
        );
        assert_eq!(best.choices.len(), 3);
    }

    #[test]
    fn cyclic_alternatives_are_ignored() {
        // Group g contains Leaf(a) and Combine(g, b): the recursive
        // alternative can never be chosen.
        let mut memo = Memo::new();
        let g = memo.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
        let b = memo.insert_tree(&OpTree::leaf(Op2::Leaf("cheap")), None);
        memo.insert_expr(Op2::Combine, vec![g, b], Some(g));
        let best = best_plan(&memo, g, &Table).unwrap();
        assert_eq!(best.cost, 10.0);
        assert_eq!(best.tree.op, Op2::Leaf("a"));
    }

    #[test]
    fn cost_table_reports_convergence_and_budget_exhaustion() {
        let mut memo = Memo::new();
        let tree = OpTree::node(
            Op2::Combine,
            vec![
                OpTree::node(Op2::Combine, vec![OpTree::leaf(Op2::Leaf("a"))]),
                OpTree::leaf(Op2::Leaf("cheap")),
            ],
        );
        let root = memo.insert_tree(&tree, None);
        let full = cost_table(&memo, &Table, None);
        assert!(full.converged);
        // A minimal memo needing every sweep still confirms its fixpoint.
        let mut tiny = Memo::new();
        let g = tiny.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
        let t = cost_table(&tiny, &Table, None);
        assert!(t.converged, "unbudgeted iteration always converges");
        assert_eq!(t.group_costs[tiny.find(g)], 10.0);
        assert_eq!(full.group_costs[memo.find(root)], 5.0 + 5.0 + 10.0 + 1.0);
        // A one-sweep budget ends iteration while costs are still moving,
        // so the fixpoint is never confirmed.
        let clipped = cost_table(&memo, &Table, Some(1));
        assert!(!clipped.converged);
        assert!(best_plan_from(&memo, root, &Table, &full).is_some());
    }

    #[test]
    fn count_plans_multiplies_and_adds() {
        let mut memo = Memo::new();
        let l = memo.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
        memo.insert_tree(&OpTree::leaf(Op2::Leaf("cheap")), Some(l));
        let r = memo.insert_tree(&OpTree::leaf(Op2::Leaf("b")), None);
        let root = memo.insert_tree(&OpTree::over_groups(Op2::Combine, vec![l, r]), None);
        assert_eq!(count_plans(&memo, root), 2);
        memo.insert_tree(&OpTree::leaf(Op2::Leaf("pricey")), Some(r));
        assert_eq!(count_plans(&memo, root), 4);
    }

    #[test]
    fn empty_group_has_no_plan() {
        let memo: Memo<Op2> = Memo::new();
        // No groups at all → count on a synthetic id would panic; instead
        // check that a cyclic-only group yields None.
        let mut memo2 = Memo::new();
        let g = memo2.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
        // A second group whose only expr references g... and g references
        // it back, forming a pure cycle.
        let h = memo2.insert_expr(Op2::Combine, vec![g], None);
        let _ = memo2.insert_expr(Op2::Combine, vec![h], Some(g));
        // g still has Leaf(a), so best_plan works; h's only route is via g.
        assert!(best_plan(&memo2, h, &Table).is_some());
        drop(memo);
        // Child references existing group inline:
        let mut memo3: Memo<Op2> = Memo::new();
        let base = memo3.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
        let t = OpTree {
            op: Op2::Combine,
            children: vec![Child::Group(base)],
        };
        let root = memo3.insert_tree(&t, None);
        assert!(best_plan(&memo3, root, &Table).is_some());
    }
}
