//! Least-cost plan extraction over the AND-OR DAG.

use crate::memo::{Child, GroupId, MExprId, Memo, OpTree};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};
use std::fmt::Debug;
use std::hash::{Hash, Hasher};

/// Cost model for AND nodes: given an m-expr and the best costs of its
/// child groups, return the total cost of the expression (§III-A: "Cost of
/// operator + Sum of costs of children" — the model owns the combination
/// so richer formulas like `C_cond = p·C_t + (1−p)·C_f + C_p` fit too).
pub trait CostModel<Op: Clone + Eq + Hash + Debug> {
    /// Total cost of `expr` given `child_costs` (aligned with children).
    fn cost(&self, memo: &Memo<Op>, expr: MExprId, child_costs: &[f64]) -> f64;
}

/// An extracted plan: the winning tree and its estimated cost.
#[derive(Debug, Clone)]
pub struct BestPlan<Op> {
    /// Estimated cost of the plan.
    pub cost: f64,
    /// The chosen operator tree.
    pub tree: OpTree<Op>,
    /// The chosen m-expr per visited group (for introspection).
    pub choices: Vec<(GroupId, MExprId)>,
}

/// The value-iterated cost table: best known cost per group (indexed by
/// group id; read through [`Memo::find`] for canonical ids), plus whether
/// iteration reached its fixpoint within the sweep budget.
#[derive(Debug, Clone)]
pub struct CostTable {
    /// Best cost per group (`f64::INFINITY` when no finite plan is known).
    pub group_costs: Vec<f64>,
    /// False when a sweep budget stopped iteration before the fixpoint —
    /// remaining `INFINITY`/non-optimal entries may be artifacts of the
    /// budget rather than true costs.
    pub converged: bool,
}

/// Run cost value iteration over the whole memo: groups start at `+inf`
/// and relax until a fixpoint (or until `max_sweeps`, when given — the
/// search-effort budget). Convergence: costs are non-negative and only
/// decrease; the optimal (acyclic) plan is found within `#groups` sweeps.
///
/// Internally this is **worklist-driven**: a reverse-dependency index
/// (child group → parent m-exprs) is built once, and each sweep evaluates
/// only the expressions whose child costs changed since their previous
/// evaluation. Because re-evaluating an expression with unchanged child
/// costs can never lower its group's (monotonically decreasing) cost, the
/// worklist run produces the *same sequence of cost updates* as the full
/// Gauss-Seidel sweep of [`cost_table_sweeps`] — `group_costs` and
/// `converged` are bit-for-bit identical under any `max_sweeps` budget;
/// only the number of cost-model consultations shrinks.
pub fn cost_table<Op: Clone + Eq + Hash + Debug>(
    memo: &Memo<Op>,
    model: &dyn CostModel<Op>,
    max_sweeps: Option<usize>,
) -> CostTable {
    let n = memo.num_groups();
    let n_exprs = memo.num_exprs();
    let mut cost = vec![f64::INFINITY; n];
    // Improvements only propagate along acyclic paths (a self-referential
    // expression can never lower its own group), so the fixpoint is
    // reached within `n` improving sweeps — one more quiet sweep confirms
    // it. Only an explicit `max_sweeps` budget may stop earlier.
    let sweeps = max_sweeps.unwrap_or_else(|| n.saturating_add(1)).max(1);

    // Canonicalize the DAG once: per-expr home group and child groups
    // (flattened; `memo.find` is stable while the memo is borrowed).
    let mut expr_group = Vec::with_capacity(n_exprs);
    let mut flat_children: Vec<GroupId> = Vec::new();
    let mut child_offsets = Vec::with_capacity(n_exprs + 1);
    child_offsets.push(0usize);
    for eid in memo.expr_ids() {
        let e = memo.expr(eid);
        expr_group.push(memo.find(e.group));
        flat_children.extend(e.children.iter().map(|&c| memo.find(c)));
        child_offsets.push(flat_children.len());
    }
    // Reverse-dependency index: group → expressions with it as a child
    // (deduplicated; an expr using a group twice is still one parent).
    let mut parents: Vec<Vec<MExprId>> = vec![Vec::new(); n];
    for eid in 0..n_exprs {
        let kids = &flat_children[child_offsets[eid]..child_offsets[eid + 1]];
        for (i, &g) in kids.iter().enumerate() {
            if !kids[..i].contains(&g) {
                parents[g].push(eid);
            }
        }
    }

    // The first sweep evaluates everything (all costs just became known);
    // later sweeps evaluate only scheduled expressions, in ascending id
    // order to reproduce the reference sweep's in-place update sequence.
    let mut current: Vec<MExprId> = (0..n_exprs).collect();
    let mut next: Vec<MExprId> = Vec::new();
    // Bitsets: `in_current[e]` — e sits in the *unprocessed tail* of this
    // sweep; `in_next[e]` — e is already scheduled for the next sweep.
    let mut in_current = vec![true; n_exprs];
    let mut in_next = vec![false; n_exprs];
    let mut scratch: Vec<f64> = Vec::new();
    let mut converged = false;
    for _ in 0..sweeps {
        if current.is_empty() {
            // The reference sweep would scan every expr and change
            // nothing: the fixpoint is confirmed within budget.
            converged = true;
            break;
        }
        let mut changed = false;
        // Ascending order; an in-sweep improvement may insert parents with
        // larger ids, which must run in this same sweep (Gauss-Seidel).
        let mut i = 0;
        while i < current.len() {
            let eid = current[i];
            i += 1;
            in_current[eid] = false;
            let kids = &flat_children[child_offsets[eid]..child_offsets[eid + 1]];
            scratch.clear();
            scratch.extend(kids.iter().map(|&c| cost[c]));
            if scratch.iter().any(|c| !c.is_finite()) {
                continue;
            }
            let total = model.cost(memo, eid, &scratch);
            let group = expr_group[eid];
            if total < cost[group] {
                cost[group] = total;
                changed = true;
                for &p in &parents[group] {
                    if p > eid {
                        // Later in this sweep: the reference sweep sees
                        // the new cost when it reaches `p`. The tail of
                        // `current` stays sorted, so insert in order.
                        if !in_current[p] {
                            in_current[p] = true;
                            let pos = current[i..]
                                .iter()
                                .position(|&q| q > p)
                                .map(|k| i + k)
                                .unwrap_or(current.len());
                            current.insert(pos, p);
                        }
                    } else if !in_next[p] {
                        in_next[p] = true;
                        next.push(p);
                    }
                }
            }
        }
        if !changed {
            converged = true;
            break;
        }
        current.clear();
        std::mem::swap(&mut current, &mut next);
        current.sort_unstable();
        for &e in &current {
            in_next[e] = false;
            in_current[e] = true;
        }
    }
    CostTable {
        group_costs: cost,
        converged,
    }
}

/// The straightforward O(sweeps × exprs) Gauss-Seidel sweep this module
/// used before the worklist engine — kept as the executable specification:
/// [`cost_table`] must reproduce its `group_costs` and `converged`
/// bit-for-bit (asserted by the equivalence suite), it just consults the
/// cost model far less.
pub fn cost_table_sweeps<Op: Clone + Eq + Hash + Debug>(
    memo: &Memo<Op>,
    model: &dyn CostModel<Op>,
    max_sweeps: Option<usize>,
) -> CostTable {
    let n = memo.num_groups();
    let mut cost = vec![f64::INFINITY; n];
    let sweeps = max_sweeps.unwrap_or_else(|| n.saturating_add(1)).max(1);
    let mut converged = false;
    for _ in 0..sweeps {
        let mut changed = false;
        for eid in memo.expr_ids() {
            let e = memo.expr(eid);
            let group = memo.find(e.group);
            let child_costs: Vec<f64> = e.children.iter().map(|&c| cost[memo.find(c)]).collect();
            if child_costs.iter().any(|c| !c.is_finite()) {
                continue;
            }
            let total = model.cost(memo, eid, &child_costs);
            if total < cost[group] {
                cost[group] = total;
                changed = true;
            }
        }
        if !changed {
            converged = true;
            break;
        }
    }
    CostTable {
        group_costs: cost,
        converged,
    }
}

/// Find the least-cost plan rooted at `root`.
///
/// OR nodes take the minimum over their alternatives; AND nodes combine
/// operator and child costs via the model. Costs are computed by **value
/// iteration** (see [`cost_table`]), which correctly handles
/// *self-referential alternatives* — an expression that contains its own
/// group as a sub-region (e.g. "run the loop, then also run an extra
/// aggregate query" is an alternative of the loop's group). The optimum
/// is always achieved by an acyclic plan, and extraction guards against
/// choosing an expression that re-enters a group already on the current
/// path.
pub fn best_plan<Op: Clone + Eq + Hash + Debug>(
    memo: &Memo<Op>,
    root: GroupId,
    model: &dyn CostModel<Op>,
) -> Option<BestPlan<Op>> {
    best_plan_from(memo, root, model, &cost_table(memo, model, None))
}

/// Extract the least-cost plan rooted at `root` from a precomputed
/// [`CostTable`] (the budgeted / introspectable form of [`best_plan`]).
pub fn best_plan_from<Op: Clone + Eq + Hash + Debug>(
    memo: &Memo<Op>,
    root: GroupId,
    model: &dyn CostModel<Op>,
    table: &CostTable,
) -> Option<BestPlan<Op>> {
    let cost = &table.group_costs;
    let root = memo.find(root);
    if !cost[root].is_finite() {
        return None;
    }
    let mut choices = Vec::new();
    let mut on_path = vec![false; memo.num_groups()];
    let tree = extract(memo, root, cost, model, &mut choices, &mut on_path)?;
    Some(BestPlan {
        cost: cost[root],
        tree,
        choices,
    })
}

/// Extract the cheapest plan, never re-entering a group on the current
/// path (an acyclic optimum always exists). `on_path` is a bitset over
/// canonical group ids (constant-time membership instead of the linear
/// scan a `Vec` path would need).
fn extract<Op: Clone + Eq + Hash + Debug>(
    memo: &Memo<Op>,
    group: GroupId,
    cost: &[f64],
    model: &dyn CostModel<Op>,
    choices: &mut Vec<(GroupId, MExprId)>,
    on_path: &mut [bool],
) -> Option<OpTree<Op>> {
    let group = memo.find(group);
    if on_path[group] {
        return None;
    }
    on_path[group] = true;

    // Cheapest expression whose children avoid the current path.
    let mut child_costs: Vec<f64> = Vec::new();
    let mut best: Option<(f64, MExprId)> = None;
    'exprs: for &eid in memo.group(group) {
        let e = memo.expr(eid);
        child_costs.clear();
        for &c in &e.children {
            let c = memo.find(c);
            if on_path[c] || !cost[c].is_finite() {
                continue 'exprs;
            }
            child_costs.push(cost[c]);
        }
        let total = model.cost(memo, eid, &child_costs);
        // Among equal-cost alternatives the lowest m-expr id wins. Group
        // iteration order follows insertion and merge history, so "first
        // in the group" is not stable across equivalent memo builds; ids
        // are assigned at insertion and survive merges unchanged.
        match best {
            Some((b, be)) if b < total || (b == total && be < eid) => {}
            _ => best = Some((total, eid)),
        }
    }
    let Some((_, expr)) = best else {
        on_path[group] = false;
        return None;
    };
    choices.push((group, expr));
    let e = memo.expr(expr);
    let mut children = Vec::with_capacity(e.children.len());
    for &c in &e.children {
        let sub = extract(memo, c, cost, model, choices, on_path)?;
        children.push(crate::memo::Child::Tree(Box::new(sub)));
    }
    on_path[group] = false;
    Some(OpTree {
        op: e.op.clone(),
        children,
    })
}

/// Structural fingerprint of an operator tree: FNV-1a over a preorder
/// walk of operators and arities. Two extractions of the same tree hash
/// identically regardless of which memo (or insertion order) produced
/// them, which is what [`top_k_plans`] uses both to deduplicate
/// structurally equal candidates and to break cost ties deterministically.
pub fn tree_fingerprint<Op: Clone + Eq + Hash + Debug>(tree: &OpTree<Op>) -> u64 {
    struct Fnv(u64);
    impl Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x100_0000_01b3);
            }
        }
    }
    fn walk<Op: Clone + Eq + Hash + Debug>(tree: &OpTree<Op>, h: &mut Fnv) {
        tree.op.hash(h);
        tree.children.len().hash(h);
        for child in &tree.children {
            match child {
                Child::Tree(t) => {
                    0u8.hash(h);
                    walk(t, h);
                }
                Child::Group(g) => {
                    1u8.hash(h);
                    g.hash(h);
                }
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    walk(tree, &mut h);
    h.finish()
}

/// A candidate produced while enumerating a group's k cheapest plans.
struct Ranked<Op> {
    cost: f64,
    fingerprint: u64,
    tree: OpTree<Op>,
    choices: Vec<(GroupId, MExprId)>,
}

/// A pending child-rank combination in the lazy k-best heap.
struct Combo {
    cost: f64,
    ranks: Vec<usize>,
}
impl PartialEq for Combo {
    fn eq(&self, other: &Self) -> bool {
        self.cost.to_bits() == other.cost.to_bits() && self.ranks == other.ranks
    }
}
impl Eq for Combo {}
impl PartialOrd for Combo {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Combo {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.cost
            .total_cmp(&other.cost)
            .then_with(|| self.ranks.cmp(&other.ranks))
    }
}

/// Extract the `k` cheapest **structurally distinct** plans rooted at
/// `root` from a precomputed [`CostTable`].
///
/// Guarantees:
/// * the first plan is bit-identical to [`best_plan_from`] — same cost
///   bits, same tree, same choice list (it *is* that extraction);
/// * plans are sorted by ascending cost, ties broken by
///   [`tree_fingerprint`] so the order is independent of memo insertion
///   order;
/// * plans are pairwise structurally distinct (distinct fingerprints);
/// * extraction is cycle-safe: like [`best_plan_from`], no plan re-enters
///   a group already on its own path, so self-referential alternatives
///   are enumerated but never chosen.
///
/// Runner-up costs are compositional — the model's cost of each chosen
/// expression over its chosen children's costs — which requires the model
/// to be monotone in child costs (true of every model here: all are
/// non-negative weighted sums), so per-group enumeration can stop after
/// `k` candidates.
pub fn top_k_plans<Op: Clone + Eq + Hash + Debug>(
    memo: &Memo<Op>,
    root: GroupId,
    model: &dyn CostModel<Op>,
    table: &CostTable,
    k: usize,
) -> Vec<BestPlan<Op>> {
    if k == 0 {
        return Vec::new();
    }
    let Some(best) = best_plan_from(memo, root, model, table) else {
        return Vec::new();
    };
    if k == 1 {
        return vec![best];
    }
    let root = memo.find(root);
    let mut on_path = vec![false; memo.num_groups()];
    let ranked = ranked_plans(memo, root, model, &table.group_costs, k, &mut on_path);
    let mut seen = vec![tree_fingerprint(&best.tree)];
    let mut out = vec![best];
    for cand in ranked {
        if out.len() == k {
            break;
        }
        if seen.contains(&cand.fingerprint) {
            continue;
        }
        seen.push(cand.fingerprint);
        out.push(BestPlan {
            cost: cand.cost,
            tree: cand.tree,
            choices: cand.choices,
        });
    }
    out
}

/// The k cheapest structurally distinct plans of `group`, each with its
/// compositional cost. Children are enumerated recursively; combinations
/// of child ranks are explored lazily, cheapest-first, via a heap seeded
/// with the all-rank-zero combination (Huang & Chiang's k-best scheme).
fn ranked_plans<Op: Clone + Eq + Hash + Debug>(
    memo: &Memo<Op>,
    group: GroupId,
    model: &dyn CostModel<Op>,
    cost: &[f64],
    k: usize,
    on_path: &mut [bool],
) -> Vec<Ranked<Op>> {
    let group = memo.find(group);
    if on_path[group] {
        return Vec::new();
    }
    on_path[group] = true;
    let mut cands: Vec<Ranked<Op>> = Vec::new();
    'exprs: for &eid in memo.group(group) {
        let e = memo.expr(eid);
        let mut kids: Vec<GroupId> = Vec::with_capacity(e.children.len());
        for &c in &e.children {
            let c = memo.find(c);
            // Same pre-filter as `extract`: skip expressions that re-enter
            // the current path or lean on a group with no finite plan.
            if on_path[c] || !cost[c].is_finite() {
                continue 'exprs;
            }
            kids.push(c);
        }
        if kids.is_empty() {
            let total = model.cost(memo, eid, &[]);
            let tree = OpTree {
                op: e.op.clone(),
                children: Vec::new(),
            };
            cands.push(Ranked {
                cost: total,
                fingerprint: tree_fingerprint(&tree),
                tree,
                choices: vec![(group, eid)],
            });
            continue;
        }
        let child_lists: Vec<Vec<Ranked<Op>>> = kids
            .iter()
            .map(|&c| ranked_plans(memo, c, model, cost, k, on_path))
            .collect();
        if child_lists.iter().any(|l| l.is_empty()) {
            continue;
        }
        let combo_cost = |ranks: &[usize]| {
            let child_costs: Vec<f64> = ranks
                .iter()
                .zip(&child_lists)
                .map(|(&r, list)| list[r].cost)
                .collect();
            model.cost(memo, eid, &child_costs)
        };
        let zero = vec![0usize; kids.len()];
        let mut scheduled: HashSet<Vec<usize>> = HashSet::new();
        let mut heap: BinaryHeap<Reverse<Combo>> = BinaryHeap::new();
        heap.push(Reverse(Combo {
            cost: combo_cost(&zero),
            ranks: zero.clone(),
        }));
        scheduled.insert(zero);
        let mut taken = 0usize;
        while taken < k {
            let Some(Reverse(combo)) = heap.pop() else {
                break;
            };
            taken += 1;
            let mut children = Vec::with_capacity(kids.len());
            let mut choices = vec![(group, eid)];
            for (i, &r) in combo.ranks.iter().enumerate() {
                children.push(Child::Tree(Box::new(child_lists[i][r].tree.clone())));
                choices.extend(child_lists[i][r].choices.iter().copied());
            }
            let tree = OpTree {
                op: e.op.clone(),
                children,
            };
            cands.push(Ranked {
                cost: combo.cost,
                fingerprint: tree_fingerprint(&tree),
                tree,
                choices,
            });
            for i in 0..combo.ranks.len() {
                let mut next = combo.ranks.clone();
                next[i] += 1;
                if next[i] < child_lists[i].len() && !scheduled.contains(&next) {
                    let c = combo_cost(&next);
                    scheduled.insert(next.clone());
                    heap.push(Reverse(Combo {
                        cost: c,
                        ranks: next,
                    }));
                }
            }
        }
    }
    on_path[group] = false;
    // Ascending cost with fingerprint tie-break; structurally equal trees
    // have equal compositional costs, so duplicates land adjacent.
    cands.sort_by(|a, b| {
        a.cost
            .total_cmp(&b.cost)
            .then_with(|| a.fingerprint.cmp(&b.fingerprint))
    });
    cands.dedup_by(|a, b| a.fingerprint == b.fingerprint);
    cands.truncate(k);
    cands
}

/// Count the distinct plans representable from `root` (product over AND
/// children, sum over OR alternatives). Cycles contribute zero (a cyclic
/// "plan" is not a plan). Saturates at `u64::MAX`.
pub fn count_plans<Op: Clone + Eq + Hash + Debug>(memo: &Memo<Op>, root: GroupId) -> u64 {
    fn go<Op: Clone + Eq + Hash + Debug>(
        memo: &Memo<Op>,
        group: GroupId,
        visiting: &mut [bool],
    ) -> u64 {
        let group = memo.find(group);
        if visiting[group] {
            return 0;
        }
        visiting[group] = true;
        let mut total: u64 = 0;
        for &eid in memo.group(group) {
            let mut prod: u64 = 1;
            for &c in &memo.expr(eid).children {
                prod = prod.saturating_mul(go(memo, c, visiting));
                if prod == 0 {
                    break;
                }
            }
            total = total.saturating_add(prod);
        }
        visiting[group] = false;
        total
    }
    go(memo, root, &mut vec![false; memo.num_groups()])
}

#[cfg(test)]
mod tests {
    use super::*;

    // Costs live in a side table (the model), not in the operator enum.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum Op2 {
        Leaf(&'static str),
        Combine,
    }

    struct Table;
    impl CostModel<Op2> for Table {
        fn cost(&self, memo: &Memo<Op2>, expr: MExprId, child_costs: &[f64]) -> f64 {
            let own = match memo.expr(expr).op {
                Op2::Leaf("cheap") => 1.0,
                Op2::Leaf("pricey") => 100.0,
                Op2::Leaf(_) => 10.0,
                Op2::Combine => 5.0,
            };
            own + child_costs.iter().sum::<f64>()
        }
    }

    #[test]
    fn picks_cheapest_alternative() {
        let mut memo = Memo::new();
        let g = memo.insert_tree(&OpTree::leaf(Op2::Leaf("pricey")), None);
        memo.insert_tree(&OpTree::leaf(Op2::Leaf("cheap")), Some(g));
        let best = best_plan(&memo, g, &Table).unwrap();
        assert_eq!(best.cost, 1.0);
        assert_eq!(best.tree.op, Op2::Leaf("cheap"));
    }

    #[test]
    fn combines_child_costs() {
        let mut memo = Memo::new();
        let tree = OpTree::node(
            Op2::Combine,
            vec![
                OpTree::leaf(Op2::Leaf("a")),
                OpTree::leaf(Op2::Leaf("cheap")),
            ],
        );
        let root = memo.insert_tree(&tree, None);
        let best = best_plan(&memo, root, &Table).unwrap();
        assert_eq!(best.cost, 5.0 + 10.0 + 1.0);
    }

    #[test]
    fn min_propagates_through_shared_groups() {
        let mut memo = Memo::new();
        let shared = memo.insert_tree(&OpTree::leaf(Op2::Leaf("pricey")), None);
        memo.insert_tree(&OpTree::leaf(Op2::Leaf("cheap")), Some(shared));
        let root = memo.insert_tree(
            &OpTree::over_groups(Op2::Combine, vec![shared, shared]),
            None,
        );
        let best = best_plan(&memo, root, &Table).unwrap();
        assert_eq!(
            best.cost,
            5.0 + 1.0 + 1.0,
            "shared group costed once, used twice"
        );
        assert_eq!(best.choices.len(), 3);
    }

    #[test]
    fn cyclic_alternatives_are_ignored() {
        // Group g contains Leaf(a) and Combine(g, b): the recursive
        // alternative can never be chosen.
        let mut memo = Memo::new();
        let g = memo.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
        let b = memo.insert_tree(&OpTree::leaf(Op2::Leaf("cheap")), None);
        memo.insert_expr(Op2::Combine, vec![g, b], Some(g));
        let best = best_plan(&memo, g, &Table).unwrap();
        assert_eq!(best.cost, 10.0);
        assert_eq!(best.tree.op, Op2::Leaf("a"));
    }

    #[test]
    fn cost_table_reports_convergence_and_budget_exhaustion() {
        let mut memo = Memo::new();
        let tree = OpTree::node(
            Op2::Combine,
            vec![
                OpTree::node(Op2::Combine, vec![OpTree::leaf(Op2::Leaf("a"))]),
                OpTree::leaf(Op2::Leaf("cheap")),
            ],
        );
        let root = memo.insert_tree(&tree, None);
        let full = cost_table(&memo, &Table, None);
        assert!(full.converged);
        // A minimal memo needing every sweep still confirms its fixpoint.
        let mut tiny = Memo::new();
        let g = tiny.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
        let t = cost_table(&tiny, &Table, None);
        assert!(t.converged, "unbudgeted iteration always converges");
        assert_eq!(t.group_costs[tiny.find(g)], 10.0);
        assert_eq!(full.group_costs[memo.find(root)], 5.0 + 5.0 + 10.0 + 1.0);
        // A one-sweep budget ends iteration while costs are still moving,
        // so the fixpoint is never confirmed.
        let clipped = cost_table(&memo, &Table, Some(1));
        assert!(!clipped.converged);
        assert!(best_plan_from(&memo, root, &Table, &full).is_some());
    }

    /// The worklist engine must reproduce the reference sweep exactly —
    /// including mid-iteration states frozen by a sweep budget.
    #[test]
    fn worklist_matches_reference_sweep_under_any_budget() {
        // A DAG deep enough to need several sweeps, with a shared group,
        // a cheap/pricey alternative pair and a self-referential expr.
        let mut memo = Memo::new();
        let shared = memo.insert_tree(&OpTree::leaf(Op2::Leaf("pricey")), None);
        memo.insert_tree(&OpTree::leaf(Op2::Leaf("cheap")), Some(shared));
        let mid = memo.insert_tree(&OpTree::over_groups(Op2::Combine, vec![shared]), None);
        let top = memo.insert_tree(&OpTree::over_groups(Op2::Combine, vec![mid, shared]), None);
        memo.insert_expr(Op2::Combine, vec![top], Some(top)); // self-loop
        for budget in [None, Some(1), Some(2), Some(3), Some(10)] {
            let fast = cost_table(&memo, &Table, budget);
            let slow = cost_table_sweeps(&memo, &Table, budget);
            assert_eq!(fast.converged, slow.converged, "budget {budget:?}");
            let fast_bits: Vec<u64> = fast.group_costs.iter().map(|c| c.to_bits()).collect();
            let slow_bits: Vec<u64> = slow.group_costs.iter().map(|c| c.to_bits()).collect();
            assert_eq!(fast_bits, slow_bits, "budget {budget:?}");
        }
    }

    #[test]
    fn count_plans_multiplies_and_adds() {
        let mut memo = Memo::new();
        let l = memo.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
        memo.insert_tree(&OpTree::leaf(Op2::Leaf("cheap")), Some(l));
        let r = memo.insert_tree(&OpTree::leaf(Op2::Leaf("b")), None);
        let root = memo.insert_tree(&OpTree::over_groups(Op2::Combine, vec![l, r]), None);
        assert_eq!(count_plans(&memo, root), 2);
        memo.insert_tree(&OpTree::leaf(Op2::Leaf("pricey")), Some(r));
        assert_eq!(count_plans(&memo, root), 4);
    }

    #[test]
    fn empty_group_has_no_plan() {
        let memo: Memo<Op2> = Memo::new();
        // No groups at all → count on a synthetic id would panic; instead
        // check that a cyclic-only group yields None.
        let mut memo2 = Memo::new();
        let g = memo2.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
        // A second group whose only expr references g... and g references
        // it back, forming a pure cycle.
        let h = memo2.insert_expr(Op2::Combine, vec![g], None);
        let _ = memo2.insert_expr(Op2::Combine, vec![h], Some(g));
        // g still has Leaf(a), so best_plan works; h's only route is via g.
        assert!(best_plan(&memo2, h, &Table).is_some());
        drop(memo);
        // Child references existing group inline:
        let mut memo3: Memo<Op2> = Memo::new();
        let base = memo3.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
        let t = OpTree {
            op: Op2::Combine,
            children: vec![Child::Group(base)],
        };
        let root = memo3.insert_tree(&t, None);
        assert!(best_plan(&memo3, root, &Table).is_some());
    }

    /// Two equal-cost alternatives must extract identically however the
    /// group's expression list came to be ordered. `merge` appends the
    /// absorbed group's expressions, so merging in opposite orders yields
    /// the same expressions (same ids) in different list orders — the
    /// exact perturbation rule application order produces in practice.
    #[test]
    fn equal_cost_ties_break_by_lowest_expr_id() {
        let build = |swap_merges: bool| {
            let mut memo = Memo::new();
            // e0: pricey (100), e1: Leaf("a") (10), e2: Leaf("b") (10).
            let ga = memo.insert_tree(&OpTree::leaf(Op2::Leaf("pricey")), None);
            let gb = memo.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
            let gc = memo.insert_tree(&OpTree::leaf(Op2::Leaf("b")), None);
            if swap_merges {
                memo.merge(ga, gc); // group list: [e0, e2, e1]
                memo.merge(ga, gb);
            } else {
                memo.merge(ga, gb); // group list: [e0, e1, e2]
                memo.merge(ga, gc);
            }
            let best = best_plan(&memo, ga, &Table).unwrap();
            best.tree.op.clone()
        };
        let (a, b) = (build(false), build(true));
        assert_eq!(a, b, "tie-break must not depend on group list order");
        assert_eq!(a, Op2::Leaf("a"), "lowest m-expr id wins the tie");
    }

    /// Equal-cost alternatives registered directly (no merges) in both
    /// orders: whichever got the smaller id wins, in both builds.
    #[test]
    fn equal_cost_ties_are_deterministic_under_insertion_order() {
        for flip in [false, true] {
            let mut memo = Memo::new();
            let (first, second) = if flip { ("b", "a") } else { ("a", "b") };
            let g = memo.insert_tree(&OpTree::leaf(Op2::Leaf(first)), None);
            memo.insert_tree(&OpTree::leaf(Op2::Leaf(second)), Some(g));
            let best = best_plan(&memo, g, &Table).unwrap();
            assert_eq!(
                best.choices,
                vec![(memo.find(g), 0)],
                "expr id 0 is the lowest id among the tie"
            );
            assert_eq!(best.tree.op, Op2::Leaf(first));
        }
    }

    fn alternatives_memo() -> (Memo<Op2>, GroupId) {
        // Two two-alternative groups under a Combine root (distinct ops
        // per group — identical leaves would hash-cons the groups
        // together): 2 × 2 = 4 distinct plans.
        let mut memo = Memo::new();
        let l = memo.insert_tree(&OpTree::leaf(Op2::Leaf("cheap")), None);
        memo.insert_tree(&OpTree::leaf(Op2::Leaf("pricey")), Some(l));
        let b = memo.insert_tree(&OpTree::leaf(Op2::Leaf("b")), None);
        let r = memo.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
        memo.insert_tree(&OpTree::over_groups(Op2::Combine, vec![b]), Some(r));
        let root = memo.insert_tree(&OpTree::over_groups(Op2::Combine, vec![l, r]), None);
        (memo, root)
    }

    #[test]
    fn top_k_one_is_bit_identical_to_best_plan_from() {
        let (memo, root) = alternatives_memo();
        let table = cost_table(&memo, &Table, None);
        let best = best_plan_from(&memo, root, &Table, &table).unwrap();
        let top = top_k_plans(&memo, root, &Table, &table, 1);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].cost.to_bits(), best.cost.to_bits());
        assert_eq!(top[0].tree, best.tree);
        assert_eq!(top[0].choices, best.choices);
        // ...and under a clipped budget (unconverged table) too.
        let clipped = cost_table(&memo, &Table, Some(1));
        match (
            best_plan_from(&memo, root, &Table, &clipped),
            top_k_plans(&memo, root, &Table, &clipped, 1).first(),
        ) {
            (None, None) => {}
            (Some(b), Some(t)) => assert_eq!(t.cost.to_bits(), b.cost.to_bits()),
            (b, t) => panic!("diverged: best={:?} top={:?}", b.is_some(), t.is_some()),
        }
    }

    #[test]
    fn top_k_sorted_distinct_and_exhaustive() {
        let (memo, root) = alternatives_memo();
        let table = cost_table(&memo, &Table, None);
        let top = top_k_plans(&memo, root, &Table, &table, 10);
        assert_eq!(top.len() as u64, count_plans(&memo, root));
        // Combine(5) over {cheap=1, pricey=100} × {a=10, Combine(b)=15}.
        let costs: Vec<f64> = top.iter().map(|p| p.cost).collect();
        assert_eq!(costs, vec![16.0, 21.0, 115.0, 120.0]);
        let fps: Vec<u64> = top.iter().map(|p| tree_fingerprint(&p.tree)).collect();
        for (i, f) in fps.iter().enumerate() {
            assert!(!fps[..i].contains(f), "fingerprints pairwise distinct");
        }
    }

    #[test]
    fn top_k_is_cycle_safe_on_self_referential_groups() {
        // Group g = {Leaf(a), Combine(g, cheap)}: the recursive
        // alternative is enumerable but never extractable.
        let mut memo = Memo::new();
        let g = memo.insert_tree(&OpTree::leaf(Op2::Leaf("a")), None);
        let b = memo.insert_tree(&OpTree::leaf(Op2::Leaf("cheap")), None);
        memo.insert_expr(Op2::Combine, vec![g, b], Some(g));
        let table = cost_table(&memo, &Table, None);
        let top = top_k_plans(&memo, g, &Table, &table, 5);
        assert_eq!(top.len(), 1, "only the acyclic plan exists");
        assert_eq!(top[0].tree.op, Op2::Leaf("a"));
    }

    #[test]
    fn top_k_deterministic_across_insertion_orders() {
        // Unique cheapest plan, equal-cost runners-up registered in both
        // orders: the full (cost bits, fingerprint) sequence must match,
        // because rank 0 is the unique argmin and the tail orders ties by
        // structural fingerprint rather than by insertion id.
        let build = |flip: bool| {
            let mut memo = Memo::new();
            let l = memo.insert_tree(&OpTree::leaf(Op2::Leaf("cheap")), None);
            let (x, y) = if flip { ("b", "a") } else { ("a", "b") };
            let r = memo.insert_tree(&OpTree::leaf(Op2::Leaf(x)), None);
            memo.insert_tree(&OpTree::leaf(Op2::Leaf(y)), Some(r));
            // Unique minimum for r: Combine(l) = 5 + 1 = 6 < 10.
            memo.insert_tree(&OpTree::over_groups(Op2::Combine, vec![l]), Some(r));
            let root = memo.insert_tree(&OpTree::over_groups(Op2::Combine, vec![l, r]), None);
            let table = cost_table(&memo, &Table, None);
            top_k_plans(&memo, root, &Table, &table, 6)
                .into_iter()
                .map(|p| (p.cost.to_bits(), tree_fingerprint(&p.tree)))
                .collect::<Vec<_>>()
        };
        let base = build(false);
        assert_eq!(base.len(), 3, "cheap × {{a, b, Combine(cheap)}} plans");
        assert_eq!(
            base,
            build(true),
            "(cost bits, fingerprint) sequence independent of insertion order"
        );
    }

    #[test]
    fn top_k_zero_returns_nothing() {
        let (memo, root) = alternatives_memo();
        let table = cost_table(&memo, &Table, None);
        assert!(top_k_plans(&memo, root, &Table, &table, 0).is_empty());
    }
}
