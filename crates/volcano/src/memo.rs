//! The memo: an AND-OR DAG with hash-consing and group merging.

use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;

/// Identifier of a group (OR node).
pub type GroupId = usize;
/// Identifier of an m-expr (AND node).
pub type MExprId = usize;

/// An operator tree used to feed expressions into the memo. Children are
/// either references to existing groups (shared sub-results) or nested
/// trees (new structure).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpTree<Op> {
    /// Root operator.
    pub op: Op,
    /// Children in operator order.
    pub children: Vec<Child<Op>>,
}

/// A child of an [`OpTree`] node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Child<Op> {
    /// Reference to an existing group.
    Group(GroupId),
    /// A nested tree to be inserted.
    Tree(Box<OpTree<Op>>),
}

impl<Op> OpTree<Op> {
    /// Leaf operator (no children).
    pub fn leaf(op: Op) -> OpTree<Op> {
        OpTree {
            op,
            children: Vec::new(),
        }
    }

    /// Operator over nested trees.
    pub fn node(op: Op, children: Vec<OpTree<Op>>) -> OpTree<Op> {
        OpTree {
            op,
            children: children
                .into_iter()
                .map(|t| Child::Tree(Box::new(t)))
                .collect(),
        }
    }

    /// Operator over existing groups.
    pub fn over_groups(op: Op, groups: Vec<GroupId>) -> OpTree<Op> {
        OpTree {
            op,
            children: groups.into_iter().map(Child::Group).collect(),
        }
    }
}

/// An AND node: an operator applied to child groups.
#[derive(Debug, Clone)]
pub struct MExpr<Op> {
    /// The operator.
    pub op: Op,
    /// Child groups (canonical ids at insert time; call
    /// [`Memo::find`] on read to stay canonical after merges).
    pub children: Vec<GroupId>,
    /// The group this expression belongs to.
    pub group: GroupId,
}

/// The AND-OR DAG.
#[derive(Debug, Clone)]
pub struct Memo<Op: Clone + Eq + Hash + Debug> {
    exprs: Vec<MExpr<Op>>,
    /// Expressions per group (canonical groups only).
    group_exprs: Vec<Vec<MExprId>>,
    /// Union-find parent per group.
    parent: Vec<GroupId>,
    /// Hash-consing index: (operator hash, canonical children) → candidate
    /// m-exprs. Keying on a 64-bit operator *hash* instead of a cloned
    /// operator keeps insertion free of deep `Op` clones; candidates in a
    /// bucket are disambiguated with a full equality check.
    index: HashMap<(u64, Vec<GroupId>), Vec<MExprId>>,
    /// Incremented on every group merge (including cascades); cost caches
    /// key their validity on this (see [`crate::CostMemo`]).
    merge_epoch: u64,
}

/// FNV-1a over the operator's `Hash` stream: a deterministic hasher so
/// index keys are reproducible (`RandomState` would also work — the hash
/// never leaves the process — but determinism costs nothing and keeps
/// debugging sane).
fn op_hash<Op: Hash>(op: &Op) -> u64 {
    struct Fnv(u64);
    impl std::hash::Hasher for Fnv {
        fn finish(&self) -> u64 {
            self.0
        }
        fn write(&mut self, bytes: &[u8]) {
            for &b in bytes {
                self.0 ^= b as u64;
                self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
    }
    let mut h = Fnv(0xcbf2_9ce4_8422_2325);
    op.hash(&mut h);
    std::hash::Hasher::finish(&h)
}

impl<Op: Clone + Eq + Hash + Debug> Default for Memo<Op> {
    fn default() -> Self {
        Memo::new()
    }
}

impl<Op: Clone + Eq + Hash + Debug> Memo<Op> {
    /// Empty memo.
    pub fn new() -> Memo<Op> {
        Memo {
            exprs: Vec::new(),
            group_exprs: Vec::new(),
            parent: Vec::new(),
            index: HashMap::new(),
            merge_epoch: 0,
        }
    }

    /// How many group merges have happened so far (monotone). A change
    /// means previously-read group structure may be stale — memoized cost
    /// layers use this to invalidate their caches.
    pub fn merge_epoch(&self) -> u64 {
        self.merge_epoch
    }

    /// Number of groups (including merged-away ones).
    pub fn num_groups(&self) -> usize {
        self.parent.len()
    }

    /// Number of live (canonical) groups.
    pub fn num_live_groups(&self) -> usize {
        (0..self.parent.len())
            .filter(|&g| self.parent[g] == g)
            .count()
    }

    /// Number of m-exprs.
    pub fn num_exprs(&self) -> usize {
        self.exprs.len()
    }

    /// Canonical representative of a group.
    pub fn find(&self, g: GroupId) -> GroupId {
        let mut g = g;
        while self.parent[g] != g {
            g = self.parent[g];
        }
        g
    }

    /// The m-exprs of a group.
    pub fn group(&self, g: GroupId) -> &[MExprId] {
        &self.group_exprs[self.find(g)]
    }

    /// An m-expr by id.
    pub fn expr(&self, id: MExprId) -> &MExpr<Op> {
        &self.exprs[id]
    }

    /// Iterate over all m-expr ids.
    pub fn expr_ids(&self) -> impl Iterator<Item = MExprId> {
        0..self.exprs.len()
    }

    fn new_group(&mut self) -> GroupId {
        let g = self.parent.len();
        self.parent.push(g);
        self.group_exprs.push(Vec::new());
        g
    }

    /// Insert a tree, returning the group holding its root. If `into` is
    /// given, the root expression is added to that group (asserting
    /// equivalence — this is how transformation alternatives register);
    /// otherwise the root lands in the group hash-consing dictates (a new
    /// group for a novel expression, an existing one for a duplicate).
    pub fn insert_tree(&mut self, tree: &OpTree<Op>, into: Option<GroupId>) -> GroupId {
        self.insert_tree_full(tree, into).0
    }

    /// [`Memo::insert_tree`] also returning the root's m-expr id (stable
    /// across group merges — provenance trackers key on it).
    pub fn insert_tree_full(
        &mut self,
        tree: &OpTree<Op>,
        into: Option<GroupId>,
    ) -> (GroupId, MExprId) {
        let child_groups: Vec<GroupId> = tree
            .children
            .iter()
            .map(|c| match c {
                Child::Group(g) => self.find(*g),
                Child::Tree(t) => self.insert_tree(t, None),
            })
            .collect();
        self.insert_expr_full(tree.op.clone(), child_groups, into)
    }

    /// Insert an operator over canonical child groups.
    pub fn insert_expr(
        &mut self,
        op: Op,
        children: Vec<GroupId>,
        into: Option<GroupId>,
    ) -> GroupId {
        self.insert_expr_full(op, children, into).0
    }

    /// [`Memo::insert_expr`] also returning the m-expr id — the existing
    /// expression's id when hash-consing finds a duplicate.
    pub fn insert_expr_full(
        &mut self,
        op: Op,
        children: Vec<GroupId>,
        into: Option<GroupId>,
    ) -> (GroupId, MExprId) {
        let children: Vec<GroupId> = children.into_iter().map(|g| self.find(g)).collect();
        let key = (op_hash(&op), children.clone());
        if let Some(cands) = self.index.get(&key) {
            if let Some(&existing) = cands.iter().find(|&&e| self.exprs[e].op == op) {
                let home = self.find(self.exprs[existing].group);
                if let Some(target) = into {
                    let target = self.find(target);
                    if target != home {
                        // The same expression appears in two groups: they
                        // compute the same result → merge.
                        self.merge(home, target);
                    }
                }
                return (self.find(home), existing);
            }
        }
        let group = match into {
            Some(g) => self.find(g),
            None => self.new_group(),
        };
        let id = self.exprs.len();
        self.exprs.push(MExpr {
            op,
            children,
            group,
        });
        self.group_exprs[group].push(id);
        self.index.entry(key).or_default().push(id);
        // No canonicalization needed: children are already canonical and a
        // fresh expression cannot trigger a merge, so the (O(#exprs) index
        // rebuild) pass would be a no-op. Only [`Memo::merge`] has to
        // re-canonicalize.
        (group, id)
    }

    /// Merge groups `a` and `b` (they compute the same result).
    pub fn merge(&mut self, a: GroupId, b: GroupId) {
        let a = self.find(a);
        let b = self.find(b);
        if a == b {
            return;
        }
        // Keep the smaller id as representative for stable tests.
        let (keep, drop) = if a < b { (a, b) } else { (b, a) };
        self.merge_epoch += 1;
        self.parent[drop] = keep;
        let moved = std::mem::take(&mut self.group_exprs[drop]);
        for id in &moved {
            self.exprs[*id].group = keep;
        }
        self.group_exprs[keep].extend(moved);
        self.canonicalize();
    }

    /// Re-canonicalize after merges: child references must resolve to
    /// canonical groups, and expressions that become identical after a
    /// merge must unify (possibly cascading further merges).
    fn canonicalize(&mut self) {
        loop {
            let mut pending_merge: Option<(GroupId, GroupId)> = None;
            let mut rebuilt: HashMap<(u64, Vec<GroupId>), Vec<MExprId>> =
                HashMap::with_capacity(self.exprs.len());
            for id in 0..self.exprs.len() {
                let canon_children: Vec<GroupId> = self.exprs[id]
                    .children
                    .iter()
                    .map(|&c| self.find(c))
                    .collect();
                self.exprs[id].children = canon_children.clone();
                let key = (op_hash(&self.exprs[id].op), canon_children);
                let prior = rebuilt
                    .get(&key)
                    .and_then(|cands| {
                        cands
                            .iter()
                            .find(|&&e| self.exprs[e].op == self.exprs[id].op)
                    })
                    .copied();
                match prior {
                    None => {
                        rebuilt.entry(key).or_default().push(id);
                    }
                    Some(prior) => {
                        let g1 = self.find(self.exprs[prior].group);
                        let g2 = self.find(self.exprs[id].group);
                        if g1 != g2 {
                            pending_merge = Some((g1, g2));
                            break;
                        }
                        // Same group duplicate: drop `id` from the group.
                        let g = self.find(self.exprs[id].group);
                        self.group_exprs[g].retain(|&e| e != id);
                    }
                }
            }
            match pending_merge {
                Some((a, b)) => {
                    let (keep, drop) = if a < b { (a, b) } else { (b, a) };
                    self.merge_epoch += 1;
                    self.parent[drop] = keep;
                    let moved = std::mem::take(&mut self.group_exprs[drop]);
                    for id in &moved {
                        self.exprs[*id].group = keep;
                    }
                    self.group_exprs[keep].extend(moved);
                    // Loop again: the merge may cascade.
                }
                None => {
                    self.index = rebuilt;
                    return;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy operator for memo tests.
    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum TOp {
        Leaf(&'static str),
        Pair,
    }

    fn pair(l: OpTree<TOp>, r: OpTree<TOp>) -> OpTree<TOp> {
        OpTree::node(TOp::Pair, vec![l, r])
    }

    #[test]
    fn inserting_a_tree_creates_groups_bottom_up() {
        let mut memo = Memo::new();
        let root = memo.insert_tree(
            &pair(OpTree::leaf(TOp::Leaf("a")), OpTree::leaf(TOp::Leaf("b"))),
            None,
        );
        assert_eq!(memo.num_live_groups(), 3);
        assert_eq!(memo.group(root).len(), 1);
    }

    #[test]
    fn duplicate_trees_are_hash_consed() {
        let mut memo = Memo::new();
        let t = pair(OpTree::leaf(TOp::Leaf("a")), OpTree::leaf(TOp::Leaf("b")));
        let g1 = memo.insert_tree(&t, None);
        let g2 = memo.insert_tree(&t, None);
        assert_eq!(g1, g2);
        assert_eq!(memo.num_exprs(), 3, "a, b, pair — no duplicates");
    }

    #[test]
    fn alternatives_join_the_target_group() {
        let mut memo = Memo::new();
        let t = pair(OpTree::leaf(TOp::Leaf("a")), OpTree::leaf(TOp::Leaf("b")));
        let root = memo.insert_tree(&t, None);
        // Add the commuted alternative into the same group.
        let commuted = pair(OpTree::leaf(TOp::Leaf("b")), OpTree::leaf(TOp::Leaf("a")));
        let g = memo.insert_tree(&commuted, Some(root));
        assert_eq!(memo.find(g), memo.find(root));
        assert_eq!(memo.group(root).len(), 2);
    }

    #[test]
    fn reinserting_alternative_is_idempotent() {
        let mut memo = Memo::new();
        let t = pair(OpTree::leaf(TOp::Leaf("a")), OpTree::leaf(TOp::Leaf("b")));
        let root = memo.insert_tree(&t, None);
        let commuted = pair(OpTree::leaf(TOp::Leaf("b")), OpTree::leaf(TOp::Leaf("a")));
        memo.insert_tree(&commuted, Some(root));
        memo.insert_tree(&commuted, Some(root));
        memo.insert_tree(&t, Some(root));
        assert_eq!(memo.group(root).len(), 2, "cyclic rules terminate");
    }

    #[test]
    fn same_expr_in_two_groups_merges_them() {
        let mut memo = Memo::new();
        let t1 = pair(OpTree::leaf(TOp::Leaf("a")), OpTree::leaf(TOp::Leaf("b")));
        let t2 = pair(OpTree::leaf(TOp::Leaf("c")), OpTree::leaf(TOp::Leaf("d")));
        let g1 = memo.insert_tree(&t1, None);
        let g2 = memo.insert_tree(&t2, None);
        assert_ne!(memo.find(g1), memo.find(g2));
        // Assert t1 is also an alternative of g2 → groups merge.
        memo.insert_tree(&t1, Some(g2));
        assert_eq!(memo.find(g1), memo.find(g2));
        let merged = memo.group(g1).len();
        assert_eq!(merged, 2);
    }

    #[test]
    fn merge_cascades_through_parents() {
        // p1 = Pair(a, b), p2 = Pair(a, c); q1 = Pair(p1, x), q2 = Pair(p2, x).
        // Merging group(b) with group(c) must make p1 == p2, cascading to
        // q1 == q2.
        let mut memo = Memo::new();
        let a = memo.insert_tree(&OpTree::leaf(TOp::Leaf("a")), None);
        let b = memo.insert_tree(&OpTree::leaf(TOp::Leaf("b")), None);
        let c = memo.insert_tree(&OpTree::leaf(TOp::Leaf("c")), None);
        let x = memo.insert_tree(&OpTree::leaf(TOp::Leaf("x")), None);
        let p1 = memo.insert_expr(TOp::Pair, vec![a, b], None);
        let p2 = memo.insert_expr(TOp::Pair, vec![a, c], None);
        let q1 = memo.insert_expr(TOp::Pair, vec![p1, x], None);
        let q2 = memo.insert_expr(TOp::Pair, vec![p2, x], None);
        assert_ne!(memo.find(q1), memo.find(q2));
        memo.merge(b, c);
        assert_eq!(memo.find(p1), memo.find(p2), "parents unified");
        assert_eq!(memo.find(q1), memo.find(q2), "merge cascades");
    }

    #[test]
    fn group_lookup_follows_union_find() {
        let mut memo = Memo::new();
        let a = memo.insert_tree(&OpTree::leaf(TOp::Leaf("a")), None);
        let b = memo.insert_tree(&OpTree::leaf(TOp::Leaf("b")), None);
        memo.merge(a, b);
        assert_eq!(memo.find(a), memo.find(b));
        assert_eq!(memo.group(a).len(), 2);
        assert_eq!(memo.group(b).len(), 2);
    }

    #[test]
    fn shared_subtrees_are_represented_once() {
        // Figure 6c property: P0.B2 appears once although it is part of
        // three alternative programs.
        let mut memo = Memo::new();
        let shared = OpTree::leaf(TOp::Leaf("B2"));
        let g_shared = memo.insert_tree(&shared, None);
        let alt1 = OpTree::over_groups(TOp::Pair, vec![g_shared, g_shared]);
        let root = memo.insert_tree(&alt1, None);
        let other = memo.insert_tree(&OpTree::leaf(TOp::Leaf("L")), None);
        let alt2 = OpTree::over_groups(TOp::Pair, vec![g_shared, other]);
        memo.insert_tree(&alt2, Some(root));
        // "B2" exists exactly once among all exprs.
        let count = memo
            .expr_ids()
            .filter(|&i| memo.expr(i).op == TOp::Leaf("B2"))
            .count();
        assert_eq!(count, 1);
    }
}
