//! Relational-algebra instantiation of the framework.
//!
//! Reproduces the paper's background example (Figure 4): the join query
//! `(A ⋈ B) ⋈ C` represented as an AND-OR DAG, expanded with join
//! commutativity (cyclic!) and associativity, then costed.
//!
//! This module doubles as executable documentation of how to instantiate
//! [`Memo`]/[`Rule`]/[`CostModel`] for a new algebra.

use crate::engine::Rule;
use crate::memo::{Child, GroupId, MExprId, Memo, OpTree};
use crate::search::CostModel;
use std::collections::HashMap;

/// Relational operators: base relations and joins.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum RelOp {
    /// A named base relation.
    Rel(String),
    /// Natural join of the two children.
    Join,
}

/// Build `(A ⋈ B) ⋈ C`-style left-deep join trees from relation names.
pub fn left_deep_join(rels: &[&str]) -> OpTree<RelOp> {
    assert!(rels.len() >= 2, "need at least two relations");
    let mut tree = OpTree::node(
        RelOp::Join,
        vec![
            OpTree::leaf(RelOp::Rel(rels[0].to_string())),
            OpTree::leaf(RelOp::Rel(rels[1].to_string())),
        ],
    );
    for r in &rels[2..] {
        tree = OpTree::node(
            RelOp::Join,
            vec![tree, OpTree::leaf(RelOp::Rel(r.to_string()))],
        );
    }
    tree
}

/// Join commutativity: `x ⋈ y → y ⋈ x` (cyclic).
pub struct JoinCommutativity;

impl Rule<RelOp> for JoinCommutativity {
    fn name(&self) -> &str {
        "join-commutativity"
    }

    fn apply(&self, memo: &Memo<RelOp>, expr: MExprId) -> Vec<OpTree<RelOp>> {
        let e = memo.expr(expr);
        if e.op != RelOp::Join {
            return Vec::new();
        }
        vec![OpTree {
            op: RelOp::Join,
            children: vec![Child::Group(e.children[1]), Child::Group(e.children[0])],
        }]
    }
}

/// Join associativity: `(x ⋈ y) ⋈ z → x ⋈ (y ⋈ z)`.
pub struct JoinAssociativity;

impl Rule<RelOp> for JoinAssociativity {
    fn name(&self) -> &str {
        "join-associativity"
    }

    fn apply(&self, memo: &Memo<RelOp>, expr: MExprId) -> Vec<OpTree<RelOp>> {
        let e = memo.expr(expr);
        if e.op != RelOp::Join {
            return Vec::new();
        }
        let left = e.children[0];
        let right = e.children[1];
        let mut out = Vec::new();
        // For each join-shaped alternative of the left child, re-associate.
        for &lid in memo.group(left) {
            let le = memo.expr(lid);
            if le.op != RelOp::Join {
                continue;
            }
            let (x, y) = (le.children[0], le.children[1]);
            out.push(OpTree {
                op: RelOp::Join,
                children: vec![
                    Child::Group(x),
                    Child::Tree(Box::new(OpTree {
                        op: RelOp::Join,
                        children: vec![Child::Group(y), Child::Group(right)],
                    })),
                ],
            });
        }
        out
    }
}

/// A cardinality-based cost model: joins cost the product of input
/// cardinalities (nested-loops flavour), scans cost their cardinality.
pub struct CardinalityCost {
    cards: HashMap<String, f64>,
}

impl CardinalityCost {
    /// Model with per-relation cardinalities.
    pub fn new(cards: impl IntoIterator<Item = (String, f64)>) -> CardinalityCost {
        CardinalityCost {
            cards: cards.into_iter().collect(),
        }
    }

    #[allow(dead_code)] // kept for symmetry with group_card; used by docs
    fn output_card(&self, memo: &Memo<RelOp>, expr: MExprId) -> f64 {
        let e = memo.expr(expr);
        match &e.op {
            RelOp::Rel(name) => self.cards.get(name).copied().unwrap_or(1.0),
            RelOp::Join => {
                // Estimate output as product × fixed join selectivity.
                let mut card = 0.1;
                for &c in &e.children {
                    card *= self.group_card(memo, c, &mut Vec::new());
                }
                card
            }
        }
    }

    fn group_card(&self, memo: &Memo<RelOp>, g: GroupId, visiting: &mut Vec<GroupId>) -> f64 {
        let g = memo.find(g);
        if visiting.contains(&g) {
            return f64::INFINITY;
        }
        visiting.push(g);
        // All alternatives of a group have the same output; take the first
        // non-cyclic one.
        let mut card = f64::INFINITY;
        for &eid in memo.group(g) {
            let e = memo.expr(eid);
            let c = match &e.op {
                RelOp::Rel(name) => self.cards.get(name).copied().unwrap_or(1.0),
                RelOp::Join => {
                    let mut prod = 0.1;
                    for &ch in &e.children {
                        prod *= self.group_card(memo, ch, visiting);
                    }
                    prod
                }
            };
            card = card.min(c);
        }
        visiting.pop();
        card
    }
}

impl CostModel<RelOp> for CardinalityCost {
    fn cost(&self, memo: &Memo<RelOp>, expr: MExprId, child_costs: &[f64]) -> f64 {
        let e = memo.expr(expr);
        let own = match &e.op {
            RelOp::Rel(name) => self.cards.get(name).copied().unwrap_or(1.0),
            RelOp::Join => {
                let mut prod = 1.0;
                for &c in &e.children {
                    prod *= self.group_card(memo, c, &mut Vec::new());
                }
                prod
            }
        };
        own + child_costs.iter().sum::<f64>()
    }
}

/// Render a plan tree as text, e.g. `((A ⋈ B) ⋈ C)`.
pub fn render(tree: &OpTree<RelOp>) -> String {
    match &tree.op {
        RelOp::Rel(name) => name.clone(),
        RelOp::Join => {
            let parts: Vec<String> = tree
                .children
                .iter()
                .map(|c| match c {
                    Child::Tree(t) => render(t),
                    Child::Group(g) => format!("g{g}"),
                })
                .collect();
            format!("({})", parts.join(" ⋈ "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::expand;
    use crate::search::{best_plan, count_plans};

    #[test]
    fn initial_dag_matches_figure_4b() {
        let mut memo = Memo::new();
        let root = memo.insert_tree(&left_deep_join(&["A", "B", "C"]), None);
        // Groups: A, B, C, AB, ABC.
        assert_eq!(memo.num_live_groups(), 5);
        assert_eq!(memo.group(root).len(), 1);
    }

    #[test]
    fn commutativity_yields_four_root_alternatives_like_figure_4c() {
        let mut memo = Memo::new();
        let root = memo.insert_tree(&left_deep_join(&["A", "B", "C"]), None);
        expand(&mut memo, &[&JoinCommutativity], 16);
        // Root group: (AB)C and C(AB); AB group: AB and BA.
        assert_eq!(memo.group(root).len(), 2);
        assert_eq!(
            count_plans(&memo, root),
            4,
            "(A⋈B)⋈C, (B⋈A)⋈C, C⋈(A⋈B), C⋈(B⋈A)"
        );
    }

    #[test]
    fn commutativity_and_associativity_enumerate_all_orders() {
        let mut memo = Memo::new();
        let root = memo.insert_tree(&left_deep_join(&["A", "B", "C"]), None);
        expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 32);
        // 3 relations: 3 group splits × 2 orders each at two levels = 12
        // distinct join trees.
        assert_eq!(count_plans(&memo, root), 12);
        // The three two-relation groups merged appropriately: live groups
        // are A, B, C, AB, AC, BC, ABC.
        assert_eq!(memo.num_live_groups(), 7);
    }

    #[test]
    fn cost_model_prefers_small_intermediate_results() {
        let mut memo = Memo::new();
        let root = memo.insert_tree(&left_deep_join(&["A", "B", "C"]), None);
        expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 32);
        // A is huge; B and C are small. Best plan joins B and C first.
        let model = CardinalityCost::new([
            ("A".to_string(), 1_000_000.0),
            ("B".to_string(), 10.0),
            ("C".to_string(), 10.0),
        ]);
        let best = best_plan(&memo, root, &model).unwrap();
        let text = render(&best.tree);
        assert!(
            text == "(A ⋈ (B ⋈ C))"
                || text == "(A ⋈ (C ⋈ B))"
                || text == "((B ⋈ C) ⋈ A)"
                || text == "((C ⋈ B) ⋈ A)",
            "BC must join first, got {text}"
        );
    }

    #[test]
    fn four_relation_enumeration_is_complete() {
        let mut memo = Memo::new();
        let root = memo.insert_tree(&left_deep_join(&["A", "B", "C", "D"]), None);
        expand(&mut memo, &[&JoinCommutativity, &JoinAssociativity], 64);
        // #bushy plans on 4 relations = C(3)·4! / ... = 5 shapes × orders:
        // the classic count is 120 (binary trees with ordered children:
        // Catalan(3)=5 shapes × 4! leaf orders = 120).
        assert_eq!(count_plans(&memo, root), 120);
    }

    #[test]
    fn render_pretty_prints_plans() {
        let t = left_deep_join(&["A", "B"]);
        assert_eq!(render(&t), "(A ⋈ B)");
    }
}
