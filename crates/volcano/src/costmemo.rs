//! Memoized costing.
//!
//! Cost-based rewrite search spends most of its time in the cost model
//! (cardinality estimation, row-size arithmetic, network formulas), and
//! [`crate::best_plan`]'s value iteration plus extraction evaluate the
//! same m-exprs many times over. [`CostMemo`] wraps any [`CostModel`] and
//! caches estimates per `(MExprId, child costs)`: identical inputs return
//! the previously computed estimate bit-for-bit, so memoized search is
//! *exactly* equivalent to un-memoized search — just cheaper.
//!
//! Cache validity is tied to the memo's [`Memo::merge_epoch`]: when groups
//! merge, m-exprs are rewritten to canonical children, so every cached
//! estimate is dropped. Interior mutability is `Mutex`/atomic-based, which
//! keeps the wrapper `Send + Sync` whenever the wrapped model is — a
//! requirement for the parallel batch-optimization driver.

use crate::memo::{MExprId, Memo};
use crate::search::CostModel;
use std::collections::HashMap;
use std::fmt::Debug;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Cached estimates for one m-expr: (child-cost bit patterns, estimate).
type ExprEntries = Vec<(Box<[u64]>, f64)>;

/// A caching wrapper around a [`CostModel`].
///
/// ```
/// use volcano::{best_plan, CostMemo, CostModel, Memo, MExprId, OpTree};
///
/// #[derive(Debug, Clone, PartialEq, Eq, Hash)]
/// struct Leaf(u32);
/// struct Unit;
/// impl CostModel<Leaf> for Unit {
///     fn cost(&self, m: &Memo<Leaf>, e: MExprId, kids: &[f64]) -> f64 {
///         m.expr(e).op.0 as f64 + kids.iter().sum::<f64>()
///     }
/// }
///
/// let mut memo = Memo::new();
/// let root = memo.insert_tree(&OpTree::leaf(Leaf(7)), None);
/// let cached = CostMemo::new(&Unit);
/// let best = best_plan(&memo, root, &cached).unwrap();
/// assert_eq!(best.cost, 7.0);
/// assert!(cached.hits() + cached.misses() > 0);
/// ```
pub struct CostMemo<'m, Op: Clone + Eq + Hash + Debug, M: CostModel<Op> + ?Sized> {
    model: &'m M,
    /// m-expr → (child-cost bit patterns, estimate) entries. Child costs
    /// converge within a couple of value-iteration sweeps, so the inner
    /// list stays tiny; a linear scan keeps the hit path allocation-free
    /// (no key `Vec` is built just to probe the map).
    cache: Mutex<HashMap<MExprId, ExprEntries>>,
    /// The memo merge epoch the cache contents are valid for.
    valid_epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
    _op: std::marker::PhantomData<fn(Op)>,
}

impl<'m, Op: Clone + Eq + Hash + Debug, M: CostModel<Op> + ?Sized> CostMemo<'m, Op, M> {
    /// Wrap `model` with a fresh cache.
    pub fn new(model: &'m M) -> CostMemo<'m, Op, M> {
        CostMemo {
            model,
            cache: Mutex::new(HashMap::new()),
            valid_epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
            _op: std::marker::PhantomData,
        }
    }

    /// Estimates served from the cache.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Estimates computed by the wrapped model.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Cache flushes caused by observed group merges.
    pub fn invalidations(&self) -> u64 {
        self.invalidations.load(Ordering::Relaxed)
    }

    /// Cached entries currently held.
    pub fn len(&self) -> usize {
        self.cache.lock().unwrap().values().map(Vec::len).sum()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<Op: Clone + Eq + Hash + Debug, M: CostModel<Op> + ?Sized> CostModel<Op>
    for CostMemo<'_, Op, M>
{
    fn cost(&self, memo: &Memo<Op>, expr: MExprId, child_costs: &[f64]) -> f64 {
        let epoch = memo.merge_epoch();
        let matches = |bits: &[u64]| bits.iter().zip(child_costs).all(|(&b, c)| b == c.to_bits());
        {
            let mut cache = self.cache.lock().unwrap();
            // Group merges rewrite m-expr children to canonical groups;
            // every cached estimate may be stale, so drop them all.
            if self.valid_epoch.swap(epoch, Ordering::Relaxed) != epoch {
                if !cache.is_empty() {
                    self.invalidations.fetch_add(1, Ordering::Relaxed);
                }
                cache.clear();
            }
            if let Some(entries) = cache.get(&expr) {
                if let Some(cost) = entries
                    .iter()
                    .find(|(bits, _)| bits.len() == child_costs.len() && matches(bits))
                    .map(|(_, c)| *c)
                {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return cost;
                }
            }
        }
        // Compute outside the lock: models may be expensive, and holding
        // the lock would serialize sibling estimates under contention.
        let cost = self.model.cost(memo, expr, child_costs);
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Only insert if no merge happened while we were computing.
        if memo.merge_epoch() == epoch && self.valid_epoch.load(Ordering::Relaxed) == epoch {
            let bits: Box<[u64]> = child_costs.iter().map(|c| c.to_bits()).collect();
            let mut cache = self.cache.lock().unwrap();
            let entries = cache.entry(expr).or_default();
            // A racing worker may have inserted the same entry meanwhile.
            if !entries
                .iter()
                .any(|(b, _)| b.len() == child_costs.len() && matches(b))
            {
                entries.push((bits, cost));
            }
        }
        cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memo::OpTree;
    use crate::search::best_plan;
    use std::sync::atomic::AtomicUsize;

    #[derive(Debug, Clone, PartialEq, Eq, Hash)]
    enum TOp {
        Leaf(&'static str),
        Pair,
    }

    /// Counts how often the underlying model is actually consulted.
    struct Counting {
        calls: AtomicUsize,
    }

    impl Counting {
        fn new() -> Counting {
            Counting {
                calls: AtomicUsize::new(0),
            }
        }
    }

    impl CostModel<TOp> for Counting {
        fn cost(&self, memo: &Memo<TOp>, expr: MExprId, child_costs: &[f64]) -> f64 {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let own = match memo.expr(expr).op {
                TOp::Leaf("cheap") => 1.0,
                TOp::Leaf(_) => 10.0,
                TOp::Pair => 5.0,
            };
            own + child_costs.iter().sum::<f64>()
        }
    }

    fn two_level_memo() -> (Memo<TOp>, usize) {
        let mut memo = Memo::new();
        let tree = OpTree::node(
            TOp::Pair,
            vec![
                OpTree::leaf(TOp::Leaf("a")),
                OpTree::leaf(TOp::Leaf("cheap")),
            ],
        );
        let root = memo.insert_tree(&tree, None);
        (memo, root)
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let (memo, root) = two_level_memo();
        let model = Counting::new();
        let cached = CostMemo::new(&model);
        let first = best_plan(&memo, root, &cached).unwrap().cost;
        let misses_after_first = cached.misses();
        assert!(misses_after_first > 0, "first search populates the cache");
        let second = best_plan(&memo, root, &cached).unwrap().cost;
        assert_eq!(first, second);
        assert_eq!(
            cached.misses(),
            misses_after_first,
            "second search is served entirely from cache"
        );
        assert!(cached.hits() > 0);
        assert_eq!(
            model.calls.load(Ordering::Relaxed) as u64,
            cached.misses(),
            "the wrapped model runs only on misses"
        );
    }

    #[test]
    fn memoized_cost_is_identical_to_unmemoized() {
        let (memo, root) = two_level_memo();
        let model = Counting::new();
        let plain = best_plan(&memo, root, &model).unwrap().cost;
        let cached = CostMemo::new(&model);
        let memoized = best_plan(&memo, root, &cached).unwrap().cost;
        assert_eq!(plain.to_bits(), memoized.to_bits(), "bit-identical costs");
    }

    #[test]
    fn group_merge_invalidates_the_cache() {
        let mut memo = Memo::new();
        let a = memo.insert_tree(&OpTree::leaf(TOp::Leaf("a")), None);
        let b = memo.insert_tree(&OpTree::leaf(TOp::Leaf("b")), None);
        let root = memo.insert_tree(&OpTree::over_groups(TOp::Pair, vec![a, b]), None);
        let model = Counting::new();
        let cached = CostMemo::new(&model);
        best_plan(&memo, root, &cached).unwrap();
        assert!(!cached.is_empty());

        // Merge: a and b now compute the same result.
        memo.merge(a, b);
        assert_eq!(cached.invalidations(), 0, "not yet observed");
        best_plan(&memo, root, &cached).unwrap();
        assert_eq!(
            cached.invalidations(),
            1,
            "first post-merge estimate flushed the stale cache"
        );
    }

    #[test]
    fn cache_distinguishes_child_costs() {
        // Same m-expr consulted under different child costs must not
        // collide (this happens across value-iteration sweeps before the
        // fixpoint).
        let (memo, root) = two_level_memo();
        let model = Counting::new();
        let cached = CostMemo::new(&model);
        let pair_expr = memo.group(root)[0];
        let c1 = cached.cost(&memo, pair_expr, &[1.0, 1.0]);
        let c2 = cached.cost(&memo, pair_expr, &[2.0, 1.0]);
        assert_eq!(c1, 7.0);
        assert_eq!(c2, 8.0);
        assert_eq!(cached.misses(), 2);
        assert_eq!(cached.cost(&memo, pair_expr, &[1.0, 1.0]), 7.0);
        assert_eq!(cached.hits(), 1);
    }

    #[test]
    fn cost_memo_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CostMemo<'static, TOp, Counting>>();
    }
}
