//! Object-relational mapping layer.
//!
//! Substitutes for Hibernate in the paper's setup (§II):
//!
//! * [`EntityMapping`] / [`MappingRegistry`] — the `@Entity`/`@Table`/
//!   `@ManyToOne` metadata of Figure 2: entity ⇄ table, primary key, and
//!   many-to-one associations (`Order.customer` → `customer_sk` FK).
//! * [`RemoteDb`] — a connection to the database *through the simulated
//!   network*: every query costs one round trip plus server time plus
//!   result transfer (`C_Q = C_NRT + C^F_Q + max(N_Q·S_row/BW, C^L_Q −
//!   C^F_Q)`), advancing the shared virtual clock.
//! * [`Session`] — the ORM session with a first-level cache: entity rows
//!   are cached by primary key on first access, so repeated association
//!   navigations to the same row stop issuing queries (the behaviour
//!   behind Experiment 2's observation that P0 ≈ P1 on fast networks).

mod mapping;
mod remote;
mod session;

pub use mapping::{AssociationMap, EntityMapping, MappingRegistry};
pub use remote::{QueryRecord, RemoteDb};
pub use session::Session;
