//! The ORM session: entity loading with a first-level cache.

use crate::mapping::MappingRegistry;
use crate::remote::RemoteDb;
use minidb::{DbError, DbResult, LogicalPlan, Row, Schema, Value};

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// An ORM session.
///
/// * `load_all(Entity)` fetches the entity's whole table (one query) and
///   primes the per-primary-key cache.
/// * `get(Entity, id)` returns the cached row or issues a point query —
///   association navigation goes through this, producing the N+1 pattern
///   on cache misses and no traffic on hits.
pub struct Session {
    remote: Arc<RemoteDb>,
    mappings: Arc<MappingRegistry>,
    /// First-level cache: (entity, pk) → row.
    l1: Mutex<HashMap<(String, Value), Arc<Row>>>,
    /// Cached entity schemas (qualified by table name).
    schemas: Mutex<HashMap<String, Arc<Schema>>>,
}

impl Session {
    /// Open a session over a remote connection.
    pub fn new(remote: Arc<RemoteDb>, mappings: Arc<MappingRegistry>) -> Session {
        Session {
            remote,
            mappings,
            l1: Mutex::new(HashMap::new()),
            schemas: Mutex::new(HashMap::new()),
        }
    }

    /// The remote connection.
    pub fn remote(&self) -> &Arc<RemoteDb> {
        &self.remote
    }

    /// The mapping registry.
    pub fn mappings(&self) -> &Arc<MappingRegistry> {
        &self.mappings
    }

    /// Schema of an entity's table (computed once per session).
    pub fn entity_schema(&self, entity: &str) -> DbResult<Arc<Schema>> {
        if let Some(s) = self.schemas.lock().unwrap().get(entity) {
            return Ok(s.clone());
        }
        let m = self
            .mappings
            .entity(entity)
            .ok_or_else(|| DbError::Invalid(format!("unmapped entity {entity}")))?;
        let db = self.remote.database().read().unwrap();
        let schema = Arc::new(db.table(&m.table)?.schema().clone());
        self.schemas
            .lock()
            .unwrap()
            .insert(entity.to_string(), schema.clone());
        Ok(schema)
    }

    /// `loadAll(Entity)`: fetch the entire table, prime the L1 cache, and
    /// return the rows.
    pub fn load_all(&self, entity: &str) -> DbResult<(Arc<Schema>, Vec<Arc<Row>>)> {
        let m = self
            .mappings
            .entity(entity)
            .ok_or_else(|| DbError::Invalid(format!("unmapped entity {entity}")))?
            .clone();
        let schema = self.entity_schema(entity)?;
        let plan = LogicalPlan::scan(&m.table);
        let result = self.remote.query(&plan, &HashMap::new())?;
        let id_idx = schema.resolve(&m.id_column)?;
        let mut rows = Vec::with_capacity(result.rows.len());
        let mut cache = self.l1.lock().unwrap();
        for row in result.rows {
            let rc = Arc::new(row);
            cache.insert((entity.to_string(), rc[id_idx].clone()), rc.clone());
            rows.push(rc);
        }
        Ok((schema, rows))
    }

    /// `get(Entity, id)`: L1-cached point lookup.
    ///
    /// A miss issues `select * from table where id = :id` (one round trip);
    /// a hit is free — Hibernate's first-level cache behaviour.
    pub fn get(&self, entity: &str, id: &Value) -> DbResult<Option<Arc<Row>>> {
        let key = (entity.to_string(), id.clone());
        if let Some(row) = self.l1.lock().unwrap().get(&key) {
            return Ok(Some(row.clone()));
        }
        let m = self
            .mappings
            .entity(entity)
            .ok_or_else(|| DbError::Invalid(format!("unmapped entity {entity}")))?
            .clone();
        let plan = LogicalPlan::scan(&m.table).select(minidb::ScalarExpr::eq(
            minidb::ScalarExpr::col(&m.id_column),
            minidb::ScalarExpr::param("id"),
        ));
        let mut params = HashMap::new();
        params.insert("id".to_string(), id.clone());
        let result = self.remote.query(&plan, &params)?;
        let row = result.rows.into_iter().next().map(Arc::new);
        if let Some(ref r) = row {
            self.l1.lock().unwrap().insert(key, r.clone());
        }
        Ok(row)
    }

    /// Navigate a many-to-one association from `row` of `entity` through
    /// `field`: reads the FK column and `get`s the target entity.
    pub fn navigate(
        &self,
        entity: &str,
        field: &str,
        row: &Row,
    ) -> DbResult<Option<(String, Arc<Row>)>> {
        let m = self
            .mappings
            .entity(entity)
            .ok_or_else(|| DbError::Invalid(format!("unmapped entity {entity}")))?
            .clone();
        let assoc = m.association(field).ok_or_else(|| {
            DbError::Invalid(format!("{entity}.{field} is not a mapped association"))
        })?;
        let schema = self.entity_schema(entity)?;
        let fk_idx = schema.resolve(&assoc.fk_column)?;
        let fk = &row[fk_idx];
        if fk.is_null() {
            return Ok(None);
        }
        let target = assoc.target_entity.clone();
        Ok(self.get(&target, fk)?.map(|r| (target, r)))
    }

    /// Number of rows currently in the first-level cache.
    pub fn l1_size(&self) -> usize {
        self.l1.lock().unwrap().len()
    }

    /// Drop all cached rows (end of transaction).
    pub fn clear(&self) {
        self.l1.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mapping::EntityMapping;
    use minidb::{Column, DataType, Database, FuncRegistry};
    use netsim::{Clock, NetworkProfile};

    fn fixture() -> (Session, Arc<Clock>) {
        let mut db = Database::new();
        let orders = Schema::new(vec![
            Column::new("o_id", DataType::Int),
            Column::new("o_customer_sk", DataType::Int),
        ]);
        let t = db.create_table("orders", orders).unwrap();
        t.set_primary_key("o_id").unwrap();
        for i in 0..20i64 {
            t.insert(vec![Value::Int(i), Value::Int(i % 5)]).unwrap();
        }
        let customer = Schema::new(vec![
            Column::new("c_customer_sk", DataType::Int),
            Column::new("c_birth_year", DataType::Int),
        ]);
        let t = db.create_table("customer", customer).unwrap();
        t.set_primary_key("c_customer_sk").unwrap();
        for i in 0..5i64 {
            t.insert(vec![Value::Int(i), Value::Int(1960 + i)]).unwrap();
        }
        db.analyze_all();

        let clock = Arc::new(Clock::new());
        let remote = Arc::new(RemoteDb::new(
            minidb::shared(db),
            Arc::new(FuncRegistry::with_builtins()),
            NetworkProfile::new("test", 8e9, 1.0),
            clock.clone(),
        ));
        let mut reg = MappingRegistry::new();
        reg.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
            "customer",
            "Customer",
            "o_customer_sk",
        ));
        reg.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
        (Session::new(remote, Arc::new(reg)), clock)
    }

    #[test]
    fn load_all_is_one_query_and_primes_cache() {
        let (s, _clock) = fixture();
        let (schema, rows) = s.load_all("Order").unwrap();
        assert_eq!(rows.len(), 20);
        assert_eq!(schema.resolve("o_customer_sk").unwrap(), 1);
        assert_eq!(s.remote().round_trips(), 1);
        assert_eq!(s.l1_size(), 20);
        // get() after load_all is free.
        s.get("Order", &Value::Int(7)).unwrap().unwrap();
        assert_eq!(s.remote().round_trips(), 1);
    }

    #[test]
    fn get_misses_issue_point_queries_and_cache() {
        let (s, _clock) = fixture();
        let r = s.get("Customer", &Value::Int(3)).unwrap().unwrap();
        assert_eq!(r[1], Value::Int(1963));
        assert_eq!(s.remote().round_trips(), 1);
        // Second access: cache hit, no new round trip.
        s.get("Customer", &Value::Int(3)).unwrap().unwrap();
        assert_eq!(s.remote().round_trips(), 1);
    }

    #[test]
    fn navigation_produces_n_plus_one_then_saturates() {
        let (s, _clock) = fixture();
        let (_schema, orders) = s.load_all("Order").unwrap();
        let mut trips = Vec::new();
        for o in &orders {
            s.navigate("Order", "customer", o).unwrap().unwrap();
            trips.push(s.remote().round_trips());
        }
        // 1 (load_all) + 5 distinct customers; later navigations hit cache.
        assert_eq!(*trips.last().unwrap(), 6);
    }

    #[test]
    fn missing_row_returns_none_without_caching() {
        let (s, _clock) = fixture();
        assert!(s.get("Customer", &Value::Int(999)).unwrap().is_none());
        // A retry queries again (absent rows are not negatively cached).
        assert!(s.get("Customer", &Value::Int(999)).unwrap().is_none());
        assert_eq!(s.remote().round_trips(), 2);
    }

    #[test]
    fn navigation_on_unmapped_field_errors() {
        let (s, _clock) = fixture();
        let (_schema, orders) = s.load_all("Order").unwrap();
        assert!(s.navigate("Order", "warehouse", &orders[0]).is_err());
    }

    #[test]
    fn clear_resets_cache() {
        let (s, _clock) = fixture();
        s.load_all("Customer").unwrap();
        assert_eq!(s.l1_size(), 5);
        s.clear();
        assert_eq!(s.l1_size(), 0);
        // Next get() queries again.
        s.get("Customer", &Value::Int(0)).unwrap();
        assert_eq!(s.remote().round_trips(), 2);
    }

    #[test]
    fn unmapped_entity_errors() {
        let (s, _clock) = fixture();
        assert!(s.load_all("Ghost").is_err());
    }
}
