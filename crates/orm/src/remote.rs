//! The client's connection to the database across the simulated network.

use minidb::{DbResult, ExecEngine, Executor, FuncRegistry, LogicalPlan, QueryResult, Value};
use netsim::{Clock, NetStats, NetworkProfile};

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

/// One executed query, for experiment reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRecord {
    /// The query as SQL text.
    pub sql: String,
    /// Result cardinality.
    pub rows: u64,
    /// Result payload bytes.
    pub bytes: u64,
}

/// A remote database connection.
///
/// Every call charges the shared [`Clock`] with the paper's query-cost
/// structure: one network round trip, server time to the first row, then
/// the longer of (result transfer) and (remaining server time) — transfer
/// overlaps result production, exactly as in the cost model of §VI.
pub struct RemoteDb {
    db: minidb::SharedDb,
    funcs: Arc<FuncRegistry>,
    net: NetworkProfile,
    clock: Arc<Clock>,
    stats: NetStats,
    log: Mutex<Vec<QueryRecord>>,
    server_row_ns: f64,
    /// When set, every executed query records its observed cardinality
    /// and work into this store (the runtime half of the cardinality
    /// feedback loop; estimators opt in via `Estimator::with_feedback`).
    feedback: Option<Arc<minidb::FeedbackStore>>,
    /// Which server-side execution engine runs the plans (columnar by
    /// default; the row engine is kept as a differential baseline).
    engine: ExecEngine,
}

impl RemoteDb {
    /// Connect to `db` through `net`, charging `clock`.
    pub fn new(
        db: minidb::SharedDb,
        funcs: Arc<FuncRegistry>,
        net: NetworkProfile,
        clock: Arc<Clock>,
    ) -> RemoteDb {
        RemoteDb {
            db,
            funcs,
            net,
            clock,
            stats: NetStats::new(),
            log: Mutex::new(Vec::new()),
            server_row_ns: minidb::exec::DEFAULT_SERVER_ROW_NS,
            feedback: None,
            engine: ExecEngine::default(),
        }
    }

    /// Select the server-side execution engine (columnar or row).
    pub fn with_engine(mut self, engine: ExecEngine) -> RemoteDb {
        self.engine = engine;
        self
    }

    /// The execution engine queries run on.
    pub fn engine(&self) -> ExecEngine {
        self.engine
    }

    /// Override the server's per-row cost (ns).
    pub fn with_server_row_ns(mut self, row_ns: f64) -> RemoteDb {
        self.server_row_ns = row_ns;
        self
    }

    /// Record every executed query's observed cardinality and work into
    /// `feedback` (keyed by plan fingerprint).
    pub fn with_feedback(mut self, feedback: Arc<minidb::FeedbackStore>) -> RemoteDb {
        self.feedback = Some(feedback);
        self
    }

    /// The feedback store queries record into, if one is attached.
    pub fn feedback(&self) -> Option<&Arc<minidb::FeedbackStore>> {
        self.feedback.as_ref()
    }

    /// The underlying database handle.
    pub fn database(&self) -> &minidb::SharedDb {
        &self.db
    }

    /// The network profile in use.
    pub fn network(&self) -> &NetworkProfile {
        &self.net
    }

    /// The shared virtual clock.
    pub fn clock(&self) -> &Arc<Clock> {
        &self.clock
    }

    /// Shared function registry (client and server semantics).
    pub fn funcs(&self) -> &Arc<FuncRegistry> {
        &self.funcs
    }

    /// Server per-row cost (ns).
    pub fn server_row_ns(&self) -> f64 {
        self.server_row_ns
    }

    /// Execute a read query, charging round trip + server + transfer time.
    pub fn query(
        &self,
        plan: &LogicalPlan,
        params: &HashMap<String, Value>,
    ) -> DbResult<QueryResult> {
        let db = self.db.read().unwrap();
        let mut exec = Executor::new(&db, &self.funcs)
            .with_row_ns(self.server_row_ns)
            .with_engine(self.engine);
        if let Some(fb) = &self.feedback {
            exec = exec.with_feedback(fb);
        }
        let result = exec.execute(plan, params)?;
        let first = exec.first_row_ns(&result.work);
        let total = exec.total_ns(&result.work);
        let transfer = self.net.transfer_ns(result.payload_bytes());
        let stream = transfer.max(total - first);
        self.clock
            .advance(self.net.round_trip_ns() + first + stream);
        self.stats.record_round_trip();
        self.stats.record_transfer(result.payload_bytes());
        self.log.lock().unwrap().push(QueryRecord {
            sql: minidb::sql::print(plan),
            rows: result.row_count(),
            bytes: result.payload_bytes(),
        });
        Ok(result)
    }

    /// Execute a single-row update, charging one round trip plus the
    /// server-side lookup work.
    pub fn update(
        &self,
        table: &str,
        key_col: &str,
        key: &Value,
        set_col: &str,
        value: Value,
    ) -> DbResult<usize> {
        let mut db = self.db.write().unwrap();
        let t = db.table_mut(table)?;
        let key_idx = t.schema().resolve(key_col)?;
        let set_idx = t.schema().resolve(set_col)?;
        let changed = t.update_where_eq(key_idx, key, set_idx, value);
        let server = (changed.max(1) as f64 * self.server_row_ns) as u64;
        self.clock.advance(self.net.round_trip_ns() + server);
        self.stats.record_round_trip();
        Ok(changed)
    }

    /// Number of queries + updates issued so far.
    pub fn round_trips(&self) -> u64 {
        self.stats.round_trips()
    }

    /// Total result bytes moved so far.
    pub fn bytes_transferred(&self) -> u64 {
        self.stats.bytes_transferred()
    }

    /// Log of executed read queries.
    pub fn query_log(&self) -> Vec<QueryRecord> {
        self.log.lock().unwrap().clone()
    }

    /// Reset counters and the query log (keeps the clock untouched).
    pub fn reset_stats(&self) {
        self.stats.reset();
        self.log.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use minidb::{Column, DataType, Database, Schema};

    fn fixture() -> (minidb::SharedDb, Arc<FuncRegistry>, Arc<Clock>) {
        let mut db = Database::new();
        let schema = Schema::new(vec![
            Column::new("id", DataType::Int),
            Column::with_width("name", DataType::Str, 20),
        ]);
        let t = db.create_table("t", schema).unwrap();
        t.set_primary_key("id").unwrap();
        for i in 0..100i64 {
            t.insert(vec![Value::Int(i), Value::str(format!("row{i}"))])
                .unwrap();
        }
        t.analyze();
        (
            minidb::shared(db),
            Arc::new(FuncRegistry::with_builtins()),
            Arc::new(Clock::new()),
        )
    }

    #[test]
    fn query_charges_round_trip_and_transfer() {
        let (db, funcs, clock) = fixture();
        let net = NetworkProfile::new("test", 8e6, 10.0); // 1 MB/s, 10 ms RTT
        let remote = RemoteDb::new(db, funcs, net, clock.clone());
        let plan = minidb::sql::parse("select * from t").unwrap();
        let r = remote.query(&plan, &HashMap::new()).unwrap();
        assert_eq!(r.row_count(), 100);
        // 100 rows × 28 B = 2800 B → 2.8 ms transfer; RTT 10 ms.
        let elapsed = clock.now();
        assert!(elapsed >= 10_000_000 + 2_800_000, "elapsed={elapsed}");
        assert_eq!(remote.round_trips(), 1);
        assert_eq!(remote.bytes_transferred(), 2800);
    }

    #[test]
    fn each_query_is_a_round_trip() {
        let (db, funcs, clock) = fixture();
        let net = NetworkProfile::new("test", 8e9, 5.0);
        let remote = RemoteDb::new(db, funcs, net, clock.clone());
        let plan = minidb::sql::parse("select * from t where id = :k").unwrap();
        for i in 0..7 {
            let mut params = HashMap::new();
            params.insert("k".to_string(), Value::Int(i));
            remote.query(&plan, &params).unwrap();
        }
        assert_eq!(remote.round_trips(), 7);
        assert!(clock.now() >= 7 * 5_000_000, "N+1 round trips dominate");
        assert_eq!(remote.query_log().len(), 7);
        assert_eq!(remote.query_log()[0].rows, 1);
    }

    #[test]
    fn update_mutates_and_charges() {
        let (db, funcs, clock) = fixture();
        let net = NetworkProfile::new("test", 8e9, 1.0);
        let remote = RemoteDb::new(db.clone(), funcs, net, clock.clone());
        let n = remote
            .update("t", "id", &Value::Int(5), "name", Value::str("changed"))
            .unwrap();
        assert_eq!(n, 1);
        assert!(clock.now() >= 1_000_000);
        let dbb = db.read().unwrap();
        let row = &dbb.table("t").unwrap().rows()[5];
        assert_eq!(row[1], Value::str("changed"));
    }

    #[test]
    fn transfer_overlaps_server_production() {
        // With a huge bandwidth the stream term is dominated by server
        // time; with tiny bandwidth it is dominated by transfer.
        let (db, funcs, clock) = fixture();
        let fast = RemoteDb::new(
            db.clone(),
            funcs.clone(),
            NetworkProfile::new("f", 8e12, 0.0),
            clock.clone(),
        )
        .with_server_row_ns(1000.0);
        let plan = minidb::sql::parse("select * from t").unwrap();
        fast.query(&plan, &HashMap::new()).unwrap();
        let fast_time = clock.now();
        assert!(fast_time >= 100_000, "server-bound: {fast_time}");

        clock.reset();
        let slow = RemoteDb::new(db, funcs, NetworkProfile::new("s", 8e3, 0.0), clock.clone())
            .with_server_row_ns(1000.0);
        slow.query(&plan, &HashMap::new()).unwrap();
        // 2800 B at 1 kB/s = 2.8 s ≫ 0.1 ms server time.
        assert!(clock.now() >= 2_800_000_000);
    }

    #[test]
    fn reset_stats_clears_log_and_counters() {
        let (db, funcs, clock) = fixture();
        let remote = RemoteDb::new(db, funcs, NetworkProfile::fast_local(), clock);
        let plan = minidb::sql::parse("select * from t").unwrap();
        remote.query(&plan, &HashMap::new()).unwrap();
        remote.reset_stats();
        assert_eq!(remote.round_trips(), 0);
        assert!(remote.query_log().is_empty());
    }
}
