//! Entity/table mapping metadata (the Figure 2 annotations).

use std::collections::BTreeMap;

/// A many-to-one association: `field` on this entity navigates to
/// `target_entity`, joining this table's `fk_column` to the target's
/// primary key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AssociationMap {
    /// Field name used in program text, e.g. `customer`.
    pub field: String,
    /// Target entity name, e.g. `Customer`.
    pub target_entity: String,
    /// Foreign-key column on *this* entity's table, e.g. `o_customer_sk`.
    pub fk_column: String,
}

/// Mapping of one entity class onto a table.
///
/// Scalar fields map 1:1 onto columns by name (program text uses column
/// names directly, e.g. `o.o_id`), so only the table, primary key and
/// associations need declaring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EntityMapping {
    /// Entity (class) name, e.g. `Order`.
    pub entity: String,
    /// Mapped table, e.g. `orders`.
    pub table: String,
    /// Primary-key column, e.g. `o_id`.
    pub id_column: String,
    /// Many-to-one associations.
    pub associations: Vec<AssociationMap>,
}

impl EntityMapping {
    /// New mapping without associations.
    pub fn new(
        entity: impl Into<String>,
        table: impl Into<String>,
        id_column: impl Into<String>,
    ) -> EntityMapping {
        EntityMapping {
            entity: entity.into(),
            table: table.into(),
            id_column: id_column.into(),
            associations: Vec::new(),
        }
    }

    /// Add a many-to-one association.
    pub fn many_to_one(
        mut self,
        field: impl Into<String>,
        target_entity: impl Into<String>,
        fk_column: impl Into<String>,
    ) -> EntityMapping {
        self.associations.push(AssociationMap {
            field: field.into(),
            target_entity: target_entity.into(),
            fk_column: fk_column.into(),
        });
        self
    }

    /// Look up an association by field name.
    pub fn association(&self, field: &str) -> Option<&AssociationMap> {
        self.associations.iter().find(|a| a.field == field)
    }
}

/// All entity mappings of an application.
#[derive(Debug, Clone, Default)]
pub struct MappingRegistry {
    by_entity: BTreeMap<String, EntityMapping>,
}

impl MappingRegistry {
    /// Empty registry.
    pub fn new() -> MappingRegistry {
        MappingRegistry::default()
    }

    /// Register a mapping (replaces any previous mapping of the entity).
    pub fn register(&mut self, mapping: EntityMapping) {
        self.by_entity.insert(mapping.entity.clone(), mapping);
    }

    /// Mapping for `entity`, if registered.
    pub fn entity(&self, entity: &str) -> Option<&EntityMapping> {
        self.by_entity.get(entity)
    }

    /// Mapping whose table is `table`, if any.
    pub fn entity_for_table(&self, table: &str) -> Option<&EntityMapping> {
        self.by_entity.values().find(|m| m.table == table)
    }

    /// Iterate over registered mappings, ordered by entity name. (The
    /// order is load-bearing: cost estimation resolves ambiguous
    /// association fields to the *first* matching mapping, so iteration
    /// must be deterministic across processes — a `HashMap` here once
    /// made nav-cost estimates vary run to run.)
    pub fn iter(&self) -> impl Iterator<Item = &EntityMapping> {
        self.by_entity.values()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> MappingRegistry {
        let mut r = MappingRegistry::new();
        r.register(EntityMapping::new("Order", "orders", "o_id").many_to_one(
            "customer",
            "Customer",
            "o_customer_sk",
        ));
        r.register(EntityMapping::new("Customer", "customer", "c_customer_sk"));
        r
    }

    #[test]
    fn entity_lookup() {
        let r = registry();
        assert_eq!(r.entity("Order").unwrap().table, "orders");
        assert!(r.entity("Nope").is_none());
    }

    #[test]
    fn table_reverse_lookup() {
        let r = registry();
        assert_eq!(r.entity_for_table("customer").unwrap().entity, "Customer");
    }

    #[test]
    fn association_navigation_metadata() {
        let r = registry();
        let a = r.entity("Order").unwrap().association("customer").unwrap();
        assert_eq!(a.target_entity, "Customer");
        assert_eq!(a.fk_column, "o_customer_sk");
        assert!(r.entity("Order").unwrap().association("nope").is_none());
    }

    #[test]
    fn reregistering_replaces() {
        let mut r = registry();
        r.register(EntityMapping::new("Order", "orders_v2", "o_id"));
        assert_eq!(r.entity("Order").unwrap().table, "orders_v2");
    }
}
