//! # COBRA — Cost Based Rewriting of Database Applications
//!
//! A Rust reproduction of *"COBRA: A Framework for Cost Based Rewriting of
//! Database Applications"* (Emani & Sudarshan, ICDE 2018).
//!
//! This facade crate re-exports every sub-crate of the workspace under one
//! namespace so that applications can depend on a single crate:
//!
//! * [`netsim`] — virtual clock and network profiles (bandwidth / RTT).
//! * [`minidb`] — in-memory relational database: SQL parser, logical plans,
//!   executor, and the estimator COBRA's cost model consults.
//! * [`imperative`] — the mini imperative language: AST, CFG, program
//!   regions, and data-dependence analysis.
//! * [`orm`] — Hibernate-like object-relational mapping layer with a session
//!   cache and lazy association loading (the N+1 select problem).
//! * [`interp`] — interpreter that executes programs against the ORM and
//!   database while accumulating *simulated* wall-clock time.
//! * [`volcano`] — a generic Volcano/Cascades AND-OR DAG optimizer.
//! * [`fir`] — the F-IR intermediate representation (`fold`/`tuple`/
//!   `project`) plus transformation rules T1–T5, N1, N2.
//! * [`core`] — the COBRA optimizer itself: Region DAG, cost model, search.
//! * [`workloads`] — the paper's workloads: motivating example P0/P1/P2,
//!   program M0, and the Wilos-like fragments of patterns A–F.
//!
//! ## Quickstart
//!
//! ```
//! use cobra::core::{Cobra, CostCatalog};
//! use cobra::netsim::NetworkProfile;
//! use cobra::workloads::motivating;
//!
//! // Build the orders/customer database (tiny sizes for the doctest).
//! let fixture = motivating::build_fixture(1_000, 200, 42);
//! let program = motivating::p0();
//!
//! let cobra = Cobra::new(
//!     fixture.db.clone(),
//!     NetworkProfile::slow_remote(),
//!     CostCatalog::default(),
//!     fixture.mapping.clone(),
//! )
//! .with_funcs(fixture.funcs.clone());
//! let optimized = cobra.optimize_program(&program).expect("optimizes");
//! assert!(optimized.alternatives >= 3, "P0, P1-like and P2-like plans");
//! ```
//!
//! ## Thread safety and batch optimization
//!
//! The whole optimizer pipeline is `Send + Sync` (enforced by compile-time
//! assertions in `cobra_core`): shared state travels in `Arc`s, the
//! database behind an `RwLock` ([`minidb::SharedDb`]), and per-search cost
//! memoization ([`volcano::CostMemo`]) uses lock/atomic interior
//! mutability. One `Cobra` can therefore serve many threads, and
//! `Cobra::optimize_batch` optimizes a whole batch of programs
//! concurrently with results identical to sequential calls:
//!
//! ```
//! use cobra::core::{Cobra, CostCatalog};
//! use cobra::netsim::NetworkProfile;
//! use cobra::workloads::motivating;
//!
//! let fixture = motivating::build_fixture(500, 100, 42);
//! let cobra = Cobra::new(
//!     fixture.db.clone(),
//!     NetworkProfile::slow_remote(),
//!     CostCatalog::default(),
//!     fixture.mapping.clone(),
//! )
//! .with_funcs(fixture.funcs.clone());
//!
//! let batch = [motivating::p0(), motivating::m0()];
//! let results = cobra.optimize_batch(&batch);
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

pub use cobra_core as core;
pub use fir;
pub use imperative;
pub use interp;
pub use minidb;
pub use netsim;
pub use orm;
pub use volcano;
pub use workloads;
