//! # COBRA — Cost Based Rewriting of Database Applications
//!
//! A Rust reproduction of *"COBRA: A Framework for Cost Based Rewriting of
//! Database Applications"* (Emani & Sudarshan, ICDE 2018).
//!
//! This facade crate re-exports every sub-crate of the workspace under one
//! namespace so that applications can depend on a single crate:
//!
//! * [`netsim`] — virtual clock and network profiles (bandwidth / RTT).
//! * [`minidb`] — in-memory relational database: SQL parser, logical plans,
//!   executor, and the estimator COBRA's cost model consults.
//! * [`imperative`] — the mini imperative language: AST, CFG, program
//!   regions, and data-dependence analysis.
//! * [`orm`] — Hibernate-like object-relational mapping layer with a session
//!   cache and lazy association loading (the N+1 select problem).
//! * [`interp`] — interpreter that executes programs against the ORM and
//!   database while accumulating *simulated* wall-clock time.
//! * [`volcano`] — a generic Volcano/Cascades AND-OR DAG optimizer.
//! * [`fir`] — the F-IR intermediate representation (`fold`/`tuple`/
//!   `project`), transformation rules T1–T5, N1, N2, and the [`fir::RuleSet`]
//!   registry that makes them toggleable, extensible API objects.
//! * [`core`] — the COBRA optimizer itself: Region DAG, cost model, search,
//!   and the typed configuration layer ([`core::CobraBuilder`],
//!   [`core::OptimizerConfig`], [`core::SearchBudget`],
//!   [`core::OptimizationReport`]), plus runtime-validated plan
//!   selection ([`core::ValidationConfig`]): the top-k candidates are
//!   micro-executed on a shrunk fixture and the *measured* winner wins.
//! * [`workloads`] — the paper's workloads: motivating example P0/P1/P2,
//!   program M0, the Wilos-like fragments of patterns A–F, and the seeded
//!   random program generator [`workloads::genprog`].
//! * [`oracle`] — the differential-execution oracle: original-vs-optimized
//!   equivalence fuzzing over generated programs across network profiles,
//!   budgets and rule sets, with failure minimization down to seed-keyed
//!   repros.
//! * [`analysis`] — static verification: the three-pass F-IR rewrite
//!   verifier (well-formedness, effect soundness, binding-leak detection)
//!   behind [`core::OptimizerConfig::verify_rewrites`], plus the
//!   `repo_lint` source linter.
//! * [`server`] — Cobra-as-a-service: a concurrent optimizer/execution
//!   server with tenants, sessions, a sharded single-flight plan cache,
//!   admission control with load shedding and budget degradation,
//!   drift-driven plan hot swapping, and a dependency-free TCP wire
//!   protocol ([`server::WireServer`] / [`server::WireClient`]) —
//!   hardened with a seeded fault-injection harness
//!   ([`server::FaultPlan`]), a retrying client ([`server::RetryPolicy`]),
//!   a health machine ([`server::Health`]), and crash-safe plan-cache
//!   snapshot/restore ([`server::Snapshot`]).
//!
//! The [`prelude`] re-exports the common surface in one `use`.
//!
//! ## Quickstart
//!
//! ```
//! use cobra::prelude::*;
//!
//! // Build the orders/customer database (tiny sizes for the doctest).
//! let fixture = motivating::build_fixture(1_000, 200, 42);
//! let program = motivating::p0();
//!
//! let cobra = fixture
//!     .cobra_builder()
//!     .network(NetworkProfile::slow_remote())
//!     .build();
//! let optimized = cobra.optimize_program(&program).expect("optimizes");
//! assert!(optimized.alternatives >= 3, "P0, P1-like and P2-like plans");
//! assert!(!optimized.budget_exhausted, "default budget explores P0 fully");
//! ```
//!
//! ## Configuring the optimizer
//!
//! Rules and search effort are first-class configuration: disable rules
//! for ablations, bound the search, and ask for a structured explanation
//! of every cost-based choice:
//!
//! ```
//! use cobra::prelude::*;
//!
//! let fixture = motivating::build_fixture(1_000, 200, 42);
//! let cobra = fixture
//!     .cobra_builder()
//!     .network(NetworkProfile::slow_remote())
//!     .rules(RuleSet::standard().without("N1")) // no prefetching
//!     .budget(SearchBudget::default().with_max_alternatives_per_region(32))
//!     .build();
//!
//! let report = cobra.explain(&motivating::p0()).expect("optimizes");
//! let top = report.top_choice_point().expect("P0 has a choice point");
//! assert!(top.alternatives.iter().all(|a| !a.rules.contains(&"N1")));
//! println!("{report}");
//! ```
//!
//! ## Thread safety and batch optimization
//!
//! The whole optimizer pipeline is `Send + Sync` (enforced by compile-time
//! assertions in `cobra_core`): shared state travels in `Arc`s, the
//! database behind an `RwLock` ([`minidb::SharedDb`]), and per-search cost
//! memoization ([`volcano::CostMemo`]) uses lock/atomic interior
//! mutability. One `Cobra` can therefore serve many threads, and
//! `Cobra::optimize_batch` optimizes a whole batch of programs
//! concurrently with results identical to sequential calls:
//!
//! ```
//! use cobra::prelude::*;
//!
//! let fixture = motivating::build_fixture(500, 100, 42);
//! let cobra = fixture
//!     .cobra_builder()
//!     .network(NetworkProfile::slow_remote())
//!     .build();
//!
//! let batch = [motivating::p0(), motivating::m0()];
//! let results = cobra.optimize_batch(&batch);
//! assert_eq!(results.len(), 2);
//! assert!(results.iter().all(|r| r.is_ok()));
//! ```

pub use analysis;
pub use cobra_core as core;
pub use cobra_server as server;
pub use fir;
pub use imperative;
pub use interp;
pub use minidb;
pub use netsim;
pub use oracle;
pub use orm;
pub use volcano;
pub use workloads;

/// The common COBRA surface in one import: the optimizer and its typed
/// configuration (builder, rules, budget, report), the network/database
/// substrate handles, and the paper's workloads.
pub mod prelude {
    pub use cobra_core::{
        ChoicePoint, Cobra, CobraBuilder, CostCatalog, OptimizationReport, Optimized,
        OptimizerConfig, ReportedAlternative, Rule, RuleSet, SearchBudget, SelectionValidation,
        ValidatedCandidate, ValidationConfig, ValidationSource, VerifyLevel,
    };
    pub use cobra_server::{
        CobraService, FaultConfig, FaultKind, FaultPlan, FaultSite, Health, RestoreReport,
        RetryPolicy, ServerConfig, ServerError, Snapshot, SubmitReply, TenantSpec, WireClient,
        WireServer,
    };
    pub use imperative::ast::{Expr, Function, Program, Stmt, StmtKind};
    pub use imperative::pretty;
    pub use minidb::{CacheStamp, Database, FuncRegistry, PlanFingerprint, SharedDb};
    pub use netsim::{Clock, NetworkProfile};
    pub use oracle::{
        assert_equivalent, check_equivalent, run_case, run_cell, OracleCell, OracleMatrix, Repro,
    };
    pub use orm::{EntityMapping, MappingRegistry};
    pub use workloads::genprog::{GenCase, GenConfig};
    pub use workloads::harness::{run_on, Fixture, RunResult};
    pub use workloads::{genprog, motivating, wilos};
}
